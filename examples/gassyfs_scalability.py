#!/usr/bin/env python3
"""The GassyFS use case: regenerate the paper's Fig. `gassyfs-git`.

Sweeps GassyFS cluster sizes on two simulated platforms while compiling
Git over the mounted file system, prints the scalability series as an
ASCII chart, and validates the result with the paper's Listing 3 Aver
assertion::

    when workload=* and machine=* expect sublinear(nodes, time)

Run with::

    python examples/gassyfs_scalability.py
"""

from repro.aver import check
from repro.gassyfs import ScalabilityConfig, run_scalability_experiment


def ascii_series(label: str, nodes: list[int], times: list[float], width: int = 48) -> None:
    peak = max(times)
    print(f"  {label}")
    for n, t in zip(nodes, times):
        bar = "#" * max(1, int(round(width * t / peak)))
        print(f"    {n:>3} nodes | {bar} {t:7.2f}s")


def main() -> None:
    config = ScalabilityConfig(
        node_counts=(1, 2, 4, 8, 16),
        sites=("cloudlab-wisc", "ec2"),
        placement="round-robin",
        seed=42,
    )
    print("Running the GassyFS scalability sweep (git compile workload)...")
    table = run_scalability_experiment(config)

    print("\nFig. gassyfs-git — GassyFS scalability as GASNet nodes increase:\n")
    for machine in table.distinct("machine"):
        series = table.where_equals(machine=machine).sort_by("nodes")
        ascii_series(
            f"platform: {machine}",
            series.column("nodes"),
            series.column("time"),
        )
        print()

    print("Validating with the paper's Aver assertion (Listing 3):")
    statement = "when workload=* and machine=* expect sublinear(nodes, time)"
    result = check(statement, table)
    print(result.describe())

    speedups = {}
    for machine in table.distinct("machine"):
        series = table.where_equals(machine=machine).sort_by("nodes")
        times = series.column("time")
        speedups[machine] = times[0] / times[-1]
    print(
        "speedup at 16 nodes:",
        ", ".join(f"{m}: {s:.1f}x" for m, s in speedups.items()),
    )
    print("(sublinear: doubling nodes never doubles the gain — the curve flattens)")


if __name__ == "__main__":
    main()
