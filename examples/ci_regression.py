#!/usr/bin/env python3
"""Automated validation in CI: integrity checks plus a regression gate.

Builds a Popperized repository, wires it to the CI substrate (TravisCI
stand-in) so every commit runs ``popper check`` and the Aver assertions,
then demonstrates the statistical performance-regression gate flagging a
bad configuration change while passing benign ones.

Run with::

    python examples/ci_regression.py
"""

import tempfile
from pathlib import Path

from repro.common.fsutil import write_text
from repro.common.rng import SeedSequenceFactory
from repro.core import ExperimentPipeline, PopperRepository
from repro.core.ci_integration import make_ci_server
from repro.ci.regression import PerformanceHistory, RegressionGate
from repro.gassyfs.experiment import ScalabilityConfig, run_point
from repro.gassyfs.workloads import CompileWorkload
from repro.platform.sites import default_sites

FAST_VARS = (
    "runner: gassyfs-scaling\n"
    "node_counts: [1, 2, 4]\n"
    "sites: [cloudlab-wisc]\n"
    "workload_scale: 0.1\n"
    "seed: 7\n"
)


def sample_runtime(block_size: int, seeds: list[int]) -> list[float]:
    workload = CompileWorkload(
        name="probe", files=40, source_kib=256, object_kib=256,
        compile_ops=3e8, configure_ops=5e8, link_ops=1e9,
    )
    out = []
    for seed in seeds:
        config = ScalabilityConfig(
            node_counts=(4,), sites=("cloudlab-wisc",),
            workloads=(workload,), block_size=block_size, seed=seed,
        )
        site = default_sites(seed)["cloudlab-wisc"]
        out.append(run_point(site, 4, workload, config, SeedSequenceFactory(seed)))
    return out


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="popper-ci-"))
    repo = PopperRepository.init(workdir / "paper-repo")
    repo.add_experiment("gassyfs", "exp1")
    write_text(repo.experiment_dir("exp1") / "vars.yml", FAST_VARS)
    repo.vcs.add_all()
    repo.vcs.commit("shrink for demo")

    print("Author runs the experiment locally and commits results...")
    ExperimentPipeline(repo, "exp1").run()
    repo.vcs.add_all()
    repo.vcs.commit("experiment results")

    print("CI validates the commit (popper check + re-validation):")
    server = make_ci_server(repo)
    record = server.trigger()
    print(f"  build #{record.number}: {record.status.value} -> {server.badge()}\n")

    print("Author over-claims (superlinear scaling!) and commits...")
    write_text(
        repo.experiment_dir("exp1") / "validations.aver",
        "when workload=* and machine=*\nexpect superlinear(nodes, time)\n",
    )
    repo.vcs.add_all()
    repo.vcs.commit("overclaim scaling behaviour")
    record = server.trigger()
    print(f"  build #{record.number}: {record.status.value} -> {server.badge()}")
    print("  CI caught the claim the data cannot support.\n")

    print("Performance-regression gate over synthetic commits:")
    history = PerformanceHistory(
        metric="gassyfs.probe.4nodes",
        gate=RegressionGate(threshold=0.05, alpha=0.05),
    )
    history.record("baseline-a", sample_runtime(1 << 20, [11, 12, 13, 14]))
    history.record("baseline-b", sample_runtime(1 << 20, [21, 22, 23, 24]))
    ok = history.judge("harmless-change", sample_runtime(1 << 20, [31, 32, 33, 34]))
    print(f"  {ok}")
    bad = history.judge("shrink-block-to-4KiB", sample_runtime(1 << 12, [41, 42, 43, 44]))
    print(f"  {bad}")
    print(
        "\nthe gate needs BOTH a median slowdown beyond the threshold and"
        "\nstatistical significance — ordinary noise passes, real regressions"
        "\ndo not."
    )


if __name__ == "__main__":
    main()
