#!/usr/bin/env python3
"""Quickstart: the paper's Listing 2 session, end to end.

Creates a Popper repository in a temporary directory, bootstraps an
experiment from the ``torpor`` template, runs its pipeline and shows the
automated validation verdict — the whole author workflow in ~30 lines of
library calls.

Run with::

    python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro.core import ExperimentPipeline, PopperRepository, list_templates
from repro.core.check import check_repository
from repro.core.cli import main as popper_main


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="popper-quickstart-"))
    print(f"$ cd {workdir}")

    print("$ popper init")
    repo = PopperRepository.init(workdir / "mypaper-repo")
    print("-- Initialized Popper repo\n")

    print("$ popper experiment list")
    print("-- available templates ---------------")
    for template in list_templates():
        print(f"{template.name:<22} {template.description.splitlines()[0]}")
    print()

    print("$ popper add torpor myexp")
    repo.add_experiment("torpor", "myexp")
    exp_dir = repo.experiment_dir("myexp")
    print(f"-- Added experiment at {exp_dir}")
    print("   contents:", ", ".join(sorted(p.name for p in exp_dir.iterdir())))
    print()

    # Shrink the run so the quickstart finishes in seconds.
    (exp_dir / "vars.yml").write_text(
        "runner: torpor-variability\nruns: 2\nseed: 42\n"
    )

    print("$ popper run myexp")
    result = ExperimentPipeline(repo, "myexp").run()
    print(f"-- {len(result.results)} result rows written to results.csv")
    for validation in result.validations:
        print(validation.describe())
    print()

    print("$ popper trace myexp")
    popper_main(["-C", str(repo.root), "trace", "myexp"])
    print()

    print("$ popper check")
    report = check_repository(repo)
    print(report.describe())

    print("Everything an independent reader needs — code, parametrization,")
    print("orchestration, validation criteria and results — now lives in")
    print(f"one versioned repository: {repo.root}")
    history = [entry.subject for entry in repo.vcs.log()]
    print("history:", " <- ".join(reversed(history)))


if __name__ == "__main__":
    main()
