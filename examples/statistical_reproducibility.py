#!/usr/bin/env python3
"""Controlled vs statistical performance reproducibility (§ discussion).

The paper contrasts three ways to compare two systems: fully controlled
environments (deterministic, one run each), the statistical method
("with 95% confidence one system is 10x better"), and the field's common
practice (10 runs on one machine, report averages).  This example runs
the same two "systems" (a baseline and an optimized kernel) through all
three and shows why the statistical claim is the defensible one on
heterogeneous infrastructure.

Run with::

    python examples/statistical_reproducibility.py
"""

from repro.platform import KernelDemand, default_sites
from repro.stats import (
    controlled_comparison,
    demand_runner,
    naive_comparison,
    required_runs,
    sample_across_environments,
    statistical_comparison,
)

BASELINE = KernelDemand(ops=3e10, mem_bytes=1.2e10, working_set_kib=1 << 18)
OPTIMIZED = KernelDemand(ops=1.6e10, mem_bytes=0.7e10, working_set_kib=1 << 15)


def main() -> None:
    sites = default_sites(seed=42)
    run_a = demand_runner(BASELINE, threads=8)
    run_b = demand_runner(OPTIMIZED, threads=8)

    print("1. Controlled comparison (deterministic environment, 1 run each):")
    node = sites["cloudlab-wisc"].node(0)
    controlled = controlled_comparison(run_a(node), run_b(node))
    print(f"   {controlled.claim()}\n")

    print("2. Statistical comparison across heterogeneous environments")
    print("   (CloudLab + EC2 + HPC nodes, noise regimes included):")
    a = sample_across_environments(
        run_a, sites, runs_per_site=6,
        site_names=["cloudlab-wisc", "ec2", "hpc"], seed=1,
    )
    b = sample_across_environments(
        run_b, sites, runs_per_site=6,
        site_names=["cloudlab-wisc", "ec2", "hpc"], seed=2,
    )
    statistical = statistical_comparison(a, b, confidence=0.95, seed=7)
    print(f"   samples: {statistical.samples_a} per system")
    print(f"   {statistical.claim()}\n")

    print("3. The field's common practice (same machine, 10 runs, mean ratio):")
    import numpy as np

    from repro.common.rng import derive_rng

    rng = derive_rng(3, "naive")
    same_a = [node.observed_time(run_a(node), rng) for _ in range(10)]
    same_b = [node.observed_time(run_b(node), rng) for _ in range(10)]
    naive = naive_comparison(same_a, same_b)
    print(f"   {naive.claim()}")
    print(
        f"   interval width {naive.high - naive.low:.3f} vs statistical "
        f"{statistical.high - statistical.low:.3f} — the narrow interval is "
        "about ONE machine,\n   not about the systems in general.\n"
    )

    print("4. Planning: how many runs does a claim need?")
    for cov in (0.02, 0.05, 0.15):
        n = required_runs(cov=cov, detectable_effect=0.10)
        print(
            f"   run-to-run cov {cov:.0%}: {n} runs/system to resolve a 10% "
            "difference (95% conf, 80% power)"
        )


if __name__ == "__main__":
    main()
