#!/usr/bin/env python3
"""The Torpor use case: regenerate the variability-profile figure.

Runs the stress-ng-style baseliner battery on a simulated CloudLab node
and on the authors' "10 year old Xeon", histograms the per-stressor
speedups (the ASPLOS paper's Fig. torpor-variability, whose mode the
paper calls out as 7 stressors in the (2.2, 2.3] bucket), and then uses
the profile to (a) predict an unseen application's speedup range and
(b) compute the CPU quota that recreates the old machine on the new one.

Run with::

    python examples/torpor_variability.py
"""

from repro.torpor import (
    predict_speedup,
    recreation_error,
    run_torpor_experiment,
    throttle_for,
)


def main() -> None:
    print("Profiling base (lab-xeon-2006) and target (cloudlab-c220g1)...")
    result = run_torpor_experiment(seed=42, runs=3)

    print("\nVariability profile (speedup of CloudLab node vs 2006 Xeon):\n")
    histogram = result.speedups.histogram(bin_width=0.1)
    peak = max(count for _, _, count in histogram)
    for lo, hi, count in histogram:
        if count == 0:
            continue
        bar = "#" * int(round(30 * count / peak))
        print(f"  ({lo:6.1f}, {hi:6.1f}] | {bar} {count}")

    mode_lo, mode_hi, mode_count = result.speedups.mode_bucket(0.1)
    print(
        f"\nmode bucket: ({mode_lo}, {mode_hi}] holds {mode_count} stressors "
        "(the paper: 7 stressors in (2.2, 2.3])"
    )

    print("\nper-class speedup ranges:")
    for r in result.variability.ranges:
        print(f"  {r.klass:<8} [{r.low:6.2f}, {r.high:6.2f}]")

    mix = {"cpu": 0.6, "memory": 0.3, "storage": 0.1}
    prediction = predict_speedup(result.variability, mix)
    print(
        f"\npredicted speedup for an app that is {mix} of base runtime: "
        f"[{prediction.low:.2f}, {prediction.high:.2f}]"
    )

    throttle = throttle_for(result.variability, "cpu")
    print(
        f"\nto recreate the 2006 Xeon on the CloudLab node, cap CPU at "
        f"{throttle.cpu_quota:.1%} quota"
    )
    print(
        "  recreation error, cpu-bound app: "
        f"{recreation_error(result.variability, {'cpu': 1.0}, throttle):.1%}"
    )
    print(
        "  recreation error, memory-bound app: "
        f"{recreation_error(result.variability, {'memory': 1.0}, throttle):.1%}"
        "  (CPU quotas cannot slow DRAM — a documented Torpor limitation)"
    )


if __name__ == "__main__":
    main()
