#!/usr/bin/env python3
"""The MPI use case (ASPLOS §5.3): LULESH noise characterization.

Runs the LULESH proxy app repeatedly on a simulated HPC allocation with
and without noisy-neighbor injection, prints the run-to-run variability
of wall time, and shows the mpiP call-site breakdown that pins the blame
on collective wait time.

Run with::

    python examples/mpi_variability.py
"""

from repro.common.rng import SeedSequenceFactory
from repro.mpicomm import (
    LuleshConfig,
    run_lulesh,
    run_noise_experiment,
    variability_stats,
)
from repro.platform.sites import default_sites


def main() -> None:
    config = LuleshConfig(side=3, iterations=50)
    print(
        f"LULESH proxy: {config.ranks} ranks "
        f"({config.side}^3 domain), {config.iterations} timesteps"
    )

    print("\nRunning 10 executions per noise setting...")
    table = run_noise_experiment(config, runs=10, seed=42)

    clean = variability_stats(table, noise=False)
    noisy = variability_stats(table, noise=True)
    print(f"\n  {clean}")
    print(f"  {noisy}")
    print(
        f"\nnoise multiplies run-to-run spread by "
        f"{noisy.cov_wall / max(clean.cov_wall, 1e-9):.0f}x "
        f"and stretches the worst run to "
        f"{noisy.max_over_min:.2f}x the best"
    )

    print("\nmpiP attribution for one noisy run:")
    site = default_sites(42)["hpc"]
    with site.allocate(config.ranks) as allocation:
        run = run_lulesh(
            config, list(allocation), SeedSequenceFactory(7), noise_injection=True
        )
    print(f"  wall time: {run.wall_time:.3f}s, MPI fraction: {run.mpi_fraction:.1%}")
    for stats in run.report.top_callsites(4):
        print(f"    {stats}")
    print(
        "\nthe dominant site is the dt-reduction Allreduce: noise on a few"
        "\nranks becomes *global* wait time at every collective — the"
        "\nphenomenon the original mpiP study chased."
    )


if __name__ == "__main__":
    main()
