#!/usr/bin/env python3
"""The Big-Weather-Web use case (ASPLOS §5.4): a data-centric experiment.

Generates the synthetic NCEP/NCAR-Reanalysis-style air-temperature
dataset, publishes it to a data-package registry, installs it into an
experiment's ``datasets/`` folder with hash verification (the ``dpm
install`` step of the paper's Listing 4), and runs the analysis that
regenerates the Fig. `bww-airtemp` series.

Run with::

    python examples/weather_analysis.py
"""

import tempfile
from pathlib import Path

from repro.datapkg import PackageRegistry, verify_tree
from repro.weather import (
    LabeledArray,
    analyze_air_temperature,
    generate_air_temperature,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="bww-"))

    print("Generating the synthetic reanalysis product (1 year, 5 deg grid)...")
    air = generate_air_temperature(seed=42, years=1, lat_step=5.0, lon_step=5.0)
    print(f"  dims={air.dims} shape={air.shape} units={air.attrs['units']}")

    # --- publish + install as a data package (dpm install ...) -----------
    staging = workdir / "staging"
    staging.mkdir()
    air.save(staging / "air.npz")
    registry = PackageRegistry(workdir / "registry")
    descriptor = registry.publish(
        staging, "air-temperature", "1.0",
        title="Synthetic NCEP/NCAR Reanalysis 1 surrogate",
    )
    print(f"\n$ dpm publish {descriptor.spec}  ({descriptor.total_bytes} bytes)")

    datasets_dir = workdir / "experiments" / "airtemp-analysis" / "datasets"
    registry.install("air-temperature", datasets_dir)
    verify_tree(datasets_dir / "air-temperature")
    print(f"$ dpm install air-temperature  -> {datasets_dir} (hashes verified)")

    # --- analysis over the *installed* copy ------------------------------
    installed = LabeledArray.load(datasets_dir / "air-temperature" / "air.npz")
    analysis = analyze_air_temperature(installed)

    print(f"\nglobal mean surface temperature: {analysis.global_mean_k:.1f} K")
    print(
        f"equator-to-pole contrast: {analysis.equator_minus_pole_k:.1f} K"
    )

    print("\nFig. bww-airtemp — seasonal zonal-mean air temperature (K):\n")
    lats, _ = analysis.zonal_series("DJF")
    header = "  lat     " + "".join(f"{s:>8}" for s in ("DJF", "MAM", "JJA", "SON"))
    print(header)
    for i in range(0, len(lats), 4):
        row = f"  {lats[i]:6.1f}  "
        for season in ("DJF", "MAM", "JJA", "SON"):
            _, temps = analysis.zonal_series(season)
            row += f"{temps[i]:8.1f}"
        print(row)

    print(
        "\nshape checks: tropics warm year-round, poles cold, NH peaks in"
        "\nJJA while SH peaks in DJF, and the seasonal swing grows poleward."
    )


if __name__ == "__main__":
    main()
