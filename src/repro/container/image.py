"""Layered container images.

An :class:`Image` is an ordered chain of :class:`Layer` objects, each an
immutable set of file writes and deletions (tombstones), plus an
:class:`ImageConfig` (env, workdir, entrypoint).  Flattening the chain
yields the root filesystem a container starts from.  Image identity is
the digest of the layer-digest chain plus the config digest — pin an
image by digest and you have pinned the bits, which is exactly the
property the Popper convention relies on ("treat every component as an
immutable piece of information").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ContainerError
from repro.common.hashing import combine_digests, sha256_bytes, sha256_text

__all__ = ["Layer", "ImageConfig", "Image", "TOMBSTONE"]

#: Sentinel marking a path as deleted by a layer.  File content equal to
#: this exact byte string cannot be stored (it would read as a deletion);
#: the NUL framing makes an accidental collision with real payloads
#: implausible.
TOMBSTONE = b"\x00<deleted>\x00"


def _check_path(path: str) -> str:
    if not path.startswith("/") or "//" in path or path != path.strip():
        raise ContainerError(f"image paths must be absolute and clean: {path!r}")
    if any(part in (".", "..") for part in path.split("/")):
        raise ContainerError(f"image paths may not contain . or ..: {path!r}")
    return path


@dataclass(frozen=True)
class Layer:
    """One immutable filesystem delta."""

    files: tuple[tuple[str, bytes], ...]
    created_by: str = ""

    @classmethod
    def from_dict(cls, files: dict[str, bytes], created_by: str = "") -> "Layer":
        items = tuple(sorted((( _check_path(k)), v) for k, v in files.items()))
        return cls(files=items, created_by=created_by)

    @property
    def digest(self) -> str:
        parts = [f"{path}:{sha256_bytes(data)}" for path, data in self.files]
        return combine_digests([sha256_text(self.created_by), *parts])

    def as_dict(self) -> dict[str, bytes]:
        return dict(self.files)

    def __len__(self) -> int:
        return len(self.files)


@dataclass(frozen=True)
class ImageConfig:
    """Runtime configuration baked into an image."""

    env: tuple[tuple[str, str], ...] = ()
    workdir: str = "/"
    entrypoint: tuple[str, ...] = ()
    cmd: tuple[str, ...] = ()
    labels: tuple[tuple[str, str], ...] = ()
    exposed_ports: tuple[int, ...] = ()

    @property
    def digest(self) -> str:
        return sha256_text(repr(self))

    def env_dict(self) -> dict[str, str]:
        return dict(self.env)

    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)

    def with_env(self, key: str, value: str) -> "ImageConfig":
        env = dict(self.env)
        env[key] = value
        return replace(self, env=tuple(sorted(env.items())))

    def with_label(self, key: str, value: str) -> "ImageConfig":
        labels = dict(self.labels)
        labels[key] = value
        return replace(self, labels=tuple(sorted(labels.items())))


@dataclass(frozen=True)
class Image:
    """An immutable image: a layer chain plus config."""

    layers: tuple[Layer, ...]
    config: ImageConfig = field(default_factory=ImageConfig)
    parent_digest: str | None = None

    @property
    def digest(self) -> str:
        return combine_digests(
            [layer.digest for layer in self.layers] + [self.config.digest]
        )

    @property
    def short_digest(self) -> str:
        return self.digest[:12]

    def flatten(self) -> dict[str, bytes]:
        """Materialize the union filesystem (later layers win; tombstones
        delete)."""
        fs: dict[str, bytes] = {}
        for layer in self.layers:
            for path, data in layer.files:
                if data == TOMBSTONE:
                    fs.pop(path, None)
                else:
                    fs[path] = data
        return fs

    def with_layer(self, layer: Layer, config: ImageConfig | None = None) -> "Image":
        """A new image extending this one by one layer."""
        return Image(
            layers=self.layers + (layer,),
            config=config if config is not None else self.config,
            parent_digest=self.digest,
        )

    def size_bytes(self) -> int:
        """Total bytes across all layers (the transfer cost of the image)."""
        return sum(
            len(data)
            for layer in self.layers
            for _, data in layer.files
            if data != TOMBSTONE
        )


def scratch() -> Image:
    """The empty base image (``FROM scratch``)."""
    return Image(layers=())
