"""Image save/load: single-file archives for registry-less sharing.

``docker save``/``docker load`` equivalents — an image (layer chain +
config) serializes to one JSON document whose digest is verified on
load, so images can ride inside a data package or a paper repository
and still be integrity-pinned.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

from repro.common.errors import ContainerError
from repro.container.image import Image, ImageConfig, Layer

__all__ = ["save_image", "load_image", "image_history"]

_FORMAT = "repro-image-v1"


def save_image(image: Image, path: str | Path | None = None) -> str:
    """Serialize *image* to JSON (and optionally write it to *path*)."""
    doc = {
        "format": _FORMAT,
        "digest": image.digest,
        "config": {
            "env": list(map(list, image.config.env)),
            "workdir": image.config.workdir,
            "entrypoint": list(image.config.entrypoint),
            "cmd": list(image.config.cmd),
            "labels": list(map(list, image.config.labels)),
            "exposed_ports": list(image.config.exposed_ports),
        },
        "layers": [
            {
                "created_by": layer.created_by,
                "files": [
                    [p, base64.b64encode(data).decode("ascii")]
                    for p, data in layer.files
                ],
            }
            for layer in image.layers
        ],
    }
    text = json.dumps(doc, indent=1, sort_keys=True)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def load_image(source: str | Path) -> Image:
    """Inverse of :func:`save_image`; verifies the recorded digest."""
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and Path(source).is_file()
    ):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = str(source)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ContainerError(f"bad image archive: {exc}") from exc
    if doc.get("format") != _FORMAT:
        raise ContainerError(f"unsupported image archive format: {doc.get('format')!r}")
    try:
        config = ImageConfig(
            env=tuple((k, v) for k, v in doc["config"]["env"]),
            workdir=doc["config"]["workdir"],
            entrypoint=tuple(doc["config"]["entrypoint"]),
            cmd=tuple(doc["config"]["cmd"]),
            labels=tuple((k, v) for k, v in doc["config"]["labels"]),
            exposed_ports=tuple(doc["config"]["exposed_ports"]),
        )
        layers = tuple(
            Layer(
                files=tuple(
                    (p, base64.b64decode(data)) for p, data in raw["files"]
                ),
                created_by=raw["created_by"],
            )
            for raw in doc["layers"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ContainerError(f"malformed image archive: {exc}") from exc
    image = Image(layers=layers, config=config)
    if image.digest != doc.get("digest"):
        raise ContainerError(
            "image archive digest mismatch (corrupted or tampered archive)"
        )
    return image


def image_history(image: Image) -> list[str]:
    """Provenance listing: one line per layer, oldest first (like
    ``docker history``)."""
    lines = []
    for i, layer in enumerate(image.layers):
        size = sum(len(d) for _, d in layer.files)
        created_by = layer.created_by or "<base>"
        lines.append(f"{i}: {layer.digest[:12]} {size:>8}B  {created_by}")
    return lines
