"""Containerfile (Dockerfile-dialect) parsing and image building.

Supported instructions: ``FROM``, ``RUN``, ``COPY``, ``ENV``, ``WORKDIR``,
``LABEL``, ``ENTRYPOINT``, ``CMD``, ``EXPOSE``.  Each ``RUN`` executes in
a throwaway container and commits its filesystem delta as a layer —
the same layering discipline Docker applies, which is what makes image
digests meaningful as reproducibility pins.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import BuildError, ContainerError
from repro.container.image import Image, ImageConfig, Layer
from repro.container.registry import Registry
from repro.container.runtime import BinaryRegistry, Container, default_binaries

__all__ = ["Instruction", "parse_containerfile", "ImageBuilder"]


@dataclass(frozen=True)
class Instruction:
    """One parsed Containerfile instruction."""

    op: str
    args: str
    line: int


_KNOWN_OPS = {
    "FROM", "RUN", "COPY", "ENV", "WORKDIR", "LABEL", "ENTRYPOINT", "CMD", "EXPOSE",
}


def parse_containerfile(text: str) -> list[Instruction]:
    """Parse Containerfile text into instructions (continuations folded)."""
    instructions: list[Instruction] = []
    pending = ""
    pending_line = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not pending and (not stripped or stripped.startswith("#")):
            continue
        if not pending:
            pending_line = number
        pending += stripped[:-1].rstrip() + " " if stripped.endswith("\\") else stripped
        if stripped.endswith("\\"):
            continue
        op, _, args = pending.partition(" ")
        op = op.upper()
        if op not in _KNOWN_OPS:
            raise BuildError(f"line {pending_line}: unknown instruction {op!r}")
        instructions.append(Instruction(op=op, args=args.strip(), line=pending_line))
        pending = ""
    if pending:
        raise BuildError("Containerfile ends with a dangling continuation")
    if not instructions or instructions[0].op != "FROM":
        raise BuildError("Containerfile must start with FROM")
    return instructions


def _parse_kv(args: str, op: str, line: int) -> tuple[str, str]:
    if "=" in args:
        key, _, value = args.partition("=")
        return key.strip(), value.strip().strip('"')
    parts = args.split(None, 1)
    if len(parts) != 2:
        raise BuildError(f"line {line}: {op} needs KEY VALUE or KEY=VALUE")
    return parts[0], parts[1].strip('"')


class ImageBuilder:
    """Builds images from Containerfiles against a registry and context dir."""

    def __init__(
        self,
        registry: Registry,
        binaries: BinaryRegistry | None = None,
    ) -> None:
        self.registry = registry
        self.binaries = binaries or default_binaries()

    def build(
        self,
        containerfile: str,
        context: str | Path | None = None,
        repo: str = "build",
        tag: str = "latest",
    ) -> Image:
        """Build and store ``repo:tag``; returns the finished image."""
        instructions = parse_containerfile(containerfile)
        context_dir = Path(context) if context is not None else None
        image = self._base(instructions[0])
        build_log: list[str] = [f"FROM {instructions[0].args}"]

        for ins in instructions[1:]:
            handler = getattr(self, f"_op_{ins.op.lower()}", None)
            if handler is None:  # pragma: no cover - _KNOWN_OPS guards this
                raise BuildError(f"line {ins.line}: unhandled op {ins.op}")
            image = handler(image, ins, context_dir)
            build_log.append(f"{ins.op} {ins.args}")

        self.registry.store(repo, image, tag)
        return image

    # -- instruction handlers -------------------------------------------------------
    def _base(self, ins: Instruction) -> Image:
        ref = ins.args.split()[0] if ins.args else ""
        if not ref:
            raise BuildError(f"line {ins.line}: FROM needs an image reference")
        if ref == "scratch":
            return Image(layers=())
        try:
            return self.registry.get(ref)
        except ContainerError as exc:
            raise BuildError(f"line {ins.line}: cannot resolve base {ref!r}: {exc}") from exc

    def _op_run(self, image: Image, ins: Instruction, context: Path | None) -> Image:
        container = Container(image, binaries=self.binaries, name="build")
        result = container.run(ins.args)
        if not result.ok:
            raise BuildError(
                f"line {ins.line}: RUN {ins.args!r} failed "
                f"(exit {result.exit_code}): {result.stderr.strip()}"
            )
        layer = container.diff(created_by=f"RUN {ins.args}")
        config = ImageConfig(
            env=tuple(sorted(container.env.items())),
            workdir=container.workdir,
            entrypoint=image.config.entrypoint,
            cmd=image.config.cmd,
            labels=image.config.labels,
            exposed_ports=image.config.exposed_ports,
        )
        return image.with_layer(layer, config)

    def _op_copy(self, image: Image, ins: Instruction, context: Path | None) -> Image:
        parts = shlex.split(ins.args)
        if len(parts) != 2:
            raise BuildError(f"line {ins.line}: COPY needs SRC DST")
        src, dst = parts
        if context is None:
            raise BuildError(f"line {ins.line}: COPY requires a build context")
        source = context / src
        files: dict[str, bytes] = {}
        if source.is_file():
            target = dst if not dst.endswith("/") else dst + source.name
            if not target.startswith("/"):
                target = image.config.workdir.rstrip("/") + "/" + target
            files[target] = source.read_bytes()
        elif source.is_dir():
            base = dst.rstrip("/")
            for path in sorted(source.rglob("*")):
                if path.is_file():
                    rel = path.relative_to(source).as_posix()
                    files[f"{base}/{rel}"] = path.read_bytes()
        else:
            raise BuildError(f"line {ins.line}: COPY source not found: {src}")
        layer = Layer.from_dict(files, created_by=f"COPY {ins.args}")
        return image.with_layer(layer)

    def _op_env(self, image: Image, ins: Instruction, context: Path | None) -> Image:
        key, value = _parse_kv(ins.args, "ENV", ins.line)
        config = image.config.with_env(key, value)
        return Image(image.layers, config, image.parent_digest)

    def _op_label(self, image: Image, ins: Instruction, context: Path | None) -> Image:
        key, value = _parse_kv(ins.args, "LABEL", ins.line)
        config = image.config.with_label(key, value)
        return Image(image.layers, config, image.parent_digest)

    def _op_workdir(self, image: Image, ins: Instruction, context: Path | None) -> Image:
        if not ins.args.startswith("/"):
            raise BuildError(f"line {ins.line}: WORKDIR must be absolute")
        from dataclasses import replace

        config = replace(image.config, workdir=ins.args)
        return Image(image.layers, config, image.parent_digest)

    def _op_entrypoint(self, image: Image, ins: Instruction, context: Path | None) -> Image:
        from dataclasses import replace

        config = replace(image.config, entrypoint=tuple(shlex.split(ins.args)))
        return Image(image.layers, config, image.parent_digest)

    def _op_cmd(self, image: Image, ins: Instruction, context: Path | None) -> Image:
        from dataclasses import replace

        config = replace(image.config, cmd=tuple(shlex.split(ins.args)))
        return Image(image.layers, config, image.parent_digest)

    def _op_expose(self, image: Image, ins: Instruction, context: Path | None) -> Image:
        from dataclasses import replace

        try:
            ports = tuple(int(p) for p in ins.args.split())
        except ValueError as exc:
            raise BuildError(f"line {ins.line}: EXPOSE needs port numbers") from exc
        config = replace(
            image.config, exposed_ports=image.config.exposed_ports + ports
        )
        return Image(image.layers, config, image.parent_digest)
