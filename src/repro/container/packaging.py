"""Packaging-mode cost model: bare metal vs container vs virtual machine.

The paper argues ("hypervisor tax") that OS-level virtualization carries
essentially no runtime penalty while VMs carry one that is hard to account
for — and that VM images are far heavier to create, store and transfer.
This module encodes those costs so the claim can be regenerated as a
benchmark (see ``benchmarks/bench_packaging_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.machines import MachineSpec

__all__ = ["PackagingMode", "BARE_METAL", "CONTAINER", "VIRTUAL_MACHINE", "packaged_time"]


@dataclass(frozen=True)
class PackagingMode:
    """How an experiment's software stack is delivered.

    Attributes
    ----------
    name:
        ``bare`` / ``container`` / ``vm``.
    startup_s:
        One-time cost to bring the environment up (process exec vs
        container start vs VM boot).
    runtime_overhead:
        Fractional slowdown applied to the workload's runtime.
    image_size_factor:
        Relative artifact size (container layers share the host kernel;
        VM images carry a whole disk).
    """

    name: str
    startup_s: float
    runtime_overhead: float
    image_size_factor: float


BARE_METAL = PackagingMode("bare", startup_s=0.02, runtime_overhead=0.0, image_size_factor=0.0)
CONTAINER = PackagingMode("container", startup_s=0.35, runtime_overhead=0.008, image_size_factor=1.0)
VIRTUAL_MACHINE = PackagingMode("vm", startup_s=45.0, runtime_overhead=0.12, image_size_factor=12.0)


def packaged_time(
    workload_seconds: float,
    mode: PackagingMode,
    machine: MachineSpec | None = None,
    include_startup: bool = True,
) -> float:
    """Observed wall time for a workload delivered via *mode*.

    When *machine* already carries a virtualization tax (e.g. an EC2
    instance type) the mode's runtime overhead stacks on top, matching
    the nested-virtualization pessimism real measurements show.
    """
    time = workload_seconds * (1.0 + mode.runtime_overhead)
    if include_startup:
        time += mode.startup_s
    return time
