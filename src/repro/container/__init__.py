"""Container-engine substrate: layered images, Containerfile builds,
registries, a copy-on-write runtime with in-process binaries, and the
packaging-overhead cost model (the Docker substitution from DESIGN.md).
"""

from repro.container.containerfile import ImageBuilder, Instruction, parse_containerfile
from repro.container.image import TOMBSTONE, Image, ImageConfig, Layer, scratch
from repro.container.packaging import (
    BARE_METAL,
    CONTAINER,
    VIRTUAL_MACHINE,
    PackagingMode,
    packaged_time,
)
from repro.container.registry import Registry, parse_reference
from repro.container.runtime import (
    PACKAGE_DB,
    BinaryRegistry,
    Container,
    ExecResult,
    default_binaries,
)

__all__ = [
    "Image",
    "ImageConfig",
    "Layer",
    "TOMBSTONE",
    "scratch",
    "Registry",
    "parse_reference",
    "Container",
    "ExecResult",
    "BinaryRegistry",
    "default_binaries",
    "PACKAGE_DB",
    "ImageBuilder",
    "Instruction",
    "parse_containerfile",
    "PackagingMode",
    "BARE_METAL",
    "CONTAINER",
    "VIRTUAL_MACHINE",
    "packaged_time",
]

from repro.container.archive import image_history, load_image, save_image  # noqa: E402

__all__ += ["save_image", "load_image", "image_history"]
