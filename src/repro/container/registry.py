"""Image registries: tag → digest naming plus digest → image storage.

Mirrors Docker Hub semantics closely enough for the convention's needs:
tags are mutable pointers, digests are immutable; ``push``/``pull`` move
images between registries (e.g. a "local daemon" registry and a shared
one); pulling by digest is the reproducible path and the one Popper
templates use.
"""

from __future__ import annotations

from repro.common.errors import ContainerError, ImageNotFound
from repro.container.image import Image

__all__ = ["Registry", "parse_reference"]


def parse_reference(reference: str) -> tuple[str, str]:
    """Split ``name:tag`` / ``name@sha256:digest`` into (name, selector).

    The selector is ``tag:<t>`` or ``digest:<d>``.
    """
    if "@" in reference:
        name, _, digest = reference.partition("@")
        if digest.startswith("sha256:"):
            digest = digest[len("sha256:"):]
        if not name or not digest:
            raise ContainerError(f"bad image reference: {reference!r}")
        return name, f"digest:{digest}"
    name, sep, tag = reference.partition(":")
    if not name:
        raise ContainerError(f"bad image reference: {reference!r}")
    return name, f"tag:{tag or 'latest'}"


class Registry:
    """A store of images addressed by repository name and tag/digest."""

    def __init__(self, name: str = "local") -> None:
        self.name = name
        self._by_digest: dict[str, Image] = {}
        self._tags: dict[str, dict[str, str]] = {}  # repo -> tag -> digest

    # -- write ------------------------------------------------------------------
    def store(self, repo: str, image: Image, tag: str = "latest") -> str:
        """Store *image* under ``repo:tag``; returns the digest."""
        if not repo:
            raise ContainerError("repository name required")
        digest = image.digest
        self._by_digest[digest] = image
        self._tags.setdefault(repo, {})[tag] = digest
        return digest

    def untag(self, repo: str, tag: str) -> None:
        """Remove a tag (the digest-addressed image stays)."""
        try:
            del self._tags[repo][tag]
        except KeyError:
            raise ImageNotFound(f"{repo}:{tag}") from None

    # -- read --------------------------------------------------------------------
    def resolve(self, reference: str) -> str:
        """Resolve a reference to a digest."""
        repo, selector = parse_reference(reference)
        kind, _, value = selector.partition(":")
        if kind == "digest":
            matches = [d for d in self._by_digest if d.startswith(value)]
            if not matches:
                raise ImageNotFound(reference)
            if len(matches) > 1:
                raise ContainerError(f"ambiguous digest prefix: {value!r}")
            return matches[0]
        digest = self._tags.get(repo, {}).get(value)
        if digest is None:
            raise ImageNotFound(reference)
        return digest

    def get(self, reference: str) -> Image:
        """Fetch the image for a ``name:tag`` or ``name@sha256:...`` ref."""
        return self._by_digest[self.resolve(reference)]

    def contains(self, reference: str) -> bool:
        try:
            self.resolve(reference)
            return True
        except (ImageNotFound, ContainerError):
            return False

    def tags(self, repo: str) -> dict[str, str]:
        """tag → digest mapping for one repository."""
        return dict(self._tags.get(repo, {}))

    def repositories(self) -> list[str]:
        return sorted(self._tags)

    # -- transfer -----------------------------------------------------------------
    def push(self, reference: str, remote: "Registry") -> str:
        """Copy an image (and its tag) from this registry to *remote*."""
        repo, selector = parse_reference(reference)
        digest = self.resolve(reference)
        image = self._by_digest[digest]
        kind, _, value = selector.partition(":")
        tag = value if kind == "tag" else "latest"
        return remote.store(repo, image, tag)

    def pull(self, reference: str, remote: "Registry") -> Image:
        """Fetch an image from *remote* into this registry."""
        repo, selector = parse_reference(reference)
        digest = remote.resolve(reference)
        image = remote._by_digest[digest]
        kind, _, value = selector.partition(":")
        tag = value if kind == "tag" else "latest"
        self.store(repo, image, tag)
        return image
