"""The container runtime: copy-on-write filesystems, an in-process binary
registry, a tiny POSIX-ish shell, and a simulated package manager.

Real Docker runs Linux processes in namespaces; this runtime runs Python
callables ("binaries") against a container's in-memory filesystem.  The
behavioural contract the Popper convention needs is preserved:

* a container starts from an image's flattened filesystem and never
  mutates the image (copy-on-write; :meth:`Container.diff` extracts the
  delta as a new layer — which is also how ``RUN`` build steps commit);
* a command only runs if its binary exists in the container (installed
  by a package, baked into a layer, or a shell builtin) — giving the
  realistic "works on my machine" failure modes CI integrity checks catch;
* bind mounts expose host directories, which is how experiments export
  ``results.csv`` back to the Popper repository.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.common.errors import ContainerError
from repro.container.image import TOMBSTONE, Image, Layer

__all__ = [
    "ExecResult",
    "BinaryRegistry",
    "Container",
    "PACKAGE_DB",
    "default_binaries",
]


@dataclass(frozen=True)
class ExecResult:
    """Outcome of one command execution."""

    exit_code: int
    stdout: str = ""
    stderr: str = ""

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


#: name -> {"provides": [binaries], "requires": [package deps]}
PACKAGE_DB: dict[str, dict] = {
    "coreutils": {"provides": ["ls", "cp", "mv", "rm", "cat", "touch", "mkdir"], "requires": []},
    "gcc": {"provides": ["gcc", "cc"], "requires": ["binutils"]},
    "binutils": {"provides": ["ld", "as"], "requires": []},
    "make": {"provides": ["make"], "requires": []},
    "git": {"provides": ["git"], "requires": []},
    "python3": {"provides": ["python3", "pip3"], "requires": []},
    "gnuplot": {"provides": ["gnuplot"], "requires": []},
    "openmpi": {"provides": ["mpirun", "mpicc"], "requires": ["gcc"]},
    "mpip": {"provides": ["mpip-report"], "requires": ["openmpi"]},
    "fuse": {"provides": ["fusermount"], "requires": []},
    "gasnet": {"provides": ["gasnet-run"], "requires": ["gcc"]},
    "gassyfs": {"provides": ["gassyfs-mount"], "requires": ["gasnet", "fuse"]},
    "stress-ng": {"provides": ["stress-ng"], "requires": []},
    "fio": {"provides": ["fio"], "requires": []},
    "jupyter": {"provides": ["jupyter"], "requires": ["python3"]},
    "dpm": {"provides": ["dpm"], "requires": ["python3"]},
    "lulesh": {"provides": ["lulesh"], "requires": ["openmpi"]},
}


BinaryFn = Callable[["Container", list[str]], ExecResult]


class BinaryRegistry:
    """Name → Python callable table for container "binaries"."""

    def __init__(self) -> None:
        self._binaries: dict[str, BinaryFn] = {}

    def register(self, name: str, fn: BinaryFn) -> None:
        if name in self._binaries:
            raise ContainerError(f"binary already registered: {name!r}")
        self._binaries[name] = fn

    def get(self, name: str) -> BinaryFn | None:
        return self._binaries.get(name)

    def names(self) -> list[str]:
        return sorted(self._binaries)

    def copy(self) -> "BinaryRegistry":
        clone = BinaryRegistry()
        clone._binaries = dict(self._binaries)
        return clone


# ---------------------------------------------------------------------------
# Builtin binaries
# ---------------------------------------------------------------------------

def _bin_echo(container: "Container", argv: list[str]) -> ExecResult:
    return ExecResult(0, stdout=" ".join(argv[1:]) + "\n")


def _bin_true(container: "Container", argv: list[str]) -> ExecResult:
    return ExecResult(0)


def _bin_false(container: "Container", argv: list[str]) -> ExecResult:
    return ExecResult(1)


def _bin_cat(container: "Container", argv: list[str]) -> ExecResult:
    if len(argv) < 2:
        return ExecResult(2, stderr="cat: missing operand\n")
    chunks = []
    for path in argv[1:]:
        data = container.read_file(container.resolve_path(path), missing_ok=True)
        if data is None:
            return ExecResult(1, stderr=f"cat: {path}: No such file\n")
        chunks.append(data.decode("utf-8", errors="replace"))
    return ExecResult(0, stdout="".join(chunks))


def _bin_touch(container: "Container", argv: list[str]) -> ExecResult:
    for path in argv[1:]:
        full = container.resolve_path(path)
        if container.read_file(full, missing_ok=True) is None:
            container.write_file(full, b"")
    return ExecResult(0)


def _bin_cp(container: "Container", argv: list[str]) -> ExecResult:
    if len(argv) != 3:
        return ExecResult(2, stderr="cp: usage: cp SRC DST\n")
    data = container.read_file(container.resolve_path(argv[1]), missing_ok=True)
    if data is None:
        return ExecResult(1, stderr=f"cp: {argv[1]}: No such file\n")
    container.write_file(container.resolve_path(argv[2]), data)
    return ExecResult(0)


def _bin_rm(container: "Container", argv: list[str]) -> ExecResult:
    paths = [a for a in argv[1:] if not a.startswith("-")]
    recursive = "-r" in argv or "-rf" in argv
    force = "-f" in argv or "-rf" in argv
    for path in paths:
        full = container.resolve_path(path)
        if recursive:
            victims = [p for p in container.list_files() if p == full or p.startswith(full + "/")]
            if not victims and not force:
                return ExecResult(1, stderr=f"rm: {path}: No such file\n")
            for victim in victims:
                container.delete_file(victim)
        else:
            if container.read_file(full, missing_ok=True) is None:
                if force:
                    continue
                return ExecResult(1, stderr=f"rm: {path}: No such file\n")
            container.delete_file(full)
    return ExecResult(0)


def _bin_ls(container: "Container", argv: list[str]) -> ExecResult:
    target = container.resolve_path(argv[1]) if len(argv) > 1 else container.workdir
    prefix = target.rstrip("/") + "/"
    names = set()
    for path in container.list_files():
        if path == target:
            names.add(path.rsplit("/", 1)[-1])
        elif path.startswith(prefix):
            names.add(path[len(prefix):].split("/", 1)[0])
    return ExecResult(0, stdout="\n".join(sorted(names)) + ("\n" if names else ""))


def _bin_mkdir(container: "Container", argv: list[str]) -> ExecResult:
    # Directories are implicit in a flat-path fs; accept and succeed.
    return ExecResult(0)


def _bin_test(container: "Container", argv: list[str]) -> ExecResult:
    if len(argv) == 3 and argv[1] in ("-f", "-e"):
        exists = (
            container.read_file(container.resolve_path(argv[2]), missing_ok=True)
            is not None
        )
        return ExecResult(0 if exists else 1)
    if len(argv) == 3 and argv[1] == "-d":
        prefix = container.resolve_path(argv[2]).rstrip("/") + "/"
        return ExecResult(
            0 if any(p.startswith(prefix) for p in container.list_files()) else 1
        )
    return ExecResult(2, stderr="test: unsupported expression\n")


def _bin_pkg(container: "Container", argv: list[str]) -> ExecResult:
    """The simulated package manager: ``pkg install <name>...``."""
    if len(argv) < 3 or argv[1] != "install":
        return ExecResult(2, stderr="pkg: usage: pkg install NAME...\n")
    out = []
    to_install = list(argv[2:])
    seen: set[str] = set()
    while to_install:
        name = to_install.pop(0)
        if name in seen:
            continue
        seen.add(name)
        meta = PACKAGE_DB.get(name)
        if meta is None:
            return ExecResult(1, stderr=f"pkg: unknown package {name!r}\n")
        to_install.extend(meta["requires"])
        container.write_file(f"/var/lib/pkg/{name}", b"installed\n")
        for binary in meta["provides"]:
            container.write_file(f"/usr/bin/{binary}", b"#!binary\n")
        out.append(f"installed {name}")
    return ExecResult(0, stdout="\n".join(out) + "\n")


def default_binaries() -> BinaryRegistry:
    """Registry with the standard builtin toolset."""
    registry = BinaryRegistry()
    for name, fn in [
        ("echo", _bin_echo),
        ("true", _bin_true),
        ("false", _bin_false),
        ("cat", _bin_cat),
        ("touch", _bin_touch),
        ("cp", _bin_cp),
        ("rm", _bin_rm),
        ("ls", _bin_ls),
        ("mkdir", _bin_mkdir),
        ("test", _bin_test),
        ("pkg", _bin_pkg),
    ]:
        registry.register(name, fn)
    return registry


#: Binaries always available without any package (shell builtins).
_ALWAYS_AVAILABLE = {"echo", "true", "false", "test", "pkg", "sh", "mkdir",
                     "cat", "touch", "cp", "rm", "ls"}


class Container:
    """A runnable instance of an image.

    Parameters
    ----------
    image:
        The image to instantiate.
    binaries:
        Binary registry (defaults to :func:`default_binaries`).
    name:
        Container name for logs.
    mounts:
        Mapping of container path prefix → host directory.  Reads fall
        through to the host; writes propagate back (bind-mount semantics).
    """

    #: Startup cost model, seconds (used by the packaging-overhead bench).
    START_OVERHEAD_S = 0.35

    def __init__(
        self,
        image: Image,
        binaries: BinaryRegistry | None = None,
        name: str = "c0",
        mounts: dict[str, str | Path] | None = None,
    ) -> None:
        self.image = image
        self.name = name
        self.binaries = binaries or default_binaries()
        self._fs: dict[str, bytes] = dict(image.flatten())
        self._deleted: set[str] = set()
        self.env: dict[str, str] = image.config.env_dict()
        self.workdir: str = image.config.workdir
        self.mounts = {
            k.rstrip("/"): Path(v) for k, v in (mounts or {}).items()
        }
        self.log: list[str] = []

    # -- filesystem ---------------------------------------------------------------
    def resolve_path(self, path: str) -> str:
        """Resolve *path* against the working directory."""
        if not path.startswith("/"):
            base = self.workdir.rstrip("/")
            path = f"{base}/{path}"
        # normalize
        parts: list[str] = []
        for part in path.split("/"):
            if part in ("", "."):
                continue
            if part == "..":
                if parts:
                    parts.pop()
                continue
            parts.append(part)
        return "/" + "/".join(parts)

    def _mount_for(self, path: str) -> tuple[str, Path] | None:
        for prefix, host in sorted(self.mounts.items(), key=lambda kv: -len(kv[0])):
            if path == prefix or path.startswith(prefix + "/"):
                return prefix, host
        return None

    def read_file(self, path: str, missing_ok: bool = False) -> bytes | None:
        """Read a file from the container (mounts shadow the overlay)."""
        path = self.resolve_path(path)
        mount = self._mount_for(path)
        if mount is not None:
            prefix, host = mount
            target = host / path[len(prefix):].lstrip("/")
            if target.is_file():
                return target.read_bytes()
            if missing_ok:
                return None
            raise ContainerError(f"no such file in mount: {path}")
        if path in self._fs:
            return self._fs[path]
        if missing_ok:
            return None
        raise ContainerError(f"no such file: {path}")

    def write_file(self, path: str, data: bytes) -> None:
        """Write a file into the container overlay (or through a mount)."""
        path = self.resolve_path(path)
        mount = self._mount_for(path)
        if mount is not None:
            prefix, host = mount
            target = host / path[len(prefix):].lstrip("/")
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(data)
            return
        self._fs[path] = data
        self._deleted.discard(path)

    def delete_file(self, path: str) -> None:
        path = self.resolve_path(path)
        mount = self._mount_for(path)
        if mount is not None:
            prefix, host = mount
            target = host / path[len(prefix):].lstrip("/")
            if target.is_file():
                target.unlink()
            return
        if path in self._fs:
            del self._fs[path]
        self._deleted.add(path)

    def list_files(self) -> list[str]:
        """All file paths currently visible in the overlay (mounts excluded)."""
        return sorted(self._fs)

    # -- execution ------------------------------------------------------------------
    def has_binary(self, name: str) -> bool:
        """A binary is runnable if builtin or provided by an installed file."""
        if name in _ALWAYS_AVAILABLE:
            return self.binaries.get(name) is not None or name == "sh"
        return (
            f"/usr/bin/{name}" in self._fs
            and self.binaries.get(name) is not None
        ) or (self.binaries.get(name) is not None and f"/usr/bin/{name}" in self._fs)

    def run(self, command: str | list[str]) -> ExecResult:
        """Execute a command (string → shell semantics; list → direct exec)."""
        if isinstance(command, str):
            result = self._run_shell(command)
        else:
            result = self._exec(list(command))
        status = "ok" if result.ok else f"exit={result.exit_code}"
        summary = command if isinstance(command, str) else " ".join(command)
        self.log.append(f"[{self.name}] $ {summary} -> {status}")
        return result

    def _run_shell(self, script: str) -> ExecResult:
        """Interpret `a && b`, `a ; b`, `cmd > file` and $VAR expansion."""
        stdout_parts: list[str] = []
        stderr_parts: list[str] = []
        for sequence_chunk in script.split(";"):
            for chunk in sequence_chunk.split("&&"):
                chunk = chunk.strip()
                if not chunk:
                    continue
                redirect: str | None = None
                append = False
                if ">>" in chunk:
                    chunk, _, redirect = chunk.partition(">>")
                    append = True
                elif ">" in chunk:
                    chunk, _, redirect = chunk.partition(">")
                try:
                    argv = shlex.split(chunk)
                except ValueError as exc:
                    return ExecResult(2, stderr=f"sh: parse error: {exc}\n")
                argv = [self._expand(token) for token in argv]
                if not argv:
                    continue
                if argv[0] == "cd":
                    if len(argv) != 2:
                        return ExecResult(2, stderr="cd: usage: cd DIR\n")
                    self.workdir = self.resolve_path(argv[1])
                    continue
                if argv[0] == "export" and len(argv) == 2 and "=" in argv[1]:
                    key, _, value = argv[1].partition("=")
                    self.env[key] = value
                    continue
                result = self._exec(argv)
                if redirect is not None:
                    target = self.resolve_path(redirect.strip())
                    payload = result.stdout.encode("utf-8")
                    if append:
                        existing = self.read_file(target, missing_ok=True) or b""
                        payload = existing + payload
                    self.write_file(target, payload)
                else:
                    stdout_parts.append(result.stdout)
                stderr_parts.append(result.stderr)
                if not result.ok:
                    return ExecResult(
                        result.exit_code,
                        stdout="".join(stdout_parts),
                        stderr="".join(stderr_parts),
                    )
        return ExecResult(0, stdout="".join(stdout_parts), stderr="".join(stderr_parts))

    def _expand(self, token: str) -> str:
        out = token
        for key, value in self.env.items():
            out = out.replace(f"${{{key}}}", value).replace(f"${key}", value)
        return out

    def _exec(self, argv: list[str]) -> ExecResult:
        if not argv:
            return ExecResult(2, stderr="sh: empty command\n")
        name = argv[0].rsplit("/", 1)[-1]
        fn = self.binaries.get(name)
        if fn is None:
            return ExecResult(127, stderr=f"sh: {name}: command not found\n")
        if name not in _ALWAYS_AVAILABLE and f"/usr/bin/{name}" not in self._fs:
            return ExecResult(
                127,
                stderr=(
                    f"sh: {name}: command not found "
                    f"(is its package installed?)\n"
                ),
            )
        try:
            return fn(self, argv)
        except ContainerError as exc:
            return ExecResult(1, stderr=f"{name}: {exc}\n")

    # -- commit ---------------------------------------------------------------------
    def diff(self, created_by: str = "") -> Layer:
        """The overlay delta relative to the image, as a layer."""
        base = self.image.flatten()
        changes: dict[str, bytes] = {}
        for path, data in self._fs.items():
            if base.get(path) != data:
                changes[path] = data
        for path in self._deleted:
            if path in base:
                changes[path] = TOMBSTONE
        return Layer.from_dict(changes, created_by=created_by)

    def commit(self, created_by: str = "") -> Image:
        """Freeze the current overlay into a new image."""
        return self.image.with_layer(self.diff(created_by=created_by))
