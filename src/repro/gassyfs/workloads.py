"""Workloads driven over a GassyFS mount.

The paper's figure uses "compiling Git" as the workload; the model here
is a parallel build: configure (serial), compile one translation unit
per task fanned out across the cluster's nodes (each task reads its
source from GassyFS, burns CPU, writes its object back), then link
(serial, reads every object).  Compute runs on simulated nodes through
the roofline model; file traffic is charged through the GASNet substrate
— so runtime scales sublinearly with node count and flattens as the
remote-access share grows, which is the figure's shape.

A second workload (``SequentialIO``) measures raw FS streaming, used by
unit tests and the placement ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import GassyFSError
from repro.common.rng import SeedSequenceFactory
from repro.gassyfs.fs import GassyFS
from repro.platform.perfmodel import KernelDemand, execution_time

__all__ = ["CompileWorkload", "SequentialIO", "GIT_COMPILE", "KERNEL_UNTAR_BUILD"]


@dataclass(frozen=True)
class CompileWorkload:
    """A parallel software build over GassyFS.

    Attributes mirror a real tree: number of translation units, bytes per
    source/object, compile cost per unit and link cost.
    """

    name: str
    files: int = 430
    source_kib: int = 38
    object_kib: int = 56
    compile_ops: float = 5.5e8       # per translation unit
    configure_ops: float = 2.0e9     # serial, before the parallel phase
    link_ops: float = 6.0e9          # serial, after
    compile_ws_kib: float = 4096.0

    def materialize_sources(self, fs: GassyFS, rng: np.random.Generator) -> float:
        """Write the source tree into the FS; returns elapsed model time."""
        start = fs.clock
        fs.mkdir("/src")
        fs.mkdir("/obj")
        for i in range(self.files):
            path = f"/src/file{i:04d}.c"
            fs.create(path)
            payload = rng.bytes(self.source_kib * 1024)
            fs.write(path, payload)
        return fs.clock - start

    def run(
        self,
        fs: GassyFS,
        seeds: SeedSequenceFactory,
        jobs_per_node: int = 1,
    ) -> float:
        """Execute the build; returns the modeled makespan in seconds.

        Requires :meth:`materialize_sources` to have populated ``/src``.
        """
        cluster = fs.cluster
        n = len(cluster)
        if jobs_per_node < 1:
            raise GassyFSError("jobs_per_node must be >= 1")
        rng = seeds.rng("workload", self.name, "run", n)

        # --- configure: serial on the client node ---------------------------
        client = cluster.nodes[fs.client_rank]
        configure = client.observed_time(
            execution_time(
                KernelDemand(ops=self.configure_ops, working_set_kib=512),
                client.spec,
            ),
            rng,
        )

        # --- compile: fan tasks over nodes ----------------------------------
        per_node_busy = [0.0] * n
        demand = KernelDemand(
            ops=self.compile_ops,
            fp_fraction=0.02,
            mem_bytes=self.compile_ops * 0.4,
            working_set_kib=self.compile_ws_kib,
        )
        for i in range(self.files):
            rank = i % n
            node = cluster.nodes[rank]
            src = f"/src/file{i:04d}.c"
            fs.read(src, rank=rank)
            io_time = fs.last_op_elapsed
            compute = node.observed_time(
                execution_time(demand, node.spec), rng
            ) / jobs_per_node
            obj = f"/obj/file{i:04d}.o"
            if not fs.exists(obj):
                fs.create(obj)
            fs.write(obj, rng.bytes(self.object_kib * 1024), rank=rank)
            io_time += fs.last_op_elapsed
            per_node_busy[rank] += compute + io_time
        compile_makespan = max(per_node_busy)

        # --- link: serial on the client, reads every object ------------------
        link_io = 0.0
        for i in range(self.files):
            fs.read(f"/obj/file{i:04d}.o")
            link_io += fs.last_op_elapsed
        link_compute = client.observed_time(
            execution_time(
                KernelDemand(
                    ops=self.link_ops,
                    mem_bytes=self.files * self.object_kib * 1024,
                    working_set_kib=1 << 16,
                ),
                client.spec,
            ),
            rng,
        )
        return configure + compile_makespan + link_io + link_compute


#: The paper's workload: compiling Git.
GIT_COMPILE = CompileWorkload(name="git-compile")

#: A heavier tree (kernel-ish): more files, bigger link.
KERNEL_UNTAR_BUILD = CompileWorkload(
    name="kernel-build",
    files=900,
    source_kib=24,
    object_kib=40,
    compile_ops=4.0e8,
    configure_ops=4.0e9,
    link_ops=1.6e10,
)


@dataclass(frozen=True)
class SequentialIO:
    """Stream a large file through the FS (write then read back)."""

    total_bytes: int = 1 << 28

    def run(self, fs: GassyFS, seeds: SeedSequenceFactory) -> tuple[float, float]:
        """Returns (write seconds, read seconds) of modeled time."""
        rng = seeds.rng("seqio", len(fs.cluster))
        payload = rng.bytes(min(self.total_bytes, 1 << 22))
        repeats = max(1, self.total_bytes // len(payload))
        fs.create("/stream.bin")
        start = fs.clock
        for _ in range(repeats):
            fs.write("/stream.bin", payload, append=True)
        write_time = fs.clock - start
        start = fs.clock
        fs.read("/stream.bin")
        read_time = fs.clock - start
        return write_time, read_time
