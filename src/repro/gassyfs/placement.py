"""Block-placement policies for GassyFS.

When a file block is allocated, a policy picks which node's memory
segment holds it.  The choice trades local-access speed against balance —
the ablation benchmark (`bench_ablation_gassyfs`) quantifies exactly
this design decision.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

from repro.common.errors import GassyFSError

__all__ = [
    "PlacementPolicy",
    "RoundRobin",
    "LocalFirst",
    "HashPlacement",
    "LeastUsed",
    "make_policy",
]


class PlacementPolicy(ABC):
    """Strategy interface: pick a rank for a new block."""

    name: str = "abstract"

    @abstractmethod
    def place(
        self,
        block_id: int,
        writer_rank: int,
        used_bytes: list[int],
        capacity_bytes: list[int],
        block_bytes: int = 1,
    ) -> int:
        """Return the rank that will store a block of *block_bytes*."""

    def _viable(
        self, used: list[int], capacity: list[int], block: int
    ) -> list[int]:
        ranks = [i for i in range(len(used)) if used[i] + block <= capacity[i]]
        if not ranks:
            raise GassyFSError("ENOSPC: every memory segment is full")
        return ranks


class RoundRobin(PlacementPolicy):
    """Stripe blocks across nodes in order (maximum aggregate bandwidth)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def place(self, block_id, writer_rank, used_bytes, capacity_bytes, block_bytes=1):
        viable = self._viable(used_bytes, capacity_bytes, block_bytes)
        for _ in range(len(capacity_bytes)):
            candidate = self._next % len(capacity_bytes)
            self._next += 1
            if candidate in viable:
                return candidate
        return viable[0]  # pragma: no cover - _viable guarantees non-empty


class LocalFirst(PlacementPolicy):
    """Fill the writer's own segment before spilling remotely."""

    name = "local-first"

    def place(self, block_id, writer_rank, used_bytes, capacity_bytes, block_bytes=1):
        viable = self._viable(used_bytes, capacity_bytes, block_bytes)
        if writer_rank in viable:
            return writer_rank
        return min(viable, key=lambda r: used_bytes[r])


class HashPlacement(PlacementPolicy):
    """Deterministic pseudo-random scatter by block id."""

    name = "hash"

    def place(self, block_id, writer_rank, used_bytes, capacity_bytes, block_bytes=1):
        viable = self._viable(used_bytes, capacity_bytes, block_bytes)
        digest = hashlib.sha256(str(block_id).encode("ascii")).digest()
        preferred = int.from_bytes(digest[:8], "big") % len(capacity_bytes)
        if preferred in viable:
            return preferred
        return viable[preferred % len(viable)]


class LeastUsed(PlacementPolicy):
    """Greedy capacity balancing."""

    name = "least-used"

    def place(self, block_id, writer_rank, used_bytes, capacity_bytes, block_bytes=1):
        viable = self._viable(used_bytes, capacity_bytes, block_bytes)
        return min(viable, key=lambda r: used_bytes[r] / capacity_bytes[r])


_POLICIES = {
    "round-robin": RoundRobin,
    "local-first": LocalFirst,
    "hash": HashPlacement,
    "least-used": LeastUsed,
}


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a policy by name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise GassyFSError(
            f"unknown placement policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
