"""The GassyFS scalability experiment (the paper's Fig. `gassyfs-git`).

Sweeps cluster size over one or more sites, runs the compile workload at
each point, and emits the ``results.csv``-shaped table whose integrity
the paper checks with Listing 3's Aver assertion::

    when workload=* and machine=* expect sublinear(nodes, time)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import GassyFSError
from repro.common.rng import SeedSequenceFactory
from repro.common.tables import MetricsTable
from repro.gassyfs.fs import GassyFS, MountOptions
from repro.gassyfs.gasnet import GasnetCluster
from repro.gassyfs.placement import make_policy
from repro.gassyfs.workloads import GIT_COMPILE, CompileWorkload
from repro.monitor.tracing import current_tracer
from repro.platform.sites import Site, default_sites

__all__ = ["ScalabilityConfig", "run_point", "run_scalability_experiment"]


@dataclass(frozen=True)
class ScalabilityConfig:
    """Parametrization of the sweep (the experiment's ``vars.yml``)."""

    node_counts: tuple[int, ...] = (1, 2, 4, 8)
    workloads: tuple[CompileWorkload, ...] = (GIT_COMPILE,)
    sites: tuple[str, ...] = ("cloudlab-wisc", "ec2")
    placement: str = "round-robin"
    block_size: int = 1 << 20
    seed: int = 42

    def __post_init__(self) -> None:
        if not self.node_counts or min(self.node_counts) < 1:
            raise GassyFSError("node_counts must be positive")


def run_point(
    site: Site,
    nodes: int,
    workload: CompileWorkload,
    config: ScalabilityConfig,
    seeds: SeedSequenceFactory,
) -> float:
    """One (site, node-count, workload) measurement; returns seconds."""
    with site.allocate(nodes) as allocation:
        cluster = GasnetCluster(allocation)
        fs = GassyFS(
            cluster,
            options=MountOptions(block_size=config.block_size),
            policy=make_policy(config.placement),
        )
        setup_rng = seeds.rng("setup", site.name, workload.name, nodes)
        workload.materialize_sources(fs, setup_rng)
        return workload.run(fs, seeds.child(site.name, workload.name, nodes))


def run_scalability_experiment(
    config: ScalabilityConfig | None = None,
    sites: dict[str, Site] | None = None,
) -> MetricsTable:
    """Full sweep; returns rows of (workload, machine, nodes, time)."""
    config = config or ScalabilityConfig()
    sites = sites or default_sites(config.seed)
    seeds = SeedSequenceFactory(config.seed)
    table = MetricsTable(["workload", "machine", "nodes", "time"])
    for site_name in config.sites:
        if site_name not in sites:
            raise GassyFSError(f"unknown site {site_name!r}")
        site = sites[site_name]
        for workload in config.workloads:
            for nodes in config.node_counts:
                with current_tracer().span(
                    "gassyfs/point",
                    machine=site_name,
                    workload=workload.name,
                    nodes=nodes,
                ) as span:
                    elapsed = run_point(site, nodes, workload, config, seeds)
                    span.attributes["modeled_seconds"] = elapsed
                table.append(
                    {
                        "workload": workload.name,
                        "machine": site_name,
                        "nodes": nodes,
                        "time": elapsed,
                    }
                )
    return table
