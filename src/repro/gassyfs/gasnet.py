"""GASNet-style communication substrate for GassyFS.

GassyFS aggregates the memory of a cluster through one-sided remote
put/get operations.  :class:`GasnetCluster` binds a set of allocated
platform nodes into a communication domain and charges modeled time for
every transfer: per-message latency plus size over the slower of the two
NICs, with a simple shared-uplink contention multiplier.  Per-node
traffic counters feed the experiment's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import GassyFSError
from repro.platform.sites import Node, NodeAllocation

__all__ = ["TransferStats", "GasnetCluster"]


@dataclass
class TransferStats:
    """Cumulative traffic counters for one node."""

    bytes_in: int = 0
    bytes_out: int = 0
    messages: int = 0


class GasnetCluster:
    """A communication domain over allocated nodes."""

    def __init__(self, nodes: list[Node] | NodeAllocation, oversubscription: float = 0.0):
        members = list(nodes)
        if not members:
            raise GassyFSError("a GASNet cluster needs at least one node")
        self.nodes = members
        #: extra slowdown per additional node sharing the uplink (models a
        #: non-blocking switch at 0.0 and a congested ToR at higher values)
        self.oversubscription = oversubscription
        self.stats = [TransferStats() for _ in members]
        self._clock = 0.0

    def __len__(self) -> int:
        return len(self.nodes)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < len(self.nodes):
            raise GassyFSError(
                f"rank {rank} out of range (cluster size {len(self.nodes)})"
            )

    # -- cost model --------------------------------------------------------------
    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Modeled seconds to move *nbytes* from *src* to *dst*."""
        self._check_rank(src)
        self._check_rank(dst)
        if nbytes < 0:
            raise GassyFSError(f"negative transfer size: {nbytes}")
        if src == dst:
            # Local memcpy: charged at memory bandwidth.
            spec = self.nodes[src].spec
            return nbytes / spec.mem_bytes_per_sec
        a, b = self.nodes[src].spec, self.nodes[dst].spec
        bandwidth = min(a.net_bytes_per_sec, b.net_bytes_per_sec)
        congestion = 1.0 + self.oversubscription * max(0, len(self.nodes) - 2)
        latency = (a.net_lat_us + b.net_lat_us) / 2.0 * 1e-6
        return latency + nbytes * congestion / bandwidth

    # -- one-sided operations --------------------------------------------------------
    def put(self, src: int, dst: int, nbytes: int) -> float:
        """One-sided put; returns elapsed model time and updates counters."""
        elapsed = self.transfer_time(src, dst, nbytes)
        if src != dst:
            self.stats[src].bytes_out += nbytes
            self.stats[dst].bytes_in += nbytes
            self.stats[src].messages += 1
        self._clock += elapsed
        return elapsed

    def get(self, dst: int, src: int, nbytes: int) -> float:
        """One-sided get of *nbytes* from *src* into *dst*."""
        elapsed = self.transfer_time(src, dst, nbytes)
        if src != dst:
            self.stats[src].bytes_out += nbytes
            self.stats[dst].bytes_in += nbytes
            self.stats[dst].messages += 1
        self._clock += elapsed
        return elapsed

    @property
    def clock(self) -> float:
        """Total serialized communication time charged so far."""
        return self._clock

    def total_remote_bytes(self) -> int:
        return sum(s.bytes_out for s in self.stats)
