"""The GassyFS distributed in-memory file system.

Files live as fixed-size blocks scattered over the cluster's memory
segments by a placement policy; metadata (a POSIX-ish inode tree) lives
on the mounting node.  Every operation both *works* (real bytes round-trip
through real blocks) and *costs* (modeled time charged through the GASNet
substrate and the FUSE layer), so the same code path answers functional
tests and produces the scalability figure.

Paper: "GassyFS ... stores files in distributed remote memory provided by
workers ... over a network with support for RDMA; the FUSE implementation
runs on a dedicated node."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import FSError, GassyFSError
from repro.gassyfs.gasnet import GasnetCluster
from repro.gassyfs.placement import PlacementPolicy, RoundRobin
from repro.monitor.metrics import MetricStore

__all__ = ["MountOptions", "FileStat", "GassyFS"]

_FUSE_OP_OVERHEAD_S = 8e-6  # per-VFS-call user/kernel crossing cost


@dataclass(frozen=True)
class MountOptions:
    """The (subset of 30+) FUSE/GassyFS mount options the experiments vary."""

    block_size: int = 1 << 20
    segment_bytes: int = 1 << 30   # memory each node contributes
    direct_io: bool = False        # bypass page-cache modeling
    writeback: bool = True         # async write-behind (cheaper writes)
    atomic_o_trunc: bool = True
    replicas: int = 1              # copies of every block (fault tolerance)

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise GassyFSError(f"block size must be positive: {self.block_size}")
        if self.segment_bytes < self.block_size:
            raise GassyFSError("segment smaller than one block")
        if self.replicas < 1:
            raise GassyFSError(f"replicas must be >= 1: {self.replicas}")


@dataclass(frozen=True)
class FileStat:
    """Subset of ``struct stat`` the experiments consult."""

    path: str
    is_dir: bool
    size: int
    blocks: int


@dataclass
class _Inode:
    is_dir: bool
    children: dict[str, "_Inode"] = field(default_factory=dict)  # dirs
    block_ids: list[int] = field(default_factory=list)           # files
    size: int = 0


class GassyFS:
    """A mounted GassyFS instance.

    Parameters
    ----------
    cluster:
        The GASNet communication domain (its node list defines capacity).
    options:
        Mount options.
    policy:
        Block placement policy (round-robin by default, like the real
        system's striping).
    client_rank:
        The rank running FUSE — all metadata and all data ultimately
        flows through this node.
    metrics:
        Optional store receiving per-op latency samples.
    """

    def __init__(
        self,
        cluster: GasnetCluster,
        options: MountOptions | None = None,
        policy: PlacementPolicy | None = None,
        client_rank: int = 0,
        metrics: MetricStore | None = None,
    ) -> None:
        self.cluster = cluster
        self.options = options or MountOptions()
        self.policy = policy or RoundRobin()
        if not 0 <= client_rank < len(cluster):
            raise GassyFSError(f"client rank {client_rank} outside cluster")
        self.client_rank = client_rank
        self.metrics = metrics
        self._root = _Inode(is_dir=True)
        self._blocks: dict[int, tuple[tuple[int, ...], bytes]] = {}  # id -> (replica ranks, data)
        self._next_block = 0
        self._used = [0] * len(cluster)
        self._capacity = [self.options.segment_bytes] * len(cluster)
        self.clock = 0.0
        self.last_op_elapsed = 0.0

    # -- path plumbing ------------------------------------------------------------
    @staticmethod
    def _parts(path: str) -> list[str]:
        if not path.startswith("/"):
            raise FSError("EINVAL", path, "paths must be absolute")
        parts = [p for p in path.split("/") if p]
        if any(p in (".", "..") for p in parts):
            raise FSError("EINVAL", path, "no . or .. allowed")
        return parts

    def _lookup(self, path: str) -> _Inode:
        node = self._root
        for part in self._parts(path):
            if not node.is_dir:
                raise FSError("ENOTDIR", path)
            if part not in node.children:
                raise FSError("ENOENT", path)
            node = node.children[part]
        return node

    def _parent_of(self, path: str) -> tuple[_Inode, str]:
        parts = self._parts(path)
        if not parts:
            raise FSError("EINVAL", path, "root has no parent")
        node = self._root
        for part in parts[:-1]:
            if not node.is_dir:
                raise FSError("ENOTDIR", path)
            if part not in node.children:
                raise FSError("ENOENT", path)
            node = node.children[part]
        if not node.is_dir:
            raise FSError("ENOTDIR", path)
        return node, parts[-1]

    def _charge(self, op: str, elapsed: float) -> None:
        self.last_op_elapsed = elapsed + _FUSE_OP_OVERHEAD_S
        self.clock += elapsed + _FUSE_OP_OVERHEAD_S
        if self.metrics is not None:
            self.metrics.record(
                "gassyfs.op_latency",
                elapsed + _FUSE_OP_OVERHEAD_S,
                labels={"op": op, "nodes": len(self.cluster)},
            )

    # -- directory operations ---------------------------------------------------------
    def mkdir(self, path: str) -> None:
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise FSError("EEXIST", path)
        parent.children[name] = _Inode(is_dir=True)
        self._charge("mkdir", 0.0)

    def readdir(self, path: str) -> list[str]:
        node = self._lookup(path) if path != "/" else self._root
        if not node.is_dir:
            raise FSError("ENOTDIR", path)
        self._charge("readdir", 0.0)
        return sorted(node.children)

    def rmdir(self, path: str) -> None:
        parent, name = self._parent_of(path)
        node = parent.children.get(name)
        if node is None:
            raise FSError("ENOENT", path)
        if not node.is_dir:
            raise FSError("ENOTDIR", path)
        if node.children:
            raise FSError("ENOTEMPTY", path)
        del parent.children[name]
        self._charge("rmdir", 0.0)

    # -- file operations ------------------------------------------------------------------
    def create(self, path: str) -> None:
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise FSError("EEXIST", path)
        parent.children[name] = _Inode(is_dir=False)
        self._charge("create", 0.0)

    def write(
        self, path: str, data: bytes, append: bool = False, rank: int | None = None
    ) -> int:
        """Write *data* (whole-file or append); returns bytes written.

        *rank* is the node issuing the write (defaults to the FUSE client).
        """
        writer = self.client_rank if rank is None else rank
        if not 0 <= writer < len(self.cluster):
            raise GassyFSError(f"writer rank {writer} outside cluster")
        node = self._lookup(path)
        if node.is_dir:
            raise FSError("EISDIR", path)
        if not append:
            self._free_blocks(node)
        elapsed = 0.0
        block_size = self.options.block_size
        replicas = min(self.options.replicas, len(self.cluster))
        for offset in range(0, len(data), block_size):
            chunk = data[offset : offset + block_size]
            targets: list[int] = []
            for _copy in range(replicas):
                try:
                    target = self.policy.place(
                        self._next_block,
                        writer,
                        self._used,
                        self._capacity,
                        block_bytes=len(chunk),
                    )
                except GassyFSError as exc:
                    raise FSError("ENOSPC", path, str(exc)) from exc
                if target in targets:
                    # policy repeated a rank; fall back to the least-used
                    # viable rank not yet holding this block
                    others = [
                        r for r in range(len(self.cluster))
                        if r not in targets
                        and self._used[r] + len(chunk) <= self._capacity[r]
                    ]
                    if not others:
                        raise FSError(
                            "ENOSPC", path, "not enough space for replicas"
                        )
                    target = min(others, key=lambda r: self._used[r])
                if self._used[target] + len(chunk) > self._capacity[target]:
                    raise FSError("ENOSPC", path, "policy chose a full segment")
                targets.append(target)
                self._used[target] += len(chunk)
                elapsed += self.cluster.put(writer, target, len(chunk))
            block_id = self._next_block
            self._next_block += 1
            self._blocks[block_id] = (tuple(targets), bytes(chunk))
            node.block_ids.append(block_id)
        node.size += len(data) if append else 0
        if not append:
            node.size = len(data)
        if self.options.writeback and not self.options.direct_io:
            elapsed *= 0.6  # write-behind overlaps transfers with the app
        self._charge("write", elapsed)
        return len(data)

    def read(self, path: str, rank: int | None = None) -> bytes:
        """Read the whole file back (bytes round-trip exactly).

        *rank* is the node issuing the read (defaults to the FUSE client).
        """
        reader = self.client_rank if rank is None else rank
        if not 0 <= reader < len(self.cluster):
            raise GassyFSError(f"reader rank {reader} outside cluster")
        node = self._lookup(path)
        if node.is_dir:
            raise FSError("EISDIR", path)
        elapsed = 0.0
        chunks: list[bytes] = []
        for block_id in node.block_ids:
            if block_id not in self._blocks:
                raise FSError(
                    "EIO", path, "block lost to a failed node (restore a checkpoint)"
                )
            holders, data = self._blocks[block_id]
            holder = reader if reader in holders else holders[0]
            elapsed += self.cluster.get(reader, holder, len(data))
            chunks.append(data)
        payload = b"".join(chunks)[: node.size]
        self._charge("read", elapsed)
        return payload

    def unlink(self, path: str) -> None:
        parent, name = self._parent_of(path)
        node = parent.children.get(name)
        if node is None:
            raise FSError("ENOENT", path)
        if node.is_dir:
            raise FSError("EISDIR", path)
        self._free_blocks(node)
        del parent.children[name]
        self._charge("unlink", 0.0)

    def truncate(self, path: str, size: int = 0) -> None:
        node = self._lookup(path)
        if node.is_dir:
            raise FSError("EISDIR", path)
        if size != 0:
            raise FSError("EINVAL", path, "only truncate-to-zero supported")
        self._free_blocks(node)
        self._charge("truncate", 0.0)

    def rename(self, old: str, new: str) -> None:
        old_parent, old_name = self._parent_of(old)
        if old_name not in old_parent.children:
            raise FSError("ENOENT", old)
        new_parent, new_name = self._parent_of(new)
        if new_name in new_parent.children:
            raise FSError("EEXIST", new)
        new_parent.children[new_name] = old_parent.children.pop(old_name)
        self._charge("rename", 0.0)

    def stat(self, path: str) -> FileStat:
        node = self._lookup(path) if path != "/" else self._root
        self._charge("stat", 0.0)
        return FileStat(
            path=path,
            is_dir=node.is_dir,
            size=node.size,
            blocks=len(node.block_ids),
        )

    def exists(self, path: str) -> bool:
        try:
            self._lookup(path)
            return True
        except FSError:
            return False

    def _free_blocks(self, node: _Inode) -> None:
        for block_id in node.block_ids:
            entry = self._blocks.pop(block_id, None)
            if entry is not None:  # lost-to-failure blocks are already gone
                ranks, data = entry
                for rank in ranks:
                    self._used[rank] -= len(data)
        node.block_ids.clear()
        node.size = 0

    # -- capacity / placement introspection -------------------------------------------------
    def statfs(self) -> dict:
        """Aggregate and per-node capacity view."""
        return {
            "nodes": len(self.cluster),
            "capacity_bytes": sum(self._capacity),
            "used_bytes": sum(self._used),
            "per_node_used": list(self._used),
            "block_size": self.options.block_size,
        }

    def block_locations(self, path: str) -> list[int]:
        """Rank of every block of a file, in order."""
        node = self._lookup(path)
        if node.is_dir:
            raise FSError("EISDIR", path)
        return [self._blocks[b][0][0] for b in node.block_ids]

    # -- persistence (checkpoint to the client's local storage) ------------------------------
    def checkpoint(self, path: "str | None" = None) -> float:
        """Persist the whole FS image to the client node's storage.

        Returns the modeled time: every remote block crosses the network
        to the client, then streams to its storage device.  With *path*,
        the image is additionally written to the host filesystem so it
        can be restored after a node failure (GassyFS's answer to memory
        volatility).
        """
        spec = self.cluster.nodes[self.client_rank].spec
        elapsed = 0.0
        total = 0
        for ranks, data in self._blocks.values():
            if self.client_rank not in ranks:
                elapsed += self.cluster.transfer_time(
                    ranks[0], self.client_rank, len(data)
                )
            total += len(data)
        elapsed += total / spec.storage_bytes_per_sec
        if path is not None:
            self._write_image(path)
        self._charge("checkpoint", elapsed)
        return elapsed

    def _write_image(self, path: str) -> None:
        import json
        from pathlib import Path as _Path

        def dump(node: _Inode) -> dict:
            if node.is_dir:
                return {
                    "dir": {name: dump(child) for name, child in node.children.items()}
                }
            return {
                "file": {
                    "size": node.size,
                    "blocks": [
                        self._blocks[b][1].hex() for b in node.block_ids
                    ],
                }
            }

        _Path(path).write_text(json.dumps(dump(self._root)), encoding="utf-8")

    def restore(self, path: str) -> float:
        """Reload a checkpoint image (after ``fail_node``, typically).

        Rebuilds the tree and re-places every block with the current
        policy; returns the modeled time (storage read + placement
        transfers).
        """
        import json
        from pathlib import Path as _Path

        doc = json.loads(_Path(path).read_text(encoding="utf-8"))
        self._root = _Inode(is_dir=True)
        self._blocks.clear()
        self._next_block = 0
        self._used = [0] * len(self.cluster)
        spec = self.cluster.nodes[self.client_rank].spec
        start_clock = self.clock

        def load(node_doc: dict, path_so_far: str) -> None:
            if "dir" in node_doc:
                if path_so_far:
                    self.mkdir(path_so_far)
                for name, child in node_doc["dir"].items():
                    load(child, f"{path_so_far}/{name}")
            else:
                meta = node_doc["file"]
                self.create(path_so_far)
                payload = b"".join(bytes.fromhex(h) for h in meta["blocks"])
                self.write(path_so_far, payload[: meta["size"]])

        load(doc, "")
        total = sum(len(d) for _, d in self._blocks.values())
        storage_time = total / spec.storage_bytes_per_sec
        self._charge("restore", storage_time)
        return self.clock - start_clock

    # -- fault injection ------------------------------------------------------------------------
    def fail_node(self, rank: int) -> int:
        """Crash one memory node: every block it held is lost.

        Returns the number of lost blocks.  Subsequent reads of affected
        files raise ``EIO`` — the volatility the paper's checkpointing
        discussion is about.
        """
        if not 0 <= rank < len(self.cluster):
            raise GassyFSError(f"rank {rank} outside cluster")
        lost: list[int] = []
        for block_id, (ranks, data) in list(self._blocks.items()):
            if rank not in ranks:
                continue
            self._used[rank] -= len(data)
            survivors = tuple(r for r in ranks if r != rank)
            if survivors:
                self._blocks[block_id] = (survivors, data)
            else:
                del self._blocks[block_id]
                lost.append(block_id)
        self._failed_blocks = getattr(self, "_failed_blocks", set()) | set(lost)
        return len(lost)
