"""GassyFS: a distributed in-memory file system over a GASNet-style
substrate, plus the paper's scalability use case (Fig. `gassyfs-git`).
"""

from repro.gassyfs.experiment import (
    ScalabilityConfig,
    run_point,
    run_scalability_experiment,
)
from repro.gassyfs.fs import FileStat, GassyFS, MountOptions
from repro.gassyfs.gasnet import GasnetCluster, TransferStats
from repro.gassyfs.placement import (
    HashPlacement,
    LeastUsed,
    LocalFirst,
    PlacementPolicy,
    RoundRobin,
    make_policy,
)
from repro.gassyfs.workloads import (
    GIT_COMPILE,
    KERNEL_UNTAR_BUILD,
    CompileWorkload,
    SequentialIO,
)

__all__ = [
    "GassyFS",
    "MountOptions",
    "FileStat",
    "GasnetCluster",
    "TransferStats",
    "PlacementPolicy",
    "RoundRobin",
    "LocalFirst",
    "HashPlacement",
    "LeastUsed",
    "make_policy",
    "CompileWorkload",
    "SequentialIO",
    "GIT_COMPILE",
    "KERNEL_UNTAR_BUILD",
    "ScalabilityConfig",
    "run_point",
    "run_scalability_experiment",
]
