"""Baseline profiles and cross-platform fingerprint comparison.

A :class:`BaselineProfile` is a machine's vector of stressor rates — its
performance "fingerprint".  :func:`compare` turns two fingerprints into a
:class:`SpeedupProfile` (per-stressor speedup of the target machine over
the base machine), the object the Torpor use case histograms, and what
the convention checks *before* re-running a performance experiment on a
new platform ("if the baseline performance cannot be reproduced, there is
no point in executing the experiment").
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.common.errors import PlatformError
from repro.common.hashing import sha256_text
from repro.common.rng import SeedSequenceFactory
from repro.common.tables import MetricsTable
from repro.baseliner.stressors import STRESSORS, Stressor, run_stressor
from repro.platform.sites import Node

__all__ = [
    "BaselineProfile",
    "SpeedupProfile",
    "run_battery",
    "compare",
]


@dataclass(frozen=True)
class BaselineProfile:
    """Median stressor rates for one machine."""

    machine: str
    rates: tuple[tuple[str, float], ...]  # (stressor, bogo-ops/s)

    def rates_dict(self) -> dict[str, float]:
        return dict(self.rates)

    def rate(self, stressor: str) -> float:
        try:
            return self.rates_dict()[stressor]
        except KeyError:
            raise PlatformError(
                f"profile of {self.machine!r} has no stressor {stressor!r}"
            ) from None

    # -- serialization -----------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {"machine": self.machine, "rates": dict(self.rates)},
            indent=2,
            sort_keys=True,
        )

    def digest(self) -> str:
        """Content hash of the profile (its artifact-store object id).

        Two machines with identical stressor vectors produce the same
        digest, so stored ``baseline.json`` artifacts dedupe across
        experiments and the digest can key cache metadata.
        """
        return sha256_text(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "BaselineProfile":
        doc = json.loads(text)
        return cls(
            machine=doc["machine"],
            rates=tuple(sorted(doc["rates"].items())),
        )


@dataclass(frozen=True)
class SpeedupProfile:
    """Per-stressor speedups of a target machine over a base machine."""

    base: str
    target: str
    speedups: tuple[tuple[str, float], ...]

    def speedups_dict(self) -> dict[str, float]:
        return dict(self.speedups)

    def values(self) -> np.ndarray:
        return np.array([v for _, v in self.speedups], dtype=np.float64)

    def histogram(self, bin_width: float = 0.1) -> list[tuple[float, float, int]]:
        """Counts of stressors per speedup bucket ``(lo, hi]``.

        This is exactly the paper's Torpor "variability profile" figure.
        """
        if bin_width <= 0:
            raise PlatformError("bin width must be positive")
        values = self.values()
        lo = np.floor(values.min() / bin_width) * bin_width
        hi = np.ceil(values.max() / bin_width) * bin_width
        edges = np.arange(lo, hi + bin_width / 2, bin_width)
        if len(edges) < 2:
            edges = np.array([lo, lo + bin_width])
        counts, _ = np.histogram(values, bins=edges)
        return [
            (round(float(edges[i]), 10), round(float(edges[i + 1]), 10), int(c))
            for i, c in enumerate(counts)
        ]

    def mode_bucket(self, bin_width: float = 0.1) -> tuple[float, float, int]:
        """The bucket holding the most stressors."""
        return max(self.histogram(bin_width), key=lambda b: b[2])

    def range_for_class(self, klass: str) -> tuple[float, float]:
        """Min/max speedup across stressors of one class."""
        values = [
            v
            for name, v in self.speedups
            if STRESSORS[name].klass == klass
        ]
        if not values:
            raise PlatformError(f"no stressors of class {klass!r}")
        return (min(values), max(values))

    def to_table(self) -> MetricsTable:
        """Rows of (stressor, class, speedup) — the figure's raw data."""
        table = MetricsTable(["stressor", "class", "base", "target", "speedup"])
        for name, speedup in self.speedups:
            table.append(
                {
                    "stressor": name,
                    "class": STRESSORS[name].klass,
                    "base": self.base,
                    "target": self.target,
                    "speedup": speedup,
                }
            )
        return table


def run_battery(
    node: Node,
    seeds: SeedSequenceFactory,
    runs: int = 3,
    stressors: dict[str, Stressor] | None = None,
) -> BaselineProfile:
    """Run the stressor battery on *node*; rates are medians of *runs*."""
    if runs < 1:
        raise PlatformError("need at least one run")
    battery = stressors if stressors is not None else STRESSORS
    rates: list[tuple[str, float]] = []
    for name in sorted(battery):
        stressor = battery[name]
        rng = seeds.rng("baseliner", node.hostname, name)
        samples = [run_stressor(stressor, node, rng) for _ in range(runs)]
        rates.append((name, float(np.median(samples))))
    return BaselineProfile(machine=node.hostname, rates=tuple(rates))


def compare(base: BaselineProfile, target: BaselineProfile) -> SpeedupProfile:
    """Speedup of *target* relative to *base*, stressor by stressor."""
    base_rates = base.rates_dict()
    target_rates = target.rates_dict()
    common = sorted(set(base_rates) & set(target_rates))
    if not common:
        raise PlatformError("profiles share no stressors")
    speedups = tuple(
        (name, target_rates[name] / base_rates[name]) for name in common
    )
    return SpeedupProfile(
        base=base.machine, target=target.machine, speedups=speedups
    )
