"""Baseline-performance fingerprinting (the baseliner/stress-ng
substitution): a stressor battery, machine profiles and cross-platform
speedup comparison.
"""

from repro.baseliner.fingerprint import (
    BaselineProfile,
    SpeedupProfile,
    compare,
    run_battery,
)
from repro.baseliner.stressors import STRESSORS, Stressor, get_stressor, run_stressor

__all__ = [
    "Stressor",
    "STRESSORS",
    "get_stressor",
    "run_stressor",
    "BaselineProfile",
    "SpeedupProfile",
    "run_battery",
    "compare",
]
