"""The stress-ng-style microbenchmark catalog.

Each :class:`Stressor` models one stress-ng "stressor": a tight kernel
with a characteristic resource demand per bogo-iteration.  Running a
stressor on a simulated node yields a bogo-ops/s rate; the full battery's
rates form a machine's *baseline profile* — the fingerprint the paper's
``baseliner`` tool captures before any experiment is allowed to run.

The catalog spans the classes whose cross-generation speedups differ
most: integer-ALU kernels (speedups track IPC x clock), floating-point
kernels (wider SIMD on newer parts), cache-resident kernels, DRAM
bandwidth/latency kernels, and storage kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import PlatformError
from repro.platform.perfmodel import KernelDemand, execution_time
from repro.platform.sites import Node

__all__ = ["Stressor", "STRESSORS", "get_stressor", "run_stressor"]


@dataclass(frozen=True)
class Stressor:
    """One microbenchmark: a name, class label and per-iteration demand."""

    name: str
    klass: str  # cpu | fp | cache | memory | storage | branch
    demand: KernelDemand
    iterations: int = 100

    def modeled_time(self, node: Node) -> float:
        """Noise-free modeled runtime of the full iteration count."""
        return (
            execution_time(self.demand.scaled(self.iterations), node.spec)
            / node.speed_factor
        )


def _cpu(name: str, ops: float = 2e7, fp: float = 0.0, ws: float = 24.0) -> Stressor:
    return Stressor(
        name=name,
        klass="fp" if fp > 0.5 else "cpu",
        demand=KernelDemand(
            ops=ops, fp_fraction=fp, mem_bytes=ops * 0.05, working_set_kib=ws
        ),
    )


def _cache(name: str, ws_kib: float) -> Stressor:
    return Stressor(
        name=name,
        klass="cache",
        demand=KernelDemand(
            ops=6e6, mem_bytes=4e7, working_set_kib=ws_kib
        ),
    )


def _memory(name: str, mem_bytes: float = 4e8, ops: float = 2e6) -> Stressor:
    return Stressor(
        name=name,
        klass="memory",
        demand=KernelDemand(
            ops=ops, mem_bytes=mem_bytes, working_set_kib=1 << 18
        ),
    )


def _storage(name: str, read_b: float, write_b: float, io_ops: float) -> Stressor:
    return Stressor(
        name=name,
        klass="storage",
        demand=KernelDemand(
            ops=1e6,
            storage_read_bytes=read_b,
            storage_write_bytes=write_b,
            storage_ops=io_ops,
        ),
        iterations=10,
    )


#: The battery.  Names follow stress-ng's stressor names.
STRESSORS: dict[str, Stressor] = {
    s.name: s
    for s in [
        # Integer ALU class: these track IPC x clock and should cluster
        # tightly (the paper's "(2.2, 2.3]" band of 7 stressors).
        _cpu("int64"),
        _cpu("bitops"),
        _cpu("crc16"),
        _cpu("hash"),
        _cpu("queens"),
        _cpu("ackermann"),
        _cpu("fibonacci"),
        _cpu("gray"),           # 8 int-ALU stressors
        # Branch-heavy integer work: slightly different mix.
        _cpu("jmp", ops=1.5e7, ws=48.0),
        _cpu("loop", ops=2.5e7, ws=32.0),
        # Floating point: rides the FP pipes (bigger generational jump).
        _cpu("double", fp=1.0),
        _cpu("float", fp=1.0),
        _cpu("matrixprod", fp=0.95, ws=192.0),
        _cpu("fft", fp=0.9, ws=256.0),
        _cpu("trig", fp=1.0),
        # Cache-resident working sets.
        _cache("cache-l2", ws_kib=1536.0),
        _cache("cache-llc", ws_kib=8192.0),
        # DRAM class.
        _memory("stream-copy"),
        _memory("stream-triad", mem_bytes=6e8),
        _memory("memrate", mem_bytes=8e8),
        _memory("vm-rw", mem_bytes=3e8, ops=4e6),
        # Storage class.
        _storage("hdd-seq", read_b=2e7, write_b=2e7, io_ops=20.0),
        _storage("hdd-rnd", read_b=2e6, write_b=2e6, io_ops=400.0),
        _storage("sync-io", read_b=1e6, write_b=8e6, io_ops=150.0),
    ]
}


def get_stressor(name: str) -> Stressor:
    try:
        return STRESSORS[name]
    except KeyError:
        raise PlatformError(
            f"unknown stressor {name!r}; known: {sorted(STRESSORS)}"
        ) from None


def run_stressor(
    stressor: Stressor, node: Node, rng: np.random.Generator
) -> float:
    """One observed run; returns the bogo-ops rate (iterations/second)."""
    nominal = stressor.modeled_time(node) * node.speed_factor  # modeled_time pre-divides
    observed = node.observed_time(nominal, rng)
    if observed <= 0:
        raise PlatformError(f"non-positive runtime for {stressor.name}")
    return stressor.iterations / observed
