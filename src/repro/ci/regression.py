"""Automated performance-regression testing — the CI-facing adapter.

The paper calls out that performance regression testing "is usually an
ad-hoc activity but can be automated ... using statistical techniques".
The statistics now live in :mod:`repro.check` (a pluggable detector
suite shared with Aver's ``no_regression`` builtin and ``popper perf``);
this module keeps the CI-shaped surface on top of it:

* :class:`RegressionGate` — the historical pass/fail gate.  Its verdict
  is exactly the average-amount detector's (median-ratio threshold plus
  Mann-Whitney U significance, both required), so CI semantics are
  unchanged; the full suite's graded verdicts ride along on the report
  for richer output.
* :class:`PerformanceHistory` — the flat rolling-window baseline,
  superseded by the commit-attached
  :class:`~repro.check.profiles.ProfileHistory` but kept for gate-only
  consumers, now with durable persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import json
import numpy as np

from repro.check.detectors import Degradation, PerformanceChange
from repro.check.suite import DetectorSuite, default_suite
from repro.common.errors import CIError
from repro.common.fsutil import atomic_write

__all__ = ["RegressionReport", "RegressionGate", "PerformanceHistory"]

_HISTORY_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RegressionReport:
    """Verdict on one metric comparison.

    ``regressed``/``ratio``/``p_value`` keep the historical gate
    meaning; ``degradations`` carries every detector's graded verdict
    and ``confidence`` the gating detector's confidence rating.
    """

    metric: str
    regressed: bool
    ratio: float          # current median / baseline median
    p_value: float
    baseline_median: float
    current_median: float
    threshold: float
    confidence: float = 0.0
    degradations: tuple[Degradation, ...] = ()

    def __str__(self) -> str:
        verdict = "REGRESSION" if self.regressed else "ok"
        return (
            f"{self.metric}: {verdict} ratio={self.ratio:.3f} "
            f"(p={self.p_value:.4f}, threshold=+{self.threshold:.0%})"
        )

    def describe(self) -> str:
        """The one-line verdict plus each detector's graded opinion."""
        lines = [str(self)]
        lines.extend(f"  {d}" for d in self.degradations)
        return "\n".join(lines)


class RegressionGate:
    """Detects slowdowns beyond *threshold* with significance *alpha*.

    A thin adapter over :func:`repro.check.suite.default_suite`: the
    pass/fail verdict is the average-amount detector's firm-degradation
    classification (a regression is flagged only when BOTH hold — the
    median slowdown exceeds the threshold, and the distribution shift
    is statistically significant), while the remaining detectors
    contribute advisory verdicts on the report.
    """

    def __init__(
        self,
        threshold: float = 0.10,
        alpha: float = 0.05,
        higher_is_worse: bool = True,
        min_samples: int = 3,
    ) -> None:
        if threshold <= 0:
            raise CIError("regression threshold must be positive")
        if not 0 < alpha < 1:
            raise CIError("alpha must be in (0, 1)")
        self.threshold = threshold
        self.alpha = alpha
        self.higher_is_worse = higher_is_worse
        self.min_samples = min_samples
        self.suite: DetectorSuite = default_suite(
            threshold=threshold,
            alpha=alpha,
            higher_is_worse=higher_is_worse,
            min_samples=min_samples,
        )

    def check(
        self,
        baseline: np.ndarray | list[float],
        current: np.ndarray | list[float],
        metric: str = "runtime",
    ) -> RegressionReport:
        """Compare *current* samples against *baseline* samples."""
        baseline = np.asarray(baseline, dtype=np.float64)
        current = np.asarray(current, dtype=np.float64)
        if baseline.size < self.min_samples or current.size < self.min_samples:
            raise CIError(
                f"need >= {self.min_samples} samples on each side "
                f"(got {baseline.size}/{current.size})"
            )
        if np.any(baseline <= 0) or np.any(current <= 0):
            raise CIError("runtime samples must be positive")

        verdicts = self.suite.compare_samples(baseline, current, metric=metric)
        gating = next(v for v in verdicts if v.detector == "average-amount")
        if gating.change is PerformanceChange.UNKNOWN:
            raise CIError(f"regression gate could not judge: {gating.detail}")

        baseline_median = float(np.median(baseline))
        current_median = float(np.median(current))
        return RegressionReport(
            metric=metric,
            regressed=gating.change is PerformanceChange.DEGRADATION,
            ratio=current_median / baseline_median,
            p_value=max(0.0, 1.0 - gating.confidence),
            baseline_median=baseline_median,
            current_median=current_median,
            threshold=self.threshold,
            confidence=gating.confidence,
            degradations=tuple(verdicts),
        )


@dataclass
class PerformanceHistory:
    """Per-commit metric samples, the stream the gate watches.

    Keeps a rolling baseline window of the last *window* healthy commits;
    a new commit is judged against the pooled baseline samples.

    Superseded by :class:`repro.check.profiles.ProfileHistory` (which
    attaches profiles to the actual commit graph) but retained for
    gate-only consumers; :meth:`save`/:meth:`load` persist the window
    under the durable-write contract, with a one-shot fallback for the
    legacy raw-JSON format.
    """

    metric: str = "runtime"
    window: int = 5
    gate: RegressionGate = field(default_factory=RegressionGate)
    _commits: list[tuple[str, np.ndarray]] = field(default_factory=list)

    def record(self, commit: str, samples: np.ndarray | list[float]) -> None:
        """Accept a healthy commit's samples into the baseline window."""
        self._commits.append((commit, np.asarray(samples, dtype=np.float64)))
        if len(self._commits) > self.window:
            self._commits.pop(0)

    @property
    def baseline(self) -> np.ndarray:
        if not self._commits:
            raise CIError("no baseline recorded yet")
        return np.concatenate([s for _, s in self._commits])

    def judge(
        self, commit: str, samples: np.ndarray | list[float]
    ) -> RegressionReport:
        """Gate a candidate commit; record it as baseline iff it passes."""
        report = self.gate.check(self.baseline, samples, metric=self.metric)
        if not report.regressed:
            self.record(commit, samples)
        return report

    # -- persistence -------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist the window atomically and durably (crash leaves the
        old file or the new one, never a torn mix)."""
        payload = {
            "version": _HISTORY_FORMAT_VERSION,
            "metric": self.metric,
            "window": self.window,
            "commits": [
                [commit, [float(v) for v in samples]]
                for commit, samples in self._commits
            ],
        }
        data = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        atomic_write(path, data.encode("utf-8"), durable=True)

    @classmethod
    def load(
        cls, path: str | Path, gate: RegressionGate | None = None
    ) -> "PerformanceHistory":
        """Load a saved window.

        Reads the versioned format written by :meth:`save`; a payload
        without a ``version`` field is parsed once through the legacy
        raw format (a plain ``{commit: [samples, ...]}`` mapping from
        the pre-durable writer) so existing ``.pvcs`` state keeps
        loading — the next :meth:`save` rewrites it versioned.
        """
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CIError(f"unreadable performance history at {path}: {exc}") from exc
        history = cls(gate=gate or RegressionGate())
        if isinstance(payload, dict) and "version" in payload:
            if payload["version"] != _HISTORY_FORMAT_VERSION:
                raise CIError(
                    f"unsupported performance-history version: {payload['version']!r}"
                )
            history.metric = str(payload.get("metric", history.metric))
            history.window = int(payload.get("window", history.window))
            entries = [
                (str(commit), samples) for commit, samples in payload.get("commits", [])
            ]
        elif isinstance(payload, dict):
            # Legacy format: {commit: [samples]} with no envelope.
            entries = [(str(c), v) for c, v in payload.items()]
        else:
            raise CIError(f"malformed performance history at {path}")
        for commit, samples in entries:
            try:
                history.record(commit, [float(v) for v in samples])
            except (TypeError, ValueError) as exc:
                raise CIError(
                    f"malformed samples for commit {commit!r} in {path}"
                ) from exc
        return history
