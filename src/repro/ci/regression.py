"""Automated performance-regression testing.

The paper calls out that performance regression testing "is usually an
ad-hoc activity but can be automated ... using statistical techniques".
This module implements the statistical gate: compare the current commit's
runtime samples against a baseline window using a robust effect-size
estimate (median ratio) plus a Mann-Whitney U significance test, so that
ordinary run-to-run noise does not page anyone but a genuine slowdown
does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats as sps

from repro.common.errors import CIError

__all__ = ["RegressionReport", "RegressionGate", "PerformanceHistory"]


@dataclass(frozen=True)
class RegressionReport:
    """Verdict on one metric comparison."""

    metric: str
    regressed: bool
    ratio: float          # current median / baseline median
    p_value: float
    baseline_median: float
    current_median: float
    threshold: float

    def __str__(self) -> str:
        verdict = "REGRESSION" if self.regressed else "ok"
        return (
            f"{self.metric}: {verdict} ratio={self.ratio:.3f} "
            f"(p={self.p_value:.4f}, threshold=+{self.threshold:.0%})"
        )


class RegressionGate:
    """Detects slowdowns beyond *threshold* with significance *alpha*.

    A regression is flagged only when BOTH hold: the median slowdown
    exceeds the threshold, and the distribution shift is statistically
    significant — protecting against both "tiny but significant" and
    "large but noise" false alarms.
    """

    def __init__(
        self,
        threshold: float = 0.10,
        alpha: float = 0.05,
        higher_is_worse: bool = True,
        min_samples: int = 3,
    ) -> None:
        if threshold <= 0:
            raise CIError("regression threshold must be positive")
        if not 0 < alpha < 1:
            raise CIError("alpha must be in (0, 1)")
        self.threshold = threshold
        self.alpha = alpha
        self.higher_is_worse = higher_is_worse
        self.min_samples = min_samples

    def check(
        self,
        baseline: np.ndarray | list[float],
        current: np.ndarray | list[float],
        metric: str = "runtime",
    ) -> RegressionReport:
        """Compare *current* samples against *baseline* samples."""
        baseline = np.asarray(baseline, dtype=np.float64)
        current = np.asarray(current, dtype=np.float64)
        if baseline.size < self.min_samples or current.size < self.min_samples:
            raise CIError(
                f"need >= {self.min_samples} samples on each side "
                f"(got {baseline.size}/{current.size})"
            )
        if np.any(baseline <= 0) or np.any(current <= 0):
            raise CIError("runtime samples must be positive")

        baseline_median = float(np.median(baseline))
        current_median = float(np.median(current))
        ratio = current_median / baseline_median

        if self.higher_is_worse:
            effect = ratio - 1.0
            alternative = "greater"
        else:
            effect = 1.0 - ratio
            alternative = "less"

        if np.all(baseline == baseline[0]) and np.all(current == current[0]):
            # Degenerate zero-variance case: decide on effect size alone.
            p_value = 0.0 if effect > 0 else 1.0
        else:
            _, p_value = sps.mannwhitneyu(
                current, baseline, alternative=alternative
            )
            p_value = float(p_value)

        regressed = effect > self.threshold and p_value < self.alpha
        return RegressionReport(
            metric=metric,
            regressed=bool(regressed),
            ratio=ratio,
            p_value=p_value,
            baseline_median=baseline_median,
            current_median=current_median,
            threshold=self.threshold,
        )


@dataclass
class PerformanceHistory:
    """Per-commit metric samples, the stream the gate watches.

    Keeps a rolling baseline window of the last *window* healthy commits;
    a new commit is judged against the pooled baseline samples.
    """

    metric: str = "runtime"
    window: int = 5
    gate: RegressionGate = field(default_factory=RegressionGate)
    _commits: list[tuple[str, np.ndarray]] = field(default_factory=list)

    def record(self, commit: str, samples: np.ndarray | list[float]) -> None:
        """Accept a healthy commit's samples into the baseline window."""
        self._commits.append((commit, np.asarray(samples, dtype=np.float64)))
        if len(self._commits) > self.window:
            self._commits.pop(0)

    @property
    def baseline(self) -> np.ndarray:
        if not self._commits:
            raise CIError("no baseline recorded yet")
        return np.concatenate([s for _, s in self._commits])

    def judge(
        self, commit: str, samples: np.ndarray | list[float]
    ) -> RegressionReport:
        """Gate a candidate commit; record it as baseline iff it passes."""
        report = self.gate.check(self.baseline, samples, metric=self.metric)
        if not report.regressed:
            self.record(commit, samples)
        return report
