"""CI configuration: the ``.travis.yml`` dialect the paper's repositories
carry at their root.

Supported keys: ``language``, ``env`` (global list and/or matrix list),
``install``, ``before_script``, ``script``, ``after_script``,
``after_failure``, and ``matrix.include`` / ``matrix.exclude``.  ``script``
is mandatory — it is what validates that the paper "is always in a state
that can be built".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common import minyaml
from repro.common.errors import CIError

__all__ = ["CIConfig", "parse_env_line"]


def parse_env_line(line: str) -> dict[str, str]:
    """Parse ``"A=1 B=two"`` into an env mapping."""
    env: dict[str, str] = {}
    for chunk in str(line).split():
        key, sep, value = chunk.partition("=")
        if not sep or not key:
            raise CIError(f"bad env entry: {chunk!r}")
        env[key] = value
    return env


def _as_list(value: Any, key: str) -> list[str]:
    if value is None:
        return []
    if isinstance(value, str):
        return [value]
    if isinstance(value, list):
        return [str(v) for v in value]
    raise CIError(f"{key} must be a string or list, got {type(value).__name__}")


@dataclass(frozen=True)
class CIConfig:
    """Parsed CI specification."""

    language: str = "generic"
    global_env: dict[str, str] = field(default_factory=dict)
    matrix_env: list[dict[str, str]] = field(default_factory=list)
    install: list[str] = field(default_factory=list)
    before_script: list[str] = field(default_factory=list)
    script: list[str] = field(default_factory=list)
    after_script: list[str] = field(default_factory=list)
    after_failure: list[str] = field(default_factory=list)
    include: list[dict[str, str]] = field(default_factory=list)
    exclude: list[dict[str, str]] = field(default_factory=list)

    @classmethod
    def from_yaml(cls, text: str) -> "CIConfig":
        doc = minyaml.loads(text)
        if doc is None:
            raise CIError("empty CI configuration")
        if not isinstance(doc, dict):
            raise CIError("CI configuration must be a mapping")
        unknown = set(doc) - {
            "language", "env", "install", "before_script", "script",
            "after_script", "after_failure", "matrix",
        }
        if unknown:
            raise CIError(f"unknown CI configuration keys: {sorted(unknown)}")

        global_env: dict[str, str] = {}
        matrix_env: list[dict[str, str]] = []
        env_doc = doc.get("env")
        if isinstance(env_doc, dict):
            for line in _as_list(env_doc.get("global"), "env.global"):
                global_env.update(parse_env_line(line))
            for line in _as_list(env_doc.get("matrix"), "env.matrix"):
                matrix_env.append(parse_env_line(line))
        elif env_doc is not None:
            for line in _as_list(env_doc, "env"):
                matrix_env.append(parse_env_line(line))

        matrix_doc = doc.get("matrix") or {}
        if not isinstance(matrix_doc, dict):
            raise CIError("matrix must be a mapping")
        include = [
            parse_env_line(e["env"]) if isinstance(e, dict) else parse_env_line(e)
            for e in matrix_doc.get("include") or []
        ]
        exclude = [
            parse_env_line(e["env"]) if isinstance(e, dict) else parse_env_line(e)
            for e in matrix_doc.get("exclude") or []
        ]

        script = _as_list(doc.get("script"), "script")
        if not script:
            raise CIError("CI configuration must define 'script'")

        return cls(
            language=str(doc.get("language", "generic")),
            global_env=global_env,
            matrix_env=matrix_env,
            install=_as_list(doc.get("install"), "install"),
            before_script=_as_list(doc.get("before_script"), "before_script"),
            script=script,
            after_script=_as_list(doc.get("after_script"), "after_script"),
            after_failure=_as_list(doc.get("after_failure"), "after_failure"),
            include=include,
            exclude=exclude,
        )

    def expand_matrix(self) -> list[dict[str, str]]:
        """The job list: one env mapping per job.

        Matrix rows each produce a job (global env overlaid); ``include``
        adds jobs, ``exclude`` removes matching ones.  With no matrix at
        all there is a single job with the global env.
        """
        jobs: list[dict[str, str]] = []
        rows = self.matrix_env if self.matrix_env else [{}]
        for row in rows:
            env = dict(self.global_env)
            env.update(row)
            jobs.append(env)
        for extra in self.include:
            env = dict(self.global_env)
            env.update(extra)
            jobs.append(env)
        if self.exclude:
            def excluded(env: dict[str, str]) -> bool:
                return any(
                    all(env.get(k) == v for k, v in rule.items())
                    for rule in self.exclude
                )

            jobs = [env for env in jobs if not excluded(env)]
        if not jobs:
            raise CIError("matrix expansion produced no jobs")
        return jobs
