"""Continuous-integration substrate (the TravisCI substitution):
``.travis.yml`` parsing, env-matrix expansion, containerized job
execution, build history/badges, and statistical performance-regression
gating.
"""

from repro.ci.config import CIConfig, parse_env_line
from repro.ci.regression import PerformanceHistory, RegressionGate, RegressionReport
from repro.ci.runner import (
    BuildRecord,
    BuildStatus,
    CIServer,
    ContainerExecutor,
    JobResult,
    StepResult,
)

__all__ = [
    "CIConfig",
    "parse_env_line",
    "CIServer",
    "ContainerExecutor",
    "BuildRecord",
    "BuildStatus",
    "JobResult",
    "StepResult",
    "RegressionGate",
    "RegressionReport",
    "PerformanceHistory",
]
