"""The CI service: builds, jobs, steps and build history.

A :class:`CIServer` watches a :class:`~repro.vcs.Repository`; triggering a
build checks out the commit into per-job scratch workspaces, parses the
repo's ``.travis.yml``, expands the env matrix into jobs, and runs each
job's steps through a command executor (a container by default).  Build
records accumulate into a history that answers "is this repository
currently passing?" — the integrity half of the paper's
automated-validation story.

Matrix jobs are independent nodes of a :class:`~repro.engine.TaskGraph`:
``CIServer(..., jobs=N)`` (the CLI's ``popper ci -j N``) schedules up to
N of them concurrently through the shared execution engine; each job
gets its own checkout and its own executor (via ``executor.clone()``
when available) so concurrent jobs cannot observe each other's builds.

Every build is traced and journaled: the server opens a span per build
(``ci/build/<n>``), per job and per step, and writes the events to a
per-build JSONL journal artifact under ``.pvcs/ci-journals/`` so a
failed CI run can be debugged after the fact (which check ran, how long,
with what exit code) without re-triggering it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Callable

from repro.common.errors import CIError
from repro.common.fsutil import rmtree_quiet
from repro.container.image import Image, scratch
from repro.container.runtime import BinaryRegistry, Container, ExecResult
from repro.ci.config import CIConfig
from repro.engine import (
    RunOptions,
    RunStateStore,
    TaskGraph,
    resolve_backend,
    task_fingerprint,
)
from repro.monitor.journal import RunJournal
from repro.monitor.tracing import Tracer
from repro.vcs.repository import Repository

__all__ = [
    "StepResult",
    "JobResult",
    "BuildRecord",
    "BuildStatus",
    "ContainerExecutor",
    "CIServer",
]


class BuildStatus(str, Enum):
    PASSED = "passed"
    FAILED = "failed"
    ERRORED = "errored"


@dataclass(frozen=True)
class StepResult:
    """One executed step."""

    phase: str
    command: str
    exit_code: int
    stdout: str = ""
    stderr: str = ""

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


@dataclass
class JobResult:
    """One matrix job's outcome."""

    env: dict[str, str]
    steps: list[StepResult] = field(default_factory=list)
    status: BuildStatus = BuildStatus.PASSED
    #: True when the job was skipped because a previous build already
    #: passed it for the same commit and env (``popper ci --resume``).
    restored: bool = False

    @property
    def ok(self) -> bool:
        return self.status == BuildStatus.PASSED


@dataclass
class BuildRecord:
    """One triggered build (all matrix jobs for one commit).

    ``perf`` carries the degradation-detector verdicts comparing this
    commit's attached profile against the pooled baseline of prior
    commits — advisory only (empty when no profiles exist; never flips
    the build status).
    """

    number: int
    commit: str
    status: BuildStatus
    jobs: list[JobResult]
    duration_s: float = 0.0
    perf: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == BuildStatus.PASSED

    @property
    def perf_regressed(self) -> bool:
        """Any firm degradation verdict among the perf comparisons."""
        return any(
            getattr(v, "change", None) is not None and v.regressed
            for v in self.perf
        )


Executor = Callable[[str, dict[str, str], Path], ExecResult]


class ContainerExecutor:
    """Runs CI steps inside a fresh container with the workspace mounted.

    The container starts from *image* (so ``install`` steps can assume a
    base toolchain) and sees the checked-out repository at ``/build``.
    """

    def __init__(
        self,
        image: Image | None = None,
        binaries: BinaryRegistry | None = None,
    ) -> None:
        self.image = image if image is not None else scratch()
        self.binaries = binaries
        self._container: Container | None = None

    def clone(self) -> "ContainerExecutor":
        """A fresh executor sharing config but no container state.

        Concurrent matrix jobs each get their own clone, so one job's
        container environment can never leak into another's.
        """
        return ContainerExecutor(image=self.image, binaries=self.binaries)

    def reset(self, workspace: Path) -> None:
        """Fresh container per job (CI's clean-environment guarantee)."""
        self._container = Container(
            self.image,
            binaries=self.binaries,
            name="ci",
            mounts={"/build": workspace},
        )
        self._container.workdir = "/build"

    def __call__(self, command: str, env: dict[str, str], workspace: Path) -> ExecResult:
        if self._container is None:
            self.reset(workspace)
        assert self._container is not None
        self._container.env.update(env)
        return self._container.run(command)


class CIServer:
    """A hosted-CI stand-in bound to one repository."""

    def __init__(
        self,
        repo: Repository,
        executor: Executor | ContainerExecutor | None = None,
        config_path: str = ".travis.yml",
        workspace_root: Path | None = None,
        journal_root: Path | None = None,
        jobs: int = 1,
        backend: str = "auto",
    ) -> None:
        self.repo = repo
        self.executor = executor if executor is not None else ContainerExecutor()
        self.config_path = config_path
        self.workspace_root = workspace_root or (repo.root / ".pvcs" / "ci-workspaces")
        self.journal_root = journal_root or (repo.root / ".pvcs" / "ci-journals")
        self.jobs = max(1, int(jobs))
        # Scheduler backend for the job graph.  The matrix-job payloads
        # close over the live server, so ``process`` audits them as
        # unpicklable and demotes itself to threaded — the option exists
        # so experiments *inside* a job can still be told to use it.
        self.backend = backend
        self.history: list[BuildRecord] = []

    def journal_path(self, number: int) -> Path:
        """The JSONL journal artifact for build *number*."""
        return Path(self.journal_root) / f"build-{number}.jsonl"

    @property
    def state_path(self) -> Path:
        """The checkpoint file ``--resume`` builds read and write."""
        return Path(self.journal_root) / "ci-state.jsonl"

    # -- build orchestration ------------------------------------------------------
    def trigger(self, ref: str = "HEAD", resume: bool = False) -> BuildRecord:
        """Run a build for *ref*; appends to and returns from history.

        The build's span events land in :meth:`journal_path`, which
        survives the build (the workspace does not).  With ``resume``,
        matrix jobs that already passed for the same commit and env in a
        previous (interrupted) build are restored from
        :attr:`state_path` instead of re-executed; jobs that ran but
        failed their steps are never cached.
        """
        commit = self.repo.resolve(ref)
        number = len(self.history) + 1
        started = time.perf_counter()
        journal = RunJournal(self.journal_path(number))
        tracer = Tracer(journal=journal)
        journal.event("run_start", build=number, ref=ref, commit=commit)
        try:
            config_text = self.repo.cat(commit, self.config_path).decode("utf-8")
        except Exception as exc:
            record = BuildRecord(
                number=number,
                commit=commit,
                status=BuildStatus.ERRORED,
                jobs=[],
            )
            record.duration_s = time.perf_counter() - started
            self.history.append(record)
            journal.event(
                "run_end", status="error", duration_s=record.duration_s
            )
            journal.close()
            raise CIError(
                f"build #{number}: cannot read {self.config_path}: {exc}"
            ) from exc
        config = CIConfig.from_yaml(config_text)

        # Each matrix job is an independent graph node with its own
        # checkout and executor; the engine runs up to self.jobs at once.
        envs = config.expand_matrix()
        build_root = Path(self.workspace_root) / f"build-{number}"

        def job_task(env: dict[str, str], index: int):
            def payload(ctx):
                workspace = self._checkout(
                    commit, build_root / f"job-{index}"
                )
                executor = (
                    self.executor.clone()
                    if hasattr(self.executor, "clone")
                    else self.executor
                )
                return self._run_job(config, env, workspace, tracer, executor)

            return payload

        def job_restore(env: dict[str, str]):
            def restore(detail: dict) -> JobResult:
                return JobResult(
                    env=env, status=BuildStatus.PASSED, restored=True
                )

            return restore

        graph = TaskGraph()
        for index, env in enumerate(envs, start=1):
            graph.add(
                f"job-{index}",
                job_task(env, index),
                # The fingerprint covers commit + expanded env: a new
                # commit (or a matrix edit) invalidates every checkpoint.
                fingerprint=task_fingerprint(
                    f"ci/job-{index}", {"commit": commit, "env": env}
                ),
                # A job that ran but failed its steps returns normally
                # (outcome OK) — vetoing the checkpoint keeps it
                # re-running on resume instead of caching the failure.
                checkpoint=lambda job: (
                    {"env": job.env, "status": job.status.value}
                    if job.ok
                    else None
                ),
                restore=job_restore(env),
            )
        scheduler, _, _ = resolve_backend(self.backend, self.jobs)
        try:
            with RunStateStore(self.state_path, resume=resume) as store:
                options = RunOptions(run_state=store)
                with tracer.span(f"ci/build/{number}", commit=commit, ref=ref):
                    recap = scheduler.run(graph, tracer=tracer, options=options)
            recap.raise_first_error()
        finally:
            rmtree_quiet(build_root)
        # Matrix order, not completion order, for the build record.
        jobs = [recap.value(f"job-{i}") for i in range(1, len(envs) + 1)]

        status = (
            BuildStatus.PASSED
            if all(j.ok for j in jobs)
            else BuildStatus.FAILED
        )
        perf = self._perf_verdicts(commit) if status is BuildStatus.PASSED else []
        record = BuildRecord(
            number=number,
            commit=commit,
            status=status,
            jobs=jobs,
            duration_s=time.perf_counter() - started,
            perf=perf,
        )
        self.history.append(record)
        for verdict in perf:
            journal.event(
                "degradation",
                metric=verdict.metric,
                detector=verdict.detector,
                change=verdict.change.value,
                rate=verdict.rate,
                confidence=verdict.confidence,
            )
        journal.event("run_end", status=status.value, duration_s=record.duration_s)
        journal.close()
        return record

    def _perf_verdicts(self, commit: str) -> list:
        """Advisory degradation verdicts for a passed build.

        Compares *commit*'s attached profile (``.pvcs/profiles/``)
        against the pooled baseline of its first-parent ancestors via
        the shared detector suite.  Builds of unprofiled commits — the
        common case for repositories not using performance profiles —
        return an empty list at the cost of one ``exists`` check.
        """
        from repro.check.profiles import ProfileHistory
        from repro.check.suite import default_suite

        history = ProfileHistory(self.repo.meta)
        candidate = history.get(commit)
        if candidate is None or not candidate.series:
            return []
        prior = [
            entry.oid for entry in self.repo.log(commit) if entry.oid != commit
        ]
        baseline = history.baseline_for(list(reversed(prior)))
        if baseline is None:
            return []
        return default_suite().compare_series(baseline.series, candidate.series)

    def _checkout(self, commit: str, workspace: Path) -> Path:
        rmtree_quiet(workspace)
        workspace.mkdir(parents=True)
        commit_obj = self.repo.store.get_commit(commit)
        # One materialization path for every workspace: blobs come out
        # of the shared content pool verified, and land atomically.
        self.repo.store.checkout_tree(commit_obj.tree, workspace)
        return workspace

    def _run_job(
        self,
        config: CIConfig,
        env: dict[str, str],
        workspace: Path,
        tracer: Tracer | None = None,
        executor: Executor | ContainerExecutor | None = None,
    ) -> JobResult:
        tracer = tracer if tracer is not None else Tracer()
        executor = executor if executor is not None else self.executor
        job = JobResult(env=env)
        if hasattr(executor, "reset"):
            executor.reset(workspace)

        def run_step(phase: str, command: str) -> StepResult:
            with tracer.span("ci/step", phase=phase, command=command) as span:
                result = executor(command, env, workspace)
                span.attributes["exit_code"] = result.exit_code
            step = StepResult(
                phase=phase,
                command=command,
                exit_code=result.exit_code,
                stdout=result.stdout,
                stderr=result.stderr,
            )
            job.steps.append(step)
            return step

        with tracer.span("ci/job", env=env) as job_span:
            phases = [
                ("install", config.install, True),
                ("before_script", config.before_script, True),
                ("script", config.script, True),
            ]
            failed = False
            for phase, commands, fatal in phases:
                if failed:
                    break
                for command in commands:
                    if not run_step(phase, command).ok:
                        failed = True
                        break
            tail = config.after_failure if failed else config.after_script
            for command in tail:
                run_step("after_failure" if failed else "after_script", command)
            job.status = BuildStatus.FAILED if failed else BuildStatus.PASSED
            job_span.attributes["status"] = job.status.value
        return job

    # -- queries --------------------------------------------------------------------
    def latest(self) -> BuildRecord | None:
        return self.history[-1] if self.history else None

    def badge(self) -> str:
        """``build: passing`` / ``build: failing`` / ``build: unknown``."""
        latest = self.latest()
        if latest is None:
            return "build: unknown"
        return "build: passing" if latest.ok else "build: failing"

    def builds_for(self, commit_prefix: str) -> list[BuildRecord]:
        return [b for b in self.history if b.commit.startswith(commit_prefix)]
