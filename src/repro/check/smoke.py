"""The ``--perf-smoke`` self-check: prove the detector plumbing works.

CI jobs run ``popper run --all --perf-smoke`` to exercise the whole
degradation path end-to-end in seconds: synthesize a two-commit history
(a stable baseline and a candidate with one injected slowdown and one
untouched metric) through a *real* :class:`ProfileHistory` on disk, run
the default detector suite across the pair, and demand that the
injected slowdown is caught while the clean metric passes.  Like the
other smoke modes (``--chaos-smoke``, ``--crash-smoke``), it turns "the
subsystem imports" into "the subsystem detects".
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.check.detectors import PerformanceChange
from repro.check.profiles import Profile, ProfileHistory
from repro.check.suite import default_suite
from repro.common.errors import CheckError
from repro.common.rng import derive_rng

__all__ = ["perf_smoke"]


def perf_smoke(root: str | Path | None = None, samples: int = 12) -> str:
    """Run the synthetic two-commit detector check; return a summary line.

    Raises :class:`CheckError` if the injected 30 % slowdown escapes
    every detector or the untouched metric draws a firm false alarm —
    either would mean the gate is decorative.
    """
    rng = derive_rng(23, "perf-smoke")

    def noisy(mean: float) -> list[float]:
        return [float(v) for v in mean * (1.0 + 0.03 * rng.standard_normal(samples))]

    with tempfile.TemporaryDirectory(prefix="perf-smoke-") as scratch:
        history = ProfileHistory(Path(root) if root is not None else Path(scratch))
        history.attach(
            Profile(
                commit="smoke-base",
                series={
                    "smoke/stage/slowed": noisy(10.0),
                    "smoke/stage/stable": noisy(4.0),
                },
                meta={"synthetic": True},
            )
        )
        history.attach(
            Profile(
                commit="smoke-candidate",
                series={
                    "smoke/stage/slowed": noisy(13.0),  # injected 30 % slowdown
                    "smoke/stage/stable": noisy(4.0),
                },
                meta={"synthetic": True},
            )
        )
        base = history.require("smoke-base")
        candidate = history.require("smoke-candidate")
        suite = default_suite()
        verdicts = suite.compare_series(base.series, candidate.series)

    caught = [
        v
        for v in verdicts
        if v.metric.endswith("/slowed") and v.change is PerformanceChange.DEGRADATION
    ]
    false_alarms = [
        v
        for v in verdicts
        if v.metric.endswith("/stable") and v.change is PerformanceChange.DEGRADATION
    ]
    if not caught:
        raise CheckError(
            "perf smoke: injected 30% slowdown escaped every detector"
        )
    if false_alarms:
        names = ", ".join(v.detector for v in false_alarms)
        raise CheckError(f"perf smoke: false alarm on the stable metric ({names})")
    return (
        f"perf smoke ok: slowdown caught by {len(caught)}/"
        f"{len(suite.detectors)} detectors, stable metric clean"
    )
