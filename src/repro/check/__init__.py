"""Degradation checking: commit-attached profiles + a detector suite.

The performance-regression subsystem the ROADMAP asks for, modeled on
Perun's ``perun/check``: :mod:`~repro.check.profiles` attaches per-stage
timing profiles to VCS commits under ``.pvcs/profiles/``;
:mod:`~repro.check.detectors` grades baseline-vs-candidate series with
four statistical methods; :mod:`~repro.check.suite` batteries them for
the three consumers (the CI :class:`~repro.ci.regression.RegressionGate`,
Aver's ``no_regression`` via :mod:`~repro.check.context`, and the
``popper perf`` subcommand).
"""

from repro.check.detectors import (
    AverageAmountDetector,
    BestModelDetector,
    Degradation,
    Detector,
    ExclusiveTimeOutliersDetector,
    IntegralDetector,
    PerformanceChange,
    default_detectors,
)
from repro.check.profiles import (
    PROFILE_FORMAT_VERSION,
    Profile,
    ProfileHistory,
    harvest_profile,
)
from repro.check.suite import DetectorSuite, default_suite
from repro.check.context import RegressionContext
from repro.check.smoke import perf_smoke

__all__ = [
    "PerformanceChange",
    "Degradation",
    "Detector",
    "AverageAmountDetector",
    "BestModelDetector",
    "IntegralDetector",
    "ExclusiveTimeOutliersDetector",
    "default_detectors",
    "DetectorSuite",
    "default_suite",
    "PROFILE_FORMAT_VERSION",
    "Profile",
    "ProfileHistory",
    "harvest_profile",
    "RegressionContext",
    "perf_smoke",
]
