"""The detector suite: one battery of detectors, many consumers.

The CI regression gate, Aver's ``no_regression(metric)`` builtin and the
``popper perf`` subcommand all answer the same question — "did this
metric degrade between two sample series?" — so they all route through
one :class:`DetectorSuite` rather than each keeping a private threshold.
The suite runs every registered detector over a pair of series (or over
every shared series of two :class:`~repro.check.profiles.Profile`\\ s)
and collects the graded :class:`~repro.check.detectors.Degradation`
verdicts; policy (fail the build? fail the assertion? just print?) stays
with the consumer.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.check.detectors import (
    Degradation,
    Detector,
    PerformanceChange,
    default_detectors,
)
from repro.common.errors import CheckError
from repro.common.tables import MetricsTable

__all__ = ["DetectorSuite", "default_suite"]


class DetectorSuite:
    """Run a battery of detectors over sample series and collect verdicts."""

    def __init__(self, detectors: Sequence[Detector]) -> None:
        if not detectors:
            raise CheckError("a detector suite needs at least one detector")
        names = [d.name for d in detectors]
        if len(set(names)) != len(names):
            raise CheckError(f"duplicate detector names in suite: {names}")
        self.detectors = list(detectors)

    def compare_samples(
        self,
        baseline: Sequence[float],
        current: Sequence[float],
        metric: str = "runtime",
    ) -> list[Degradation]:
        """Every detector's verdict on one baseline/current pair.

        A detector that cannot judge the pair (too few samples for its
        method, degenerate input) contributes an ``UNKNOWN`` verdict
        carrying the reason instead of sinking the whole battery.
        """
        verdicts: list[Degradation] = []
        for detector in self.detectors:
            try:
                verdicts.append(detector.detect(baseline, current, metric=metric))
            except CheckError as exc:
                verdicts.append(
                    Degradation(
                        metric=metric,
                        detector=detector.name,
                        change=PerformanceChange.UNKNOWN,
                        detail=str(exc),
                    )
                )
        return verdicts

    def compare_series(
        self,
        baseline: Mapping[str, Sequence[float]],
        current: Mapping[str, Sequence[float]],
    ) -> list[Degradation]:
        """Verdicts over every series key present on *both* sides.

        Keys only one side has (a stage added or removed by the change
        under test) are reported as ``UNKNOWN`` so they do not silently
        vanish from the comparison.
        """
        verdicts: list[Degradation] = []
        shared = sorted(set(baseline) & set(current))
        for key in shared:
            verdicts.extend(
                self.compare_samples(baseline[key], current[key], metric=key)
            )
        for key in sorted(set(baseline) ^ set(current)):
            side = "baseline" if key in baseline else "current"
            verdicts.append(
                Degradation(
                    metric=key,
                    detector="suite",
                    change=PerformanceChange.UNKNOWN,
                    detail=f"series only present in {side} profile",
                )
            )
        return verdicts

    @staticmethod
    def regressed(verdicts: Iterable[Degradation]) -> bool:
        """Consumer policy helper: any firm degradation in the batch?"""
        return any(v.change is PerformanceChange.DEGRADATION for v in verdicts)

    @staticmethod
    def to_table(verdicts: Iterable[Degradation]) -> MetricsTable:
        """Verdicts as a results table (feeds ``popper perf`` rendering)."""
        table = MetricsTable(
            [
                "metric",
                "detector",
                "change",
                "rate",
                "confidence",
                "confidence_kind",
                "detail",
            ]
        )
        for v in verdicts:
            table.append(
                {
                    "metric": v.metric,
                    "detector": v.detector,
                    "change": v.change.value,
                    "rate": round(v.rate, 4),
                    "confidence": round(v.confidence, 4),
                    "confidence_kind": v.confidence_kind,
                    "detail": v.detail,
                }
            )
        return table


def default_suite(
    threshold: float = 0.10,
    alpha: float = 0.05,
    higher_is_worse: bool = True,
    min_samples: int = 3,
) -> DetectorSuite:
    """The standard four-detector suite every consumer shares."""
    return DetectorSuite(
        default_detectors(
            threshold=threshold,
            alpha=alpha,
            higher_is_worse=higher_is_worse,
            min_samples=min_samples,
        )
    )
