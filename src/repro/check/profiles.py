"""Commit-attached performance profiles under ``.pvcs/profiles/``.

Perun's core move — and the HotOS panel's ask for continuous,
machine-checkable reproduction claims — is that performance data should
be *versioned alongside the code that produced it*.  A
:class:`Profile` is the per-commit unit: named sample series (stage
timings harvested from the run journal / :class:`MetricStore`, result
columns) plus free-form metadata.  A :class:`ProfileHistory` is the
degradation-checker's view of the repository: one profile file per
commit, plus an append-only index journal, both written under the
durable-write contract of :mod:`repro.common.fsutil` (profile files via
``atomic_write``, the index via ``journal_append`` with torn-tail
tolerant readers).

This replaces the flat sliding window of
:class:`repro.ci.regression.PerformanceHistory`: baselines are resolved
from the actual commit graph, so "compare against the last five
commits" means five *commits*, not five undated gate invocations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.common.errors import CheckError
from repro.common.fsutil import atomic_write, ensure_dir, journal_append

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.metrics import MetricStore

__all__ = [
    "PROFILE_FORMAT_VERSION",
    "Profile",
    "ProfileHistory",
    "harvest_profile",
]

PROFILE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Profile:
    """One commit's performance series.

    ``series`` maps a series key (``"<experiment>/stage/<stage>"`` for
    harvested stage timings, ``"<experiment>/results/<column>"`` for
    result columns) to its sample values; ``meta`` carries provenance
    (run id, backend, workers) that the detectors ignore but reports
    print.
    """

    commit: str
    series: dict[str, list[float]] = field(default_factory=dict)
    meta: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.commit:
            raise CheckError("a profile needs a commit id")
        for key, values in self.series.items():
            if not key:
                raise CheckError("profile series keys must be non-empty")
            if not all(isinstance(v, (int, float)) for v in values):
                raise CheckError(f"profile series {key!r} has non-numeric samples")

    def merged(self, other: "Profile") -> "Profile":
        """This profile plus *other*'s samples (same commit re-profiled).

        Series shared by both concatenate (more samples, better
        statistics); metadata from *other* wins on key conflicts.
        """
        if other.commit != self.commit:
            raise CheckError(
                f"cannot merge profiles of different commits "
                f"({self.commit[:12]} vs {other.commit[:12]})"
            )
        series = {k: list(v) for k, v in self.series.items()}
        for key, values in other.series.items():
            series.setdefault(key, []).extend(values)
        return Profile(
            commit=self.commit,
            series=series,
            meta={**self.meta, **other.meta},
        )

    def to_json(self) -> dict:
        return {
            "version": PROFILE_FORMAT_VERSION,
            "commit": self.commit,
            "series": {k: list(map(float, v)) for k, v in sorted(self.series.items())},
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "Profile":
        version = payload.get("version")
        if version != PROFILE_FORMAT_VERSION:
            raise CheckError(f"unsupported profile format version: {version!r}")
        return cls(
            commit=str(payload["commit"]),
            series={str(k): [float(x) for x in v] for k, v in payload.get("series", {}).items()},
            meta=dict(payload.get("meta", {})),
        )


def harvest_profile(
    commit: str,
    store: "MetricStore | None" = None,
    events: Sequence[Mapping[str, Any]] | None = None,
    meta: Mapping[str, object] | None = None,
) -> Profile:
    """Build a profile for *commit* from a run's telemetry.

    Two harvest sources, either optional:

    * the :class:`MetricStore` — every ``popper.stage_seconds`` series
      becomes ``<experiment>/stage/<stage>``, and any other metric keeps
      its name (labels folded in as ``metric{k=v,...}``);
    * the run-journal *events* — ``run_start`` contributes backend /
      worker metadata, ``aver_verdict`` events are ignored (they are
      conclusions, not samples).
    """
    series: dict[str, list[float]] = {}
    profile_meta: dict[str, object] = dict(meta or {})
    if store is not None:
        for (metric, labels), values in store.series().items():
            labeled = dict(labels)
            if metric == "popper.stage_seconds" and "stage" in labeled:
                experiment = labeled.get("experiment", "experiment")
                key = f"{experiment}/stage/{labeled['stage']}"
            elif labeled:
                inner = ",".join(f"{k}={v}" for k, v in sorted(labeled.items()))
                key = f"{metric}{{{inner}}}"
            else:
                key = metric
            series.setdefault(key, []).extend(float(v) for v in values)
    for event in events or ():
        if event.get("event") == "run_start":
            for name in ("run_id", "backend", "workers"):
                if name in event:
                    profile_meta.setdefault(name, event[name])
    return Profile(commit=commit, series=series, meta=profile_meta)


class ProfileHistory:
    """Per-commit profiles under ``<root>/profiles/``.

    *root* is the repository's metadata directory (``.pvcs``).  Each
    commit's profile lives in ``profiles/<commit>.json`` (atomic,
    durable writes — a crash leaves the old profile or the new one,
    never a torn file) and ``profiles/index.jsonl`` records attach
    order (single-line appends; a torn tail is skipped on read).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.dir = self.root / "profiles"
        self.index_path = self.dir / "index.jsonl"

    # -- write -------------------------------------------------------------------
    def attach(self, profile: Profile) -> Path:
        """Attach *profile* to its commit, merging with any existing one."""
        ensure_dir(self.dir)
        existing = self.get(profile.commit)
        if existing is not None:
            profile = existing.merged(profile)
        path = self._path_for(profile.commit)
        payload = json.dumps(profile.to_json(), sort_keys=True, indent=2) + "\n"
        atomic_write(path, payload.encode("utf-8"), durable=True)
        entry = json.dumps(
            {
                "commit": profile.commit,
                "series": len(profile.series),
                "samples": sum(len(v) for v in profile.series.values()),
            },
            sort_keys=True,
        )
        with open(self.index_path, "a", encoding="utf-8") as handle:
            journal_append(handle, entry, durable=True, crash_label="profiles.index")
        return path

    # -- read --------------------------------------------------------------------
    def get(self, commit: str) -> Profile | None:
        """The profile attached to *commit*, or None."""
        path = self._path_for(commit)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckError(f"unreadable profile for {commit[:12]}: {exc}") from exc
        return Profile.from_json(payload)

    def require(self, commit: str) -> Profile:
        profile = self.get(commit)
        if profile is None:
            raise CheckError(
                f"no profile attached to commit {commit[:12]} "
                "(run the experiment at that commit first)"
            )
        return profile

    def commits(self) -> list[str]:
        """Commits with attached profiles, in first-attach order.

        Read from the index journal (deduplicated, torn tail skipped);
        profile files whose index line was lost to a crash are appended
        at the end, so nothing on disk is invisible.
        """
        seen: list[str] = []
        if self.index_path.exists():
            with open(self.index_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail (or mid-file corruption): skip
                    commit = entry.get("commit")
                    if commit and commit not in seen:
                        seen.append(commit)
        if self.dir.is_dir():
            on_disk = sorted(
                p.stem for p in self.dir.glob("*.json") if p.stem not in seen
            )
            seen.extend(on_disk)
        return seen

    def baseline_for(
        self,
        commits: Sequence[str],
        window: int = 5,
    ) -> Profile | None:
        """Pool the newest *window* profiled commits of *commits* into one
        baseline profile.

        *commits* is an oldest-first candidate list (e.g. the
        first-parent ancestors of the commit under test, which itself
        must not be included).  Series samples concatenate across the
        pooled commits — the detector suite then judges the candidate
        against the pooled distribution.  Returns None when no candidate
        has a profile.
        """
        if window < 1:
            raise CheckError("baseline window must be >= 1")
        pooled: Profile | None = None
        taken = 0
        for commit in reversed(list(commits)):
            profile = self.get(commit)
            if profile is None:
                continue
            renamed = Profile(
                commit="baseline", series=profile.series, meta=profile.meta
            )
            pooled = renamed if pooled is None else pooled.merged(renamed)
            taken += 1
            if taken >= window:
                break
        return pooled

    def _path_for(self, commit: str) -> Path:
        if not commit or "/" in commit or commit.startswith("."):
            raise CheckError(f"invalid commit id for profile path: {commit!r}")
        return self.dir / f"{commit}.json"
