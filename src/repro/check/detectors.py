"""Pluggable performance-degradation detectors.

The paper says performance-regression testing "is usually an ad-hoc
activity but can be automated ... using statistical techniques"; this
module is the statistical half of that claim, grounded in Perun's
``perun/check`` method catalogue.  Each detector compares a baseline
sample series against a candidate series for one metric and returns a
:class:`Degradation` — a graded verdict (degradation / maybe /
no-change / optimization) with a confidence rating — instead of a bare
boolean, so consumers (the CI gate, Aver's ``no_regression``, ``popper
perf``) can apply their own severity policy.

The four implementations:

* :class:`AverageAmountDetector` — Perun's average-amount threshold,
  hardened with a Mann-Whitney U significance test: the median ratio
  must exceed the threshold *and* the distribution shift must be
  statistically significant.
* :class:`BestModelDetector` — Perun's best-model order equality: fit
  both series against a small model basis (:mod:`repro.stats.models`)
  and compare the winning shapes and their predicted levels.
* :class:`IntegralDetector` — Perun's integral comparison: the area
  under the two best-fit curves, normalized to a mean height, compared
  against the threshold.
* :class:`ExclusiveTimeOutliersDetector` — Perun's exclusive-time
  outliers: Tukey fences fitted on the baseline, classifying by how
  much of the candidate series escapes them (a tail-latency regression
  the location-based detectors can miss).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Protocol, runtime_checkable

import numpy as np
from scipy import stats as sps

from repro.common.errors import CheckError
from repro.stats.models import fit_best_model, model_integral

__all__ = [
    "PerformanceChange",
    "Degradation",
    "Detector",
    "AverageAmountDetector",
    "BestModelDetector",
    "IntegralDetector",
    "ExclusiveTimeOutliersDetector",
    "default_detectors",
]


class PerformanceChange(str, Enum):
    """Graded verdict vocabulary (Perun's ``PerformanceChange``)."""

    DEGRADATION = "degradation"
    MAYBE_DEGRADATION = "maybe-degradation"
    NO_CHANGE = "no-change"
    MAYBE_OPTIMIZATION = "maybe-optimization"
    OPTIMIZATION = "optimization"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Degradation:
    """One detector's verdict on one metric.

    ``rate`` is the relative change of the detector's location estimate
    (``+0.30`` = 30 % slower); ``confidence`` is in ``[0, 1]`` and its
    meaning is named by ``confidence_kind`` (``p_value`` confidence for
    the significance-tested detector, ``r_squared`` for the model
    detectors, ``outlier_fraction`` for the fence detector) — see
    ``docs/regression.md`` for the exact semantics per detector.
    """

    metric: str
    detector: str
    change: PerformanceChange
    from_value: float = 0.0
    to_value: float = 0.0
    rate: float = 0.0
    confidence: float = 0.0
    confidence_kind: str = ""
    detail: str = ""

    @property
    def regressed(self) -> bool:
        return self.change is PerformanceChange.DEGRADATION

    @property
    def suspicious(self) -> bool:
        return self.change in (
            PerformanceChange.DEGRADATION,
            PerformanceChange.MAYBE_DEGRADATION,
        )

    def __str__(self) -> str:
        return (
            f"{self.metric}: {self.change.value} [{self.detector}] "
            f"rate={self.rate:+.1%} confidence={self.confidence:.2f}"
            f" ({self.confidence_kind})"
        )


@runtime_checkable
class Detector(Protocol):
    """The pluggable-detector protocol: one verdict per series pair."""

    name: str

    def detect(
        self,
        baseline: np.ndarray | list[float],
        current: np.ndarray | list[float],
        metric: str = "runtime",
    ) -> Degradation:
        ...


class _BaseDetector:
    """Shared validation and classification for the concrete detectors."""

    name = "base"

    def __init__(
        self,
        threshold: float = 0.10,
        higher_is_worse: bool = True,
        min_samples: int = 3,
    ) -> None:
        if threshold <= 0:
            raise CheckError("detector threshold must be positive")
        if min_samples < 2:
            raise CheckError("detectors need min_samples >= 2")
        self.threshold = threshold
        self.higher_is_worse = higher_is_worse
        self.min_samples = min_samples

    def _validate(
        self, baseline, current
    ) -> tuple[np.ndarray, np.ndarray]:
        baseline = np.asarray(baseline, dtype=np.float64)
        current = np.asarray(current, dtype=np.float64)
        if baseline.size < self.min_samples or current.size < self.min_samples:
            raise CheckError(
                f"{self.name}: need >= {self.min_samples} samples on each "
                f"side (got {baseline.size}/{current.size})"
            )
        if np.any(~np.isfinite(baseline)) or np.any(~np.isfinite(current)):
            raise CheckError(f"{self.name}: samples must be finite")
        if np.any(baseline <= 0) or np.any(current <= 0):
            raise CheckError(f"{self.name}: samples must be positive")
        return baseline, current

    def _effect(self, from_value: float, to_value: float) -> float:
        """Signed badness: positive = worse, in relative units."""
        rate = (to_value - from_value) / from_value if from_value else 0.0
        return rate if self.higher_is_worse else -rate

    def _classify(self, effect: float, certain: bool = True) -> PerformanceChange:
        """Threshold bands → graded verdict.

        Beyond the threshold with a *certain* signal is a firm verdict;
        beyond it without certainty, or beyond half the threshold with
        certainty, is a "maybe".
        """
        for sign, firm, maybe in (
            (1.0, PerformanceChange.DEGRADATION, PerformanceChange.MAYBE_DEGRADATION),
            (-1.0, PerformanceChange.OPTIMIZATION, PerformanceChange.MAYBE_OPTIMIZATION),
        ):
            signed = effect * sign
            if signed > self.threshold:
                return firm if certain else maybe
            if signed > self.threshold / 2 and certain:
                return maybe
        return PerformanceChange.NO_CHANGE


class AverageAmountDetector(_BaseDetector):
    """Median-ratio threshold guarded by a Mann-Whitney U test.

    This is the detector behind the original CI gate: a regression is
    firm only when BOTH hold — the median slowdown exceeds the
    threshold, and the distribution shift is statistically significant
    — protecting against both "tiny but significant" and "large but
    noise" false alarms.  Confidence is ``1 - p``.
    """

    name = "average-amount"

    def __init__(
        self,
        threshold: float = 0.10,
        alpha: float = 0.05,
        higher_is_worse: bool = True,
        min_samples: int = 3,
    ) -> None:
        super().__init__(threshold, higher_is_worse, min_samples)
        if not 0 < alpha < 1:
            raise CheckError("alpha must be in (0, 1)")
        self.alpha = alpha

    def detect(self, baseline, current, metric: str = "runtime") -> Degradation:
        baseline, current = self._validate(baseline, current)
        from_value = float(np.median(baseline))
        to_value = float(np.median(current))
        rate = (to_value - from_value) / from_value
        effect = self._effect(from_value, to_value)

        alternative = "greater" if self.higher_is_worse else "less"
        if np.all(baseline == baseline[0]) and np.all(current == current[0]):
            # Degenerate zero-variance case: decide on effect size alone.
            p_value = 0.0 if effect > 0 else 1.0
            if effect < 0:
                # The one-sided test above only measures degradations;
                # mirror it so zero-variance improvements score too.
                p_value = 0.0
        else:
            _, p_value = sps.mannwhitneyu(current, baseline, alternative=alternative)
            p_value = float(p_value)
            if effect < 0:
                flipped = "less" if alternative == "greater" else "greater"
                _, p_value = sps.mannwhitneyu(current, baseline, alternative=flipped)
                p_value = float(p_value)

        significant = p_value < self.alpha
        change = self._classify(effect, certain=significant)
        if change is PerformanceChange.NO_CHANGE and abs(effect) > self.threshold:
            # Large but not significant: worth a second look, not a page.
            change = (
                PerformanceChange.MAYBE_DEGRADATION
                if effect > 0
                else PerformanceChange.MAYBE_OPTIMIZATION
            )
        return Degradation(
            metric=metric,
            detector=self.name,
            change=change,
            from_value=from_value,
            to_value=to_value,
            rate=rate,
            confidence=max(0.0, 1.0 - p_value),
            confidence_kind="p_value",
            detail=f"median {from_value:.4g} -> {to_value:.4g}, p={p_value:.4f}",
        )


class BestModelDetector(_BaseDetector):
    """Compare the best-fit models of the two series.

    Both series are fitted against the model basis of
    :mod:`repro.stats.models` over their sample index (the within-run
    time axis).  A change of winning shape — a flat series turning
    linear, say — is flagged even when medians still agree; when the
    shapes agree, the models' mean levels are compared against the
    threshold.  Confidence is the weaker of the two fits' R².
    """

    name = "best-model"

    def detect(self, baseline, current, metric: str = "runtime") -> Degradation:
        baseline, current = self._validate(baseline, current)
        base_fit = fit_best_model(np.arange(baseline.size), baseline)
        curr_fit = fit_best_model(np.arange(current.size), current)
        from_value = model_integral(base_fit)
        to_value = model_integral(curr_fit)
        rate = (to_value - from_value) / from_value if from_value else 0.0
        effect = self._effect(from_value, to_value)
        confidence = min(base_fit.r_squared, curr_fit.r_squared)

        if base_fit.kind != curr_fit.kind:
            # The shape changed; direction comes from where the new
            # model is heading relative to the old level, and a shape
            # change alone is never a firm verdict.
            trend_effect = effect
            if abs(trend_effect) <= self.threshold / 2:
                end = float(curr_fit.predict([float(current.size - 1)])[0])
                trend_effect = self._effect(from_value, end)
            if trend_effect > self.threshold / 2:
                change = PerformanceChange.MAYBE_DEGRADATION
            elif trend_effect < -self.threshold / 2:
                change = PerformanceChange.MAYBE_OPTIMIZATION
            else:
                # Noise routinely promotes a flat series to a weak
                # sloped fit; a shape change with no level movement is
                # not a signal.
                change = PerformanceChange.NO_CHANGE
        else:
            change = self._classify(effect, certain=confidence >= 0.5 or base_fit.kind == "constant")
        return Degradation(
            metric=metric,
            detector=self.name,
            change=change,
            from_value=from_value,
            to_value=to_value,
            rate=rate,
            confidence=confidence,
            confidence_kind="r_squared",
            detail=f"model {base_fit.kind} -> {curr_fit.kind}",
        )


class IntegralDetector(_BaseDetector):
    """Compare the integrals (mean heights) of the two best-fit curves.

    The integral folds the whole curve into one number, so it reacts to
    slowdowns that moved mass anywhere along the run, not only at the
    median.  Confidence scales with how far past the threshold the
    integral moved (``1.0`` at twice the threshold).
    """

    name = "integral"

    def detect(self, baseline, current, metric: str = "runtime") -> Degradation:
        baseline, current = self._validate(baseline, current)
        base_fit = fit_best_model(np.arange(baseline.size), baseline)
        curr_fit = fit_best_model(np.arange(current.size), current)
        from_value = model_integral(base_fit)
        to_value = model_integral(curr_fit)
        rate = (to_value - from_value) / from_value if from_value else 0.0
        effect = self._effect(from_value, to_value)
        change = self._classify(effect, certain=True)
        return Degradation(
            metric=metric,
            detector=self.name,
            change=change,
            from_value=from_value,
            to_value=to_value,
            rate=rate,
            confidence=min(1.0, abs(effect) / (2 * self.threshold)),
            confidence_kind="integral_ratio",
            detail=f"integral {from_value:.4g} -> {to_value:.4g}",
        )


class ExclusiveTimeOutliersDetector(_BaseDetector):
    """Tukey fences from the baseline, applied to the candidate.

    Fences at ``Q1 - k*IQR`` / ``Q3 + k*IQR`` are fitted on the
    baseline; the verdict grades by the fraction of candidate samples
    escaping them (above the upper fence = worse when higher is worse).
    This catches tail regressions — a stage that is usually fast but now
    sometimes stalls — that median- and integral-based detectors absorb.
    Confidence is the escaping fraction itself.
    """

    name = "exclusive-time-outliers"

    def __init__(
        self,
        threshold: float = 0.10,
        higher_is_worse: bool = True,
        min_samples: int = 3,
        fence: float = 1.5,
        firm_fraction: float = 0.5,
        maybe_fraction: float = 0.25,
    ) -> None:
        super().__init__(threshold, higher_is_worse, min_samples)
        if fence <= 0:
            raise CheckError("fence multiplier must be positive")
        if not 0 < maybe_fraction <= firm_fraction <= 1:
            raise CheckError("need 0 < maybe_fraction <= firm_fraction <= 1")
        self.fence = fence
        self.firm_fraction = firm_fraction
        self.maybe_fraction = maybe_fraction

    def detect(self, baseline, current, metric: str = "runtime") -> Degradation:
        baseline, current = self._validate(baseline, current)
        q1, q3 = np.percentile(baseline, [25, 75])
        iqr = float(q3 - q1)
        if iqr == 0.0:
            # Zero-variance baseline: fence by a relative margin instead.
            margin = abs(float(q3)) * self.threshold / 2
            lo, hi = float(q1) - margin, float(q3) + margin
        else:
            lo, hi = float(q1) - self.fence * iqr, float(q3) + self.fence * iqr
        worse = current > hi if self.higher_is_worse else current < lo
        better = current < lo if self.higher_is_worse else current > hi
        worse_frac = float(np.mean(worse))
        better_frac = float(np.mean(better))
        from_value = float(np.median(baseline))
        to_value = float(np.median(current))

        if worse_frac >= self.firm_fraction:
            change = PerformanceChange.DEGRADATION
        elif worse_frac >= self.maybe_fraction:
            change = PerformanceChange.MAYBE_DEGRADATION
        elif better_frac >= self.firm_fraction:
            change = PerformanceChange.OPTIMIZATION
        elif better_frac >= self.maybe_fraction:
            change = PerformanceChange.MAYBE_OPTIMIZATION
        else:
            change = PerformanceChange.NO_CHANGE
        confidence = max(worse_frac, better_frac)
        return Degradation(
            metric=metric,
            detector=self.name,
            change=change,
            from_value=from_value,
            to_value=to_value,
            rate=(to_value - from_value) / from_value if from_value else 0.0,
            confidence=confidence,
            confidence_kind="outlier_fraction",
            detail=(
                f"{worse_frac:.0%} above / {better_frac:.0%} below "
                f"fences [{lo:.4g}, {hi:.4g}]"
            ),
        )


def default_detectors(
    threshold: float = 0.10,
    alpha: float = 0.05,
    higher_is_worse: bool = True,
    min_samples: int = 3,
) -> list[Detector]:
    """The standard four-detector battery, shared by every consumer."""
    return [
        AverageAmountDetector(
            threshold=threshold,
            alpha=alpha,
            higher_is_worse=higher_is_worse,
            min_samples=min_samples,
        ),
        BestModelDetector(
            threshold=threshold,
            higher_is_worse=higher_is_worse,
            min_samples=min_samples,
        ),
        IntegralDetector(
            threshold=threshold,
            higher_is_worse=higher_is_worse,
            min_samples=min_samples,
        ),
        ExclusiveTimeOutliersDetector(
            threshold=threshold,
            higher_is_worse=higher_is_worse,
            min_samples=min_samples,
        ),
    ]
