"""Binding Aver's ``no_regression`` builtin to a profile history.

Aver statements are stateless — a table in, a verdict out — but "did
this metric regress?" needs *history*.  A :class:`RegressionContext`
carries that history (a baseline :class:`~repro.check.profiles.Profile`
pooled from prior commits, plus the shared
:class:`~repro.check.suite.DetectorSuite`) and exposes
``no_regression(metric)`` as a contextual Aver function: the pipeline
builds one per run and passes its :meth:`functions` mapping into
``check_all``, so validations and perf gating share one language
exactly as the ISSUE asks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.aver.ast import Column, String
from repro.check.detectors import Degradation
from repro.check.suite import DetectorSuite, default_suite
from repro.common.errors import AverEvalError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.profiles import Profile

__all__ = ["RegressionContext"]


class RegressionContext:
    """Run-scoped state behind ``no_regression(metric)``.

    *baseline* is the pooled profile of prior commits (None when the
    history is empty — first run ever, or a fresh clone); *experiment*
    scopes series-key resolution.  With no baseline every
    ``no_regression`` assertion passes vacuously — a repository's first
    profiled run cannot regress against anything — and the vacuous pass
    is recorded in :attr:`notes` so reports can say so.

    After evaluation, :attr:`verdicts` holds every detector verdict the
    assertions triggered, for journaling alongside the pass/fail.
    """

    def __init__(
        self,
        baseline: "Profile | None",
        suite: DetectorSuite | None = None,
        experiment: str | None = None,
    ) -> None:
        self.baseline = baseline
        self.suite = suite or default_suite()
        self.experiment = experiment
        self.verdicts: list[Degradation] = []
        self.notes: list[str] = []

    def functions(self):
        """The contextual-function mapping for the Aver evaluator."""
        return {"no_regression": self._no_regression}

    # -- the builtin ---------------------------------------------------------------
    def _no_regression(self, name: str, args: tuple, evaluator: Any) -> bool:
        if len(args) != 1:
            raise AverEvalError(f"{name}() takes 1 argument, got {len(args)}")
        arg = args[0]
        if isinstance(arg, Column):
            metric = arg.name
        elif isinstance(arg, String):
            metric = arg.value
        else:
            raise AverEvalError(
                f"{name}() takes a result column (or its name as a string)"
            )

        current = self._current_samples(metric, arg, evaluator)
        baseline = self._baseline_samples(metric)
        if baseline is None:
            self.notes.append(
                f"{name}({metric}): no baseline profile yet — vacuous pass"
            )
            return True
        verdicts = self.suite.compare_samples(baseline, current, metric=metric)
        self.verdicts.extend(verdicts)
        return not DetectorSuite.regressed(verdicts)

    def _current_samples(self, metric: str, arg: Any, evaluator: Any) -> list[float]:
        """The candidate series: the column's values in the current group."""
        if isinstance(arg, Column):
            values = evaluator.eval(arg)
        else:
            values = evaluator.eval(Column(name=metric))
        try:
            return [float(v) for v in values]
        except (TypeError, ValueError) as exc:
            raise AverEvalError(
                f"no_regression({metric}): column is not numeric"
            ) from exc

    def _baseline_samples(self, metric: str) -> list[float] | None:
        """Resolve *metric* against the baseline profile's series keys.

        Tried in order: the exact key; the experiment-scoped results
        key; then any ``*/results/<metric>`` or ``*/stage/<metric>``
        suffix match (pooled, for histories spanning experiments).
        """
        if self.baseline is None or not self.baseline.series:
            return None
        series = self.baseline.series
        if metric in series:
            return list(series[metric])
        if self.experiment:
            scoped = f"{self.experiment}/results/{metric}"
            if scoped in series:
                return list(series[scoped])
            staged = f"{self.experiment}/stage/{metric}"
            if staged in series:
                return list(series[staged])
        pooled: list[float] = []
        for key in sorted(series):
            if key.endswith(f"/results/{metric}") or key.endswith(f"/stage/{metric}"):
                pooled.extend(series[key])
        return pooled or None
