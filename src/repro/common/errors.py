"""Exception hierarchy shared by every :mod:`repro` subsystem.

All errors raised by this library derive from :class:`ReproError` so callers
can catch a single base class at API boundaries.  Each substrate defines its
own subclass here rather than in its own package so that low-level packages
(e.g. :mod:`repro.common.minyaml`) never import high-level ones.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TransientError",
    "YamlError",
    "LockError",
    "LockTimeout",
    "StoreError",
    "MissingObjectError",
    "CorruptObjectError",
    "VcsError",
    "ObjectNotFound",
    "ContainerError",
    "ImageNotFound",
    "BuildError",
    "ContainerStartError",
    "OrchestrationError",
    "ModuleFailure",
    "UnreachableHostError",
    "CIError",
    "DataPackageError",
    "IntegrityError",
    "AverError",
    "AverSyntaxError",
    "AverEvalError",
    "PlatformError",
    "AllocationError",
    "MonitorError",
    "EngineError",
    "TaskTimeoutError",
    "InjectedFault",
    "TransientInjectedFault",
    "UnpicklablePayloadError",
    "WorkerCrashError",
    "FuzzError",
    "ServeError",
    "QueueFullError",
    "BadJobError",
    "UnknownJobError",
    "DrainingError",
    "GassyFSError",
    "FSError",
    "MPIError",
    "PopperError",
    "ComplianceError",
    "TemplateNotFound",
    "ValidationFailure",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class TransientError(ReproError):
    """The retryable branch of the hierarchy.

    Errors that model infrastructure transients — an unreachable host, a
    container start race, an injected chaos fault, a task deadline — mix
    this class in (alongside their substrate's base class) and the
    engine's :class:`~repro.engine.resilience.RetryPolicy` retries them
    by default.  Permanent errors (bad config, failed assertion, payload
    bug) stay outside this branch and fail fast.
    """


# --- common -----------------------------------------------------------------
class YamlError(ReproError):
    """Malformed document handed to the built-in YAML-subset parser."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LockError(ReproError):
    """Inter-process lock misuse or failure (see :mod:`repro.common.locking`)."""


class LockTimeout(LockError, TransientError):
    """A lock was not acquired within its deadline (the holder may well
    release it; retrying is reasonable, hence transient)."""


# --- store ------------------------------------------------------------------
class StoreError(ReproError):
    """Content-addressed artifact store failure."""


class MissingObjectError(StoreError):
    """A content-addressed object id is not present in the store."""

    def __init__(self, oid: str) -> None:
        self.oid = oid
        super().__init__(f"object not in store: {oid}")


class CorruptObjectError(StoreError):
    """A stored object no longer hashes to its id (bit rot / tamper).

    The store moves the offending file into its ``quarantine/``
    directory before raising, so the error carries a remediation path:
    ``popper cache verify`` reports quarantined objects with their
    referrers instead of the read failing the same way forever.
    """

    def __init__(self, oid: str, quarantine_path: "str | None" = None) -> None:
        self.oid = oid
        self.quarantine_path = quarantine_path
        message = f"object {oid[:12]} is corrupt on disk"
        if quarantine_path:
            message += f" (quarantined to {quarantine_path})"
        super().__init__(message)


# --- vcs --------------------------------------------------------------------
class VcsError(ReproError):
    """Version-control substrate failure (bad ref, dirty tree, ...)."""


class ObjectNotFound(VcsError):
    """A content-addressed object id does not exist in the store."""


# --- container --------------------------------------------------------------
class ContainerError(ReproError):
    """Container-engine substrate failure."""


class ImageNotFound(ContainerError):
    """The requested image tag/digest is not in the registry."""


class BuildError(ContainerError):
    """A Containerfile instruction failed during image build."""


class ContainerStartError(ContainerError, TransientError):
    """A container failed to start for a transient reason (start race)."""


# --- orchestration ----------------------------------------------------------
class OrchestrationError(ReproError):
    """Playbook-level failure (unreachable host, undefined variable, ...)."""


class UnreachableHostError(OrchestrationError, TransientError):
    """A managed host cannot be contacted (provisioning / network fault)."""


class ModuleFailure(OrchestrationError):
    """A task module reported failure on a host."""

    def __init__(self, host: str, module: str, msg: str) -> None:
        self.host = host
        self.module = module
        super().__init__(f"[{host}] {module}: {msg}")


# --- ci ---------------------------------------------------------------------
class CIError(ReproError):
    """Continuous-integration substrate failure."""


# --- check ------------------------------------------------------------------
class CheckError(ReproError):
    """Degradation-check subsystem failure (detectors, profiles, history)."""


# --- datapkg ----------------------------------------------------------------
class DataPackageError(ReproError):
    """Dataset-management substrate failure."""


class IntegrityError(DataPackageError):
    """A resource's content hash does not match its descriptor."""


# --- aver -------------------------------------------------------------------
class AverError(ReproError):
    """Base class for the Aver validation language."""


class AverSyntaxError(AverError):
    """The assertion source does not parse."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"at offset {position}: {message}"
        super().__init__(message)


class AverEvalError(AverError):
    """The assertion parsed but cannot be evaluated against the data."""


# --- platform ---------------------------------------------------------------
class PlatformError(ReproError):
    """Simulated-hardware substrate failure."""


class AllocationError(PlatformError):
    """A site cannot satisfy a node-allocation request."""


# --- monitor ----------------------------------------------------------------
class MonitorError(ReproError):
    """Metric collection / time-series failure."""


# --- engine -----------------------------------------------------------------
class EngineError(ReproError):
    """Task-graph execution failure (cycle, unknown dependency, ...)."""


class TaskTimeoutError(EngineError, TransientError):
    """A task exceeded its per-task deadline (retryable by default)."""


class InjectedFault(EngineError):
    """A fault deliberately injected by a chaos-testing fault plan."""


class TransientInjectedFault(InjectedFault, TransientError):
    """An injected fault modeling a transient (retry should clear it)."""


class UnpicklablePayloadError(EngineError):
    """A payload (or its value) cannot cross a process boundary.

    The process scheduler audits every payload before spawning workers;
    a closure, lambda or otherwise unpicklable payload raises this (or,
    with a fallback configured, demotes the run to an in-process
    backend).  Also raised for a task whose *return value* cannot be
    pickled back to the parent — the task executed, but its result
    cannot reach dependents, so it is reported as failed.
    """


class WorkerCrashError(EngineError):
    """A worker process died without reporting its task's outcome.

    The parent notices the dead worker (non-zero exit, no ``done``
    record) and fails the in-flight task with this error; downstream
    tasks are skipped as for any failure.
    """


# --- fuzz -------------------------------------------------------------------
class FuzzError(ReproError):
    """Scenario-fuzzing subsystem failure (campaign, corpus, minimizer)."""


# --- serve ------------------------------------------------------------------
class ServeError(ReproError):
    """Job-queue service failure (queue, worker pool, HTTP API)."""


class QueueFullError(ServeError, TransientError):
    """The job queue is at its admission bound (HTTP 429; the client
    should back off and retry — transient by construction)."""


class BadJobError(ServeError):
    """A job submission is malformed (bad JSON, bogus tenant, wrong
    types) and was rejected at admission (HTTP 400/422)."""


class UnknownJobError(ServeError):
    """A job id that the queue has no record of (HTTP 404)."""


class DrainingError(ServeError, TransientError):
    """The daemon is draining and not admitting work (HTTP 503; a
    restarted daemon will accept the retry)."""


# --- gassyfs ----------------------------------------------------------------
class GassyFSError(ReproError):
    """GassyFS distributed file-system failure."""


class FSError(GassyFSError):
    """POSIX-style file-system error (ENOENT, EEXIST, ENOSPC...)."""

    def __init__(self, errno_name: str, path: str, msg: str = "") -> None:
        self.errno_name = errno_name
        self.path = path
        super().__init__(f"{errno_name}: {path}" + (f" ({msg})" if msg else ""))


# --- mpicomm ----------------------------------------------------------------
class MPIError(ReproError):
    """Simulated-MPI failure (rank mismatch, truncation, deadlock...)."""


# --- core (popper) ----------------------------------------------------------
class PopperError(ReproError):
    """Popper convention engine failure."""


class ComplianceError(PopperError):
    """A repository or experiment violates the Popper convention."""


class TemplateNotFound(PopperError):
    """`popper add` requested a template that is not registered."""


class ValidationFailure(PopperError):
    """A domain-specific (Aver) validation did not hold on the results."""
