"""Small filesystem helpers shared by the substrates that touch disk.

The crash-consistency contract lives here: :func:`atomic_write` is the
one way ``.pvcs/`` metadata reaches disk (temp file → fsync → rename →
parent-directory fsync, so a record is either absent or complete *and
durable* after a crash), and :func:`journal_append` is the one way JSONL
journals grow (single flushed write per line, so a crash can tear at
most the final line — which every reader skips).  Both call
:func:`~repro.common.crash.crashpoint` at their hazards so the
crash-injection harness can kill the process exactly where a real power
cut would bite.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import IO, Iterator

from repro.common.crash import SimulatedCrash, active_crash_plan, crashpoint

__all__ = [
    "ensure_dir",
    "write_text",
    "read_text",
    "atomic_write",
    "fsync_path",
    "journal_append",
    "walk_files",
    "rmtree_quiet",
]


def ensure_dir(path: str | os.PathLike) -> Path:
    """Create *path* (and parents) if needed; return it as a Path."""
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    return target


def write_text(path: str | os.PathLike, text: str) -> Path:
    """Write *text* to *path*, creating parent directories."""
    target = Path(path)
    ensure_dir(target.parent)
    target.write_text(text, encoding="utf-8")
    return target


def read_text(path: str | os.PathLike) -> str:
    """Read a UTF-8 text file."""
    return Path(path).read_text(encoding="utf-8")


def fsync_path(path: str | os.PathLike) -> None:
    """fsync a file or directory by path, quietly skipping refusals.

    Directory fsync is what makes a rename durable; some filesystems
    (and some container mounts) refuse it, in which case we have done
    all the platform allows.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem-dependent
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: str | os.PathLike, data: bytes, durable: bool = True
) -> None:
    """Write *data* so readers never observe a partial file.

    The temporary file gets a unique name (``mkstemp``), so concurrent
    writers to the same target cannot interleave partial writes — the
    last complete ``os.replace`` wins.

    With ``durable`` (the default) the temp file is fsynced before the
    rename and the parent directory after it, so after a crash the
    target holds either the old or the new content *on disk*, never a
    cached-only rename that a power cut would undo.  Pass
    ``durable=False`` on hot paths writing disposable data (workspace
    checkouts, scratch materialization) where the ~0.5 ms per-write
    fsync cost buys nothing.
    """
    import tempfile

    target = Path(path)
    ensure_dir(target.parent)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", dir=str(target.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        crashpoint("fsutil.atomic_write.tmp")
        os.replace(tmp_name, target)
        crashpoint("fsutil.atomic_write.rename")
        if durable:
            fsync_path(target.parent)
    except SimulatedCrash:
        # The "process" died mid-write: leave the debris (orphan temp,
        # un-fsynced rename) exactly as a real crash would for doctor.
        raise
    except BaseException:
        Path(tmp_name).unlink(missing_ok=True)
        raise


def journal_append(
    handle: IO[str],
    line: str,
    durable: bool = False,
    crash_label: str = "journal.append",
) -> None:
    """Append one line to an open JSONL journal, crash-safely.

    The line lands as a single flushed write (append-mode handles make
    that atomic enough that concurrent appenders never interleave
    *within* a line), so a crash tears at most the file's tail — the
    failure readers are required to tolerate.  With ``durable`` the
    handle is fsynced after the write, upgrading "survives the process"
    to "survives the machine".

    When a crash plan is installed, the write is deliberately split so
    ``<crash_label>.torn`` fires with exactly half the line flushed —
    the torn-tail injection ``popper doctor`` repairs.
    """
    if "\n" in line:
        raise ValueError("journal_append takes a single line")
    if active_crash_plan() is not None:
        half = max(1, len(line) // 2)
        handle.write(line[:half])
        handle.flush()
        crashpoint(f"{crash_label}.torn")
        handle.write(line[half:] + "\n")
    else:
        handle.write(line + "\n")
    handle.flush()
    if durable:
        os.fsync(handle.fileno())


def walk_files(root: str | os.PathLike) -> Iterator[Path]:
    """Yield every regular file under *root*, sorted for determinism."""
    base = Path(root)
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames.sort()
        for name in sorted(filenames):
            yield Path(dirpath) / name


def rmtree_quiet(path: str | os.PathLike) -> None:
    """Remove a tree if it exists; missing targets are not an error."""
    shutil.rmtree(path, ignore_errors=True)
