"""Small filesystem helpers shared by the substrates that touch disk."""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Iterator

__all__ = [
    "ensure_dir",
    "write_text",
    "read_text",
    "atomic_write",
    "walk_files",
    "rmtree_quiet",
]


def ensure_dir(path: str | os.PathLike) -> Path:
    """Create *path* (and parents) if needed; return it as a Path."""
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    return target


def write_text(path: str | os.PathLike, text: str) -> Path:
    """Write *text* to *path*, creating parent directories."""
    target = Path(path)
    ensure_dir(target.parent)
    target.write_text(text, encoding="utf-8")
    return target


def read_text(path: str | os.PathLike) -> str:
    """Read a UTF-8 text file."""
    return Path(path).read_text(encoding="utf-8")


def atomic_write(path: str | os.PathLike, data: bytes) -> None:
    """Write *data* so readers never observe a partial file.

    The temporary file gets a unique name (``mkstemp``), so concurrent
    writers to the same target cannot interleave partial writes — the
    last complete ``os.replace`` wins.
    """
    import tempfile

    target = Path(path)
    ensure_dir(target.parent)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", dir=str(target.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, target)
    except BaseException:
        Path(tmp_name).unlink(missing_ok=True)
        raise


def walk_files(root: str | os.PathLike) -> Iterator[Path]:
    """Yield every regular file under *root*, sorted for determinism."""
    base = Path(root)
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames.sort()
        for name in sorted(filenames):
            yield Path(dirpath) / name


def rmtree_quiet(path: str | os.PathLike) -> None:
    """Remove a tree if it exists; missing targets are not an error."""
    shutil.rmtree(path, ignore_errors=True)
