"""A from-scratch YAML-subset parser and emitter.

The Popper convention leans heavily on YAML documents: ``.popper.yml``
configuration, ``.travis.yml`` CI specifications, Ansible-style ``setup.yml``
playbooks and ``vars.yml`` parameter files.  Rather than depending on an
external YAML library, this module implements the subset those documents
actually use, from scratch:

* block mappings and block sequences, arbitrarily nested by indentation
* inline (flow) lists ``[a, b, c]`` and mappings ``{a: 1, b: 2}``
* plain / single-quoted / double-quoted scalars
* ints, floats, booleans (``true/false/yes/no/on/off``), ``null``/``~``
* ``#`` comments (full-line and trailing)
* literal block scalars (``|`` and ``|-``)
* multi-document streams separated by ``---``

The emitter (:func:`dumps`) produces canonical block-style output that the
parser round-trips, a property exercised by hypothesis tests.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import YamlError

__all__ = ["loads", "load_all", "dumps", "load_file", "dump_file"]


_BOOL_TRUE = {"true", "yes", "on"}
_BOOL_FALSE = {"false", "no", "off"}
_NULL = {"null", "~", ""}


# ---------------------------------------------------------------------------
# Scanning helpers
# ---------------------------------------------------------------------------

class _Line:
    """One significant (non-blank, non-comment) line of the document."""

    __slots__ = ("indent", "content", "number")

    def __init__(self, indent: int, content: str, number: int) -> None:
        self.indent = indent
        self.content = content
        self.number = number

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Line({self.indent}, {self.content!r}, line={self.number})"


def _strip_comment(text: str) -> str:
    """Remove a trailing ``#`` comment, respecting quoted strings."""
    quote: str | None = None
    for i, ch in enumerate(text):
        if quote:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "#" and (i == 0 or text[i - 1] in " \t"):
            return text[:i].rstrip()
    return text.rstrip()


def _scan(source: str) -> list[_Line]:
    lines: list[_Line] = []
    raw_lines = source.splitlines()
    i = 0
    while i < len(raw_lines):
        raw = raw_lines[i]
        stripped_full = raw.strip()
        if not stripped_full or stripped_full.startswith("#"):
            i += 1
            continue
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlError("tabs are not allowed in indentation", i + 1)
        indent = len(raw) - len(raw.lstrip(" "))
        content = _strip_comment(raw.strip())
        if not content:
            i += 1
            continue
        # Literal block scalar: swallow the indented block verbatim.
        if content.endswith("|") or content.endswith("|-"):
            chomp = content.endswith("|-")
            head = content[: -2 if chomp else -1].rstrip()
            block_lines: list[str] = []
            j = i + 1
            block_indent: int | None = None
            while j < len(raw_lines):
                cand = raw_lines[j]
                if not cand.strip():
                    block_lines.append("")
                    j += 1
                    continue
                cind = len(cand) - len(cand.lstrip(" "))
                if cind <= indent:
                    break
                if block_indent is None:
                    block_indent = cind
                block_lines.append(cand[block_indent:])
                j += 1
            while block_lines and not block_lines[-1]:
                block_lines.pop()
            text = "\n".join(block_lines)
            if not chomp:
                text += "\n"
            # Hex-encode the block so later tokenization (strip, colon
            # splitting) can never mangle its contents.
            marker = "\x00LITERAL\x00" + text.encode("utf-8").hex()
            lines.append(_Line(indent, head + " " + marker, i + 1))
            i = j
            continue
        lines.append(_Line(indent, content, i + 1))
        i += 1
    return lines


# ---------------------------------------------------------------------------
# Scalar parsing
# ---------------------------------------------------------------------------

def _parse_scalar(token: str, line: int) -> Any:
    if "\x00LITERAL\x00" in token:
        encoded = token[token.index("\x00LITERAL\x00") + len("\x00LITERAL\x00") :]
        return bytes.fromhex(encoded.strip()).decode("utf-8")
    token = token.strip()
    if token.startswith("'") :
        if len(token) < 2 or not token.endswith("'"):
            raise YamlError(f"unterminated single-quoted string: {token!r}", line)
        return token[1:-1].replace("''", "'")
    if token.startswith('"'):
        if len(token) < 2 or not token.endswith('"'):
            raise YamlError(f"unterminated double-quoted string: {token!r}", line)
        body = token[1:-1]
        out: list[str] = []
        i = 0
        escapes = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "0": "\0", "r": "\r"}
        while i < len(body):
            ch = body[i]
            if ch == "\\":
                if i + 1 >= len(body):
                    raise YamlError("dangling escape in double-quoted string", line)
                nxt = body[i + 1]
                if nxt not in escapes:
                    raise YamlError(f"unknown escape \\{nxt}", line)
                out.append(escapes[nxt])
                i += 2
            else:
                out.append(ch)
                i += 1
        return "".join(out)
    if token.startswith("[") or token.startswith("{"):
        return _parse_flow(token, line)
    low = token.lower()
    if low in _BOOL_TRUE:
        return True
    if low in _BOOL_FALSE:
        return False
    if low in _NULL:
        return None
    try:
        return int(token, 0) if not token.lstrip("+-").startswith("0x") else int(token, 16)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_flow_items(body: str, line: int) -> list[str]:
    """Split the inside of a flow collection on top-level commas."""
    items: list[str] = []
    depth = 0
    quote: str | None = None
    cur: list[str] = []
    for ch in body:
        if quote:
            cur.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            cur.append(ch)
        elif ch in "[{":
            depth += 1
            cur.append(ch)
        elif ch in "]}":
            depth -= 1
            if depth < 0:
                raise YamlError("unbalanced brackets in flow collection", line)
            cur.append(ch)
        elif ch == "," and depth == 0:
            items.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if quote:
        raise YamlError("unterminated quote in flow collection", line)
    if depth != 0:
        raise YamlError("unbalanced brackets in flow collection", line)
    tail = "".join(cur).strip()
    if tail:
        items.append(tail)
    return items


def _parse_flow(token: str, line: int) -> Any:
    token = token.strip()
    if token.startswith("["):
        if not token.endswith("]"):
            raise YamlError(f"unterminated flow list: {token!r}", line)
        body = token[1:-1].strip()
        if not body:
            return []
        return [_parse_scalar(item, line) for item in _split_flow_items(body, line)]
    if token.startswith("{"):
        if not token.endswith("}"):
            raise YamlError(f"unterminated flow mapping: {token!r}", line)
        body = token[1:-1].strip()
        out: dict[str, Any] = {}
        if not body:
            return out
        for item in _split_flow_items(body, line):
            key, sep, value = item.partition(":")
            if not sep:
                raise YamlError(f"flow mapping entry missing ':': {item!r}", line)
            out[str(_parse_scalar(key, line))] = _parse_scalar(value, line)
        return out
    raise YamlError(f"not a flow collection: {token!r}", line)


def _split_key(content: str, line: int) -> tuple[str, str] | None:
    """Split ``key: value`` on the first top-level colon; None if not a pair."""
    quote: str | None = None
    depth = 0
    for i, ch in enumerate(content):
        if quote:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == ":" and depth == 0:
            if i + 1 == len(content) or content[i + 1] in " \t":
                return content[:i].strip(), content[i + 1 :].strip()
    return None


# ---------------------------------------------------------------------------
# Block parsing
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, lines: list[_Line]) -> None:
        self.lines = lines
        self.pos = 0

    def peek(self) -> _Line | None:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def parse_node(self, indent: int) -> Any:
        line = self.peek()
        if line is None:
            return None
        if line.content.startswith("- ") or line.content == "-":
            return self.parse_sequence(line.indent)
        if _split_key(line.content, line.number) is None:
            # A bare scalar or flow-collection document ("{}", "[1, 2]", "42").
            self.pos += 1
            return _parse_scalar(line.content, line.number)
        return self.parse_mapping(line.indent)

    def parse_sequence(self, indent: int) -> list[Any]:
        items: list[Any] = []
        while True:
            line = self.peek()
            if line is None or line.indent != indent:
                if line is not None and line.indent > indent:
                    raise YamlError("bad indentation in sequence", line.number)
                break
            if not (line.content.startswith("- ") or line.content == "-"):
                break
            rest = line.content[2:].strip() if line.content != "-" else ""
            if rest.startswith("- ") or rest == "-":
                # "- - x" nests a sequence on the same line; re-scope the
                # remainder as a virtual line two columns deeper.
                self.lines[self.pos] = _Line(indent + 2, rest, line.number)
                items.append(self.parse_sequence(indent + 2))
                continue
            self.pos += 1
            if not rest:
                nxt = self.peek()
                if nxt is not None and nxt.indent > indent:
                    items.append(self.parse_node(nxt.indent))
                else:
                    items.append(None)
                continue
            pair = _split_key(rest, line.number)
            if pair is not None:
                # "- key: value" starts an inline mapping item; subsequent
                # keys of the same item are indented past the dash.
                mapping = self._sequence_item_mapping(pair, indent, line.number)
                items.append(mapping)
            else:
                items.append(_parse_scalar(rest, line.number))
        return items

    def _sequence_item_mapping(
        self, first: tuple[str, str], dash_indent: int, number: int
    ) -> dict[str, Any]:
        key, value = first
        mapping: dict[str, Any] = {}
        self._insert_pair(mapping, key, value, dash_indent + 2, number)
        while True:
            line = self.peek()
            if line is None or line.indent <= dash_indent:
                break
            pair = _split_key(line.content, line.number)
            if pair is None:
                raise YamlError(
                    f"expected 'key: value' in mapping, got {line.content!r}",
                    line.number,
                )
            self.pos += 1
            self._insert_pair(mapping, pair[0], pair[1], line.indent, line.number)
        return mapping

    def parse_mapping(self, indent: int) -> dict[str, Any]:
        mapping: dict[str, Any] = {}
        while True:
            line = self.peek()
            if line is None or line.indent != indent:
                if line is not None and line.indent > indent:
                    raise YamlError("bad indentation in mapping", line.number)
                break
            if line.content.startswith("- ") or line.content == "-":
                break
            pair = _split_key(line.content, line.number)
            if pair is None:
                raise YamlError(
                    f"expected 'key: value', got {line.content!r}", line.number
                )
            self.pos += 1
            self._insert_pair(mapping, pair[0], pair[1], indent, line.number)
        return mapping

    def _insert_pair(
        self, mapping: dict[str, Any], key: str, value: str, indent: int, number: int
    ) -> None:
        key_obj = _parse_scalar(key, number)
        key_str = str(key_obj)
        if key_str in mapping:
            raise YamlError(f"duplicate mapping key: {key_str!r}", number)
        if value:
            mapping[key_str] = _parse_scalar(value, number)
            return
        nxt = self.peek()
        if nxt is not None and nxt.indent > indent:
            mapping[key_str] = self.parse_node(nxt.indent)
        elif (
            nxt is not None
            and nxt.indent == indent
            and (nxt.content.startswith("- ") or nxt.content == "-")
        ):
            # Sequences are commonly indented at the same level as their key.
            mapping[key_str] = self.parse_sequence(indent)
        else:
            mapping[key_str] = None


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def load_all(source: str) -> list[Any]:
    """Parse a (possibly multi-document) YAML stream into Python objects."""
    documents: list[Any] = []
    chunks: list[list[str]] = [[]]
    for raw in source.splitlines():
        if raw.strip() == "---":
            chunks.append([])
        elif raw.strip() == "...":
            chunks.append([])
        else:
            chunks[-1].append(raw)
    for chunk in chunks:
        text = "\n".join(chunk)
        lines = _scan(text)
        if not lines:
            continue
        parser = _Parser(lines)
        doc = parser.parse_node(lines[0].indent)
        leftover = parser.peek()
        if leftover is not None:
            raise YamlError(
                f"trailing content: {leftover.content!r}", leftover.number
            )
        documents.append(doc)
    return documents


def loads(source: str) -> Any:
    """Parse a single YAML document; returns ``None`` for an empty stream."""
    docs = load_all(source)
    if not docs:
        return None
    if len(docs) > 1:
        raise YamlError(f"expected a single document, found {len(docs)}")
    return docs[0]


def load_file(path: Any) -> Any:
    """Parse the YAML document stored at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


# ---------------------------------------------------------------------------
# Emitter
# ---------------------------------------------------------------------------

_PLAIN_SAFE = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "_-./+*=<>()%@^$;!?& "
)


def _format_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    text = str(value)
    if text == "":
        return "''"
    needs_quote = (
        any(ch not in _PLAIN_SAFE for ch in text)
        or text != text.strip()
        or text.lower() in _BOOL_TRUE | _BOOL_FALSE | _NULL
        or _looks_numeric(text)
        or text[0] in "-[]{}#'\"|"
        or ": " in text
        or text.endswith(":")
    )
    if not needs_quote:
        return text
    if "\n" in text or '"' in text or "\\" in text:
        escaped = (
            text.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\t", "\\t")
            .replace("\r", "\\r")
        )
        return f'"{escaped}"'
    return "'" + text.replace("'", "''") + "'"


def _looks_numeric(text: str) -> bool:
    try:
        int(text, 0)
        return True
    except ValueError:
        pass
    try:
        float(text)
        return True
    except ValueError:
        return False


def _dump_node(value: Any, indent: int, out: list[str]) -> None:
    pad = " " * indent
    if isinstance(value, dict):
        if not value:
            out.append(pad + "{}")
            return
        for key, item in value.items():
            key_text = _format_scalar(key)
            if isinstance(item, (dict, list)) and item:
                out.append(f"{pad}{key_text}:")
                _dump_node(item, indent + 2, out)
            elif isinstance(item, dict):
                out.append(f"{pad}{key_text}: {{}}")
            elif isinstance(item, list):
                out.append(f"{pad}{key_text}: []")
            else:
                out.append(f"{pad}{key_text}: {_format_scalar(item)}")
    elif isinstance(value, list):
        if not value:
            out.append(pad + "[]")
            return
        for item in value:
            if isinstance(item, dict) and item:
                lines: list[str] = []
                _dump_node(item, indent + 2, lines)
                first = lines[0]
                out.append(f"{pad}- {first[indent + 2:]}")
                out.extend(lines[1:])
            elif isinstance(item, list) and item:
                lines = []
                _dump_node(item, indent + 2, lines)
                first = lines[0]
                out.append(f"{pad}- {first[indent + 2:]}")
                out.extend(lines[1:])
            elif isinstance(item, dict):
                out.append(f"{pad}- {{}}")
            elif isinstance(item, list):
                out.append(f"{pad}- []")
            else:
                out.append(f"{pad}- {_format_scalar(item)}")
    else:
        out.append(pad + _format_scalar(value))


def dumps(value: Any) -> str:
    """Serialize *value* (dicts/lists/scalars) to canonical block YAML."""
    out: list[str] = []
    _dump_node(value, 0, out)
    return "\n".join(out) + "\n"


def dump_file(value: Any, path: Any) -> None:
    """Serialize *value* to the file at *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(value))
