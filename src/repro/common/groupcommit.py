"""Group-commit appends: amortizing the durability tax across a window.

``BENCH_durability.json`` prices a durable :func:`~repro.common.fsutil.
journal_append` at ~110x a buffered one — the entire difference is the
per-line ``fsync``.  A :class:`GroupCommitWriter` keeps the *write*
per-append (every line still lands in the file, and in the OS page
cache, as it happens — a killed process loses nothing it wrote) but
pays the durability barrier once per bounded *window* of appends:
size-, byte- and time-triggered, with an explicit :meth:`flush` at
span/run boundaries.

Durability contract (documented in ``docs/robustness.md``):

* a **process** crash (kill -9, injected crash) loses nothing — every
  append was written and flushed to the kernel before :meth:`append`
  returned;
* a **machine** crash (power cut) loses at most the current unsynced
  window — a contiguous suffix of whole lines plus, at worst, one torn
  trailing line.  Never a torn prefix: appends are sequential, so the
  tear is always at the tail, which every JSONL reader in the toolchain
  already skips and ``popper doctor`` truncates.

Bulk writers (journal shard merges, fuzz coverage harvests) can opt
into :meth:`batched` mode, which additionally buffers the *writes*
into one syscall per window — the loop-append fix for callers that
used to pay a write+flush (or a whole file open) per event.

Crash injection: with a :class:`~repro.common.crash.CrashPlan`
installed the writer degrades to one window per append, so the
existing ``<label>.torn`` crashpoint keeps its exact semantics (half
the line flushed), and a new ``<label>.window`` crashpoint fires
*before* the window's bytes reach the file — the "crash inside a
group-commit window" hazard, which loses the window cleanly.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from threading import Lock
from typing import IO, Callable, Iterator

from repro.common.crash import active_crash_plan, crashpoint
from repro.common.fsutil import ensure_dir

__all__ = ["GroupCommitWriter"]

#: Default window bounds: whichever trips first commits the window.
DEFAULT_MAX_EVENTS = 256
DEFAULT_MAX_BYTES = 64 * 1024
DEFAULT_MAX_DELAY_S = 0.05


class GroupCommitWriter:
    """Append-only line writer with one durability barrier per window.

    Thread-safe: concurrent appenders (scheduler workers sharing one
    run journal) serialize on an internal lock, and every line lands as
    one contiguous write.  ``durable=False`` writers never fsync — for
    them the window only batches write syscalls in :meth:`batched`
    mode, and plain appends behave exactly like the historical
    per-line ``journal_append``.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        durable: bool = False,
        fresh: bool = False,
        max_events: int = DEFAULT_MAX_EVENTS,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_delay_s: float = DEFAULT_MAX_DELAY_S,
        crash_label: str = "journal.append",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.durable = bool(durable)
        self.max_events = max(1, int(max_events))
        self.max_bytes = max(1, int(max_bytes))
        self.max_delay_s = float(max_delay_s)
        self.crash_label = crash_label
        self._clock = clock
        self._lock = Lock()
        ensure_dir(self.path.parent)
        if fresh:
            # Truncate separately, then append: append-mode writes can
            # only ever grow the file, never clobber another writer.
            self.path.write_text("", encoding="utf-8")
        self._fh: IO[str] | None = self.path.open("a", encoding="utf-8")
        # Buffered lines (batched mode only) and their byte count.
        self._buffer: list[str] = []
        self._buffered_bytes = 0
        # Written-but-unsynced appends (durable write-through mode).
        self._unsynced = 0
        self._window_opened: float | None = None
        self._batch_depth = 0
        #: Counters for benchmarks and tests: ``syncs`` << ``appends``
        #: is the amortization the group commit exists to provide.
        self.appends = 0
        self.commits = 0
        self.syncs = 0

    # -- window bookkeeping -----------------------------------------------------
    def _window_full(self, events: int, nbytes: int) -> bool:
        if events >= self.max_events or nbytes >= self.max_bytes:
            return True
        return (
            self._window_opened is not None
            and self._clock() - self._window_opened >= self.max_delay_s
        )

    def pending(self) -> int:
        """Appends not yet committed (buffered or written-but-unsynced)."""
        with self._lock:
            return len(self._buffer) + self._unsynced

    # -- writing ------------------------------------------------------------------
    def append(self, line: str) -> None:
        """Queue one line; commits the window when a bound trips.

        The line is written (and flushed to the kernel) before this
        returns unless a :meth:`batched` section is active; the fsync —
        for durable writers — is deferred to the window commit.
        """
        if "\n" in line:
            raise ValueError("GroupCommitWriter.append takes a single line")
        with self._lock:
            if self._fh is None:
                raise ValueError(f"group-commit writer {self.path} is closed")
            self.appends += 1
            if active_crash_plan() is not None:
                # Crash determinism: one window per append, so an
                # injected crash always lands at the same line.  The
                # window crashpoint fires with nothing on disk (the
                # event is lost whole); the torn crashpoint fires with
                # exactly half the line flushed.
                self._drain_locked()
                crashpoint(f"{self.crash_label}.window")
                half = max(1, len(line) // 2)
                self._fh.write(line[:half])
                self._fh.flush()
                crashpoint(f"{self.crash_label}.torn")
                self._fh.write(line[half:] + "\n")
                self._fh.flush()
                self.commits += 1
                self._sync_locked()
                self._window_opened = None
                return
            if self._batch_depth > 0:
                self._buffer.append(line + "\n")
                self._buffered_bytes += len(line) + 1
                if self._window_opened is None:
                    self._window_opened = self._clock()
                if self._window_full(len(self._buffer), self._buffered_bytes):
                    self._commit_locked()
                return
            # Write-through: the line survives a process kill the moment
            # this returns; only the machine-crash barrier is deferred.
            self._fh.write(line + "\n")
            self._fh.flush()
            if not self.durable:
                return
            self._unsynced += 1
            if self._window_opened is None:
                self._window_opened = self._clock()
            if self._window_full(self._unsynced, 0):
                self._commit_locked()

    def _drain_locked(self) -> None:
        """Write any batched lines out (one write), without syncing."""
        if not self._buffer:
            return
        payload = "".join(self._buffer)
        self._buffer.clear()
        self._buffered_bytes = 0
        crashpoint(f"{self.crash_label}.window")
        self._fh.write(payload)
        self._fh.flush()

    def _sync_locked(self) -> None:
        if self.durable and self._fh is not None:
            os.fsync(self._fh.fileno())
            self.syncs += 1
        self._unsynced = 0

    def _commit_locked(self) -> None:
        had_work = bool(self._buffer) or self._unsynced > 0
        self._drain_locked()
        if had_work:
            self.commits += 1
            self._sync_locked()
        self._window_opened = None

    def flush(self) -> None:
        """Commit the open window: drain batched lines, fsync if durable.

        Span/run boundaries call this explicitly, so the at-most-one-
        window loss bound never spans a boundary the caller cares about.
        """
        with self._lock:
            if self._fh is not None:
                self._commit_locked()

    @contextmanager
    def batched(self) -> Iterator["GroupCommitWriter"]:
        """Buffer writes (one syscall per window) for a bulk append loop.

        Nests; the outermost exit commits whatever remains.  With a
        crash plan installed appends keep their deterministic one-
        window-per-line behavior even inside a batch.
        """
        with self._lock:
            self._batch_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._batch_depth -= 1
                if self._batch_depth == 0 and self._fh is not None:
                    self._commit_locked()

    def close(self) -> None:
        with self._lock:
            if self._fh is None:
                return
            self._commit_locked()
            self._fh.close()
            self._fh = None

    @property
    def in_batch(self) -> bool:
        """True while a :meth:`batched` section is active."""
        return self._batch_depth > 0

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __enter__(self) -> "GroupCommitWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
