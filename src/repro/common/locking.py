"""Inter-process locking for the on-disk substrates under ``.pvcs/``.

Everything the toolchain persists — the CAS pool, the artifact index,
refs, run-state checkpoints — is written atomically, which protects
readers from torn *files*; it does not serialize multi-step updates
("ingest these objects, then publish the record that references them")
across two ``popper run`` processes sharing one repository.  That is
this module's job.

:class:`RepoLock` is an advisory ``fcntl.flock`` on a well-known lock
file.  Acquiring writes PID/host/label/timestamp metadata into the file
— purely informational, so a blocked process (and ``popper doctor``)
can name the holder.  The kernel releases a ``flock`` the instant its
holder dies, so a crashed process can never wedge the repository; what
a crash *does* leave is stale metadata in the lock file, which
``popper doctor`` detects (dead PID on this host, lock acquirable) and
clears.  On platforms without ``fcntl`` the lock degrades to an
``O_EXCL`` lock file where stale-holder breaking (dead PID, or metadata
older than ``stale_s``) is load-bearing rather than cosmetic.

Locks are reentrant per instance (an :class:`~repro.store.ArtifactStore`
publish holds the store lock while the pool ingest takes it again) and
thread-safe: one ``threading.RLock`` serializes threads of this process
while the file lock serializes processes.

:func:`ScopedLock` is the naming convention: scope ``"refs"`` under
``.pvcs`` becomes ``.pvcs/locks/refs.lock``.  The lock *layout* is part
of the repository format — see ``docs/robustness.md``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.common.errors import LockError, LockTimeout

try:  # pragma: no cover - always available on the platforms we test
    import fcntl

    _HAVE_FCNTL = True
except ImportError:  # pragma: no cover - windows fallback
    _HAVE_FCNTL = False

__all__ = ["LockInfo", "RepoLock", "ScopedLock"]


class LockInfo:
    """Holder metadata read back from a lock file."""

    __slots__ = ("pid", "host", "label", "created")

    def __init__(self, pid: int, host: str, label: str, created: float) -> None:
        self.pid = pid
        self.host = host
        self.label = label
        self.created = created

    @classmethod
    def from_json(cls, text: str) -> "LockInfo | None":
        try:
            doc = json.loads(text)
            return cls(
                pid=int(doc["pid"]),
                host=str(doc.get("host", "")),
                label=str(doc.get("label", "")),
                created=float(doc.get("created", 0.0)),
            )
        except (ValueError, TypeError, KeyError):
            return None

    def to_json(self) -> str:
        return json.dumps(
            {
                "pid": self.pid,
                "host": self.host,
                "label": self.label,
                "created": self.created,
            },
            sort_keys=True,
        )

    def describe(self) -> str:
        return f"pid {self.pid} on {self.host or '?'} ({self.label or 'unlabeled'})"

    def alive(self) -> bool:
        """Best-effort "does the recorded holder still exist".

        Only meaningful for this host; a foreign hostname is assumed
        alive (we cannot probe it, and breaking a live remote holder is
        the worse failure).
        """
        if self.host and self.host != os.uname().nodename:
            return True
        if self.pid <= 0:
            return False
        try:
            os.kill(self.pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - exists, not ours
            return True
        return True


class RepoLock:
    """An advisory inter-process lock on one file, reentrant per instance."""

    def __init__(
        self,
        path: str | os.PathLike,
        label: str = "",
        timeout_s: float = 30.0,
        poll_s: float = 0.02,
        stale_s: float = 3600.0,
    ) -> None:
        self.path = Path(path)
        self.label = label or self.path.stem
        self.timeout_s = float(timeout_s)
        self.poll_s = float(poll_s)
        #: Fallback (no-fcntl) mode only: metadata older than this with a
        #: dead or unknown holder is broken.  With flock the kernel does
        #: the breaking and this is never consulted.
        self.stale_s = float(stale_s)
        self._rlock = threading.RLock()
        self._depth = 0
        self._fd: int | None = None

    # -- metadata ---------------------------------------------------------------
    def holder(self) -> LockInfo | None:
        """Metadata of the recorded holder, if the lock file carries any."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return None
        if not text.strip():
            return None
        return LockInfo.from_json(text)

    def _write_holder(self, fd: int) -> None:
        info = LockInfo(
            pid=os.getpid(),
            host=os.uname().nodename,
            label=self.label,
            created=time.time(),
        )
        os.ftruncate(fd, 0)
        os.lseek(fd, 0, os.SEEK_SET)
        os.write(fd, (info.to_json() + "\n").encode("utf-8"))

    # -- acquire / release --------------------------------------------------------
    def acquire(self, timeout_s: float | None = None) -> "RepoLock":
        """Take the lock, waiting up to *timeout_s* (default: instance's).

        Raises :class:`~repro.common.errors.LockTimeout` (transient — a
        retry may well succeed) when the deadline passes, naming the
        recorded holder.
        """
        deadline_s = self.timeout_s if timeout_s is None else float(timeout_s)
        self._rlock.acquire()
        if self._depth:
            self._depth += 1
            return self
        try:
            self._fd = (
                self._acquire_flock(deadline_s)
                if _HAVE_FCNTL
                else self._acquire_exclusive(deadline_s)
            )
            self._write_holder(self._fd)
            self._depth = 1
        except BaseException:
            self._rlock.release()
            raise
        return self

    def release(self) -> None:
        # Only the thread that acquired can release: it already holds
        # self._rlock (acquire() keeps one hold per nesting level).
        if not self._depth:
            raise LockError(f"lock {self.path} is not held")
        try:
            self._depth -= 1
            if self._depth == 0:
                fd, self._fd = self._fd, None
                if fd is not None:
                    # Clear the metadata before letting go: an empty lock
                    # file is the "released cleanly" marker doctor trusts.
                    os.ftruncate(fd, 0)
                    if _HAVE_FCNTL:
                        fcntl.flock(fd, fcntl.LOCK_UN)
                    os.close(fd)
                if not _HAVE_FCNTL:  # pragma: no cover - windows fallback
                    self.path.unlink(missing_ok=True)
        finally:
            self._rlock.release()

    def __enter__(self) -> "RepoLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    @property
    def held(self) -> bool:
        return self._depth > 0

    # -- backends -----------------------------------------------------------------
    def _open(self) -> int:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        return os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)

    def _acquire_flock(self, deadline_s: float) -> int:
        fd = self._open()
        deadline = time.monotonic() + deadline_s
        try:
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    return fd
                except OSError:
                    if time.monotonic() >= deadline:
                        holder = self.holder()
                        raise LockTimeout(
                            f"lock {self.path} not acquired within "
                            f"{deadline_s:g}s"
                            + (f"; held by {holder.describe()}" if holder else "")
                        ) from None
                    time.sleep(self.poll_s)
        except BaseException:
            os.close(fd)
            raise

    def _acquire_exclusive(self, deadline_s: float) -> int:  # pragma: no cover
        """O_EXCL fallback for platforms without ``fcntl``.

        The lock *file's existence* is the lock, so a crashed holder
        leaves it behind; breaking (dead PID on this host, or metadata
        past ``stale_s``) is what keeps the repository usable.
        """
        deadline = time.monotonic() + deadline_s
        while True:
            try:
                return os.open(
                    self.path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                holder = self.holder()
                stale = holder is None or not holder.alive() or (
                    holder.created
                    and time.time() - holder.created > self.stale_s
                )
                if stale:
                    self.path.unlink(missing_ok=True)
                    continue
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"lock {self.path} not acquired within {deadline_s:g}s"
                        + (f"; held by {holder.describe()}" if holder else "")
                    ) from None
                time.sleep(self.poll_s)


def ScopedLock(
    meta_dir: str | os.PathLike, scope: str, **kwargs
) -> RepoLock:
    """The lock for one named scope of a metadata directory.

    ``ScopedLock(repo / ".pvcs", "refs")`` → ``.pvcs/locks/refs.lock``.
    Every substrate takes its locks through this helper so the lock
    layout stays one documented directory.
    """
    if not scope or "/" in scope or scope.startswith("."):
        raise LockError(f"bad lock scope: {scope!r}")
    kwargs.setdefault("label", scope)
    return RepoLock(Path(meta_dir) / "locks" / f"{scope}.lock", **kwargs)
