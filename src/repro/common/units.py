"""Unit parsing and formatting for sizes, durations and rates.

Experiment parametrizations (``vars.yml``) express quantities the way
operators write them — ``"4GiB"``, ``"250us"``, ``"10Gbit/s"`` — and the
simulators need them as plain floats in base units (bytes, seconds,
bytes/second).
"""

from __future__ import annotations

import re

__all__ = [
    "parse_size",
    "parse_duration",
    "parse_rate",
    "format_size",
    "format_duration",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
]

KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4

_SIZE_UNITS = {
    "": 1,
    "b": 1,
    "k": 1000,
    "kb": 1000,
    "kib": KiB,
    "m": 1000**2,
    "mb": 1000**2,
    "mib": MiB,
    "g": 1000**3,
    "gb": 1000**3,
    "gib": GiB,
    "t": 1000**4,
    "tb": 1000**4,
    "tib": TiB,
}

_DURATION_UNITS = {
    "ns": 1e-9,
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "sec": 1.0,
    "m": 60.0,
    "min": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
}

_NUMBER = re.compile(r"^\s*([0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-zA-Z/]*)\s*$")


def _split(text: str | int | float) -> tuple[float, str]:
    if isinstance(text, (int, float)):
        return float(text), ""
    match = _NUMBER.match(text)
    if not match:
        raise ValueError(f"cannot parse quantity: {text!r}")
    return float(match.group(1)), match.group(2).lower()


def parse_size(text: str | int | float) -> int:
    """Parse ``"4GiB"`` / ``"512MB"`` / ``4096`` into bytes."""
    value, unit = _split(text)
    if unit not in _SIZE_UNITS:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}")
    return int(round(value * _SIZE_UNITS[unit]))


def parse_duration(text: str | int | float) -> float:
    """Parse ``"250us"`` / ``"1.5h"`` / ``3.0`` into seconds."""
    value, unit = _split(text)
    if unit not in _DURATION_UNITS and unit != "":
        raise ValueError(f"unknown duration unit {unit!r} in {text!r}")
    return value * _DURATION_UNITS.get(unit, 1.0)


def parse_rate(text: str | int | float) -> float:
    """Parse a bandwidth like ``"10Gbit/s"`` / ``"1.2GiB/s"`` into bytes/second."""
    if isinstance(text, (int, float)):
        return float(text)
    value, unit = _split(text)
    if unit.endswith("/s"):
        unit = unit[:-2]
    if unit.endswith("bit"):
        prefix = unit[:-3]
        scale = {"": 1, "k": 1e3, "m": 1e6, "g": 1e9, "t": 1e12}.get(prefix)
        if scale is None:
            raise ValueError(f"unknown bit-rate prefix {prefix!r} in {text!r}")
        return value * scale / 8.0
    if unit in _SIZE_UNITS:
        return value * _SIZE_UNITS[unit]
    raise ValueError(f"unknown rate unit {unit!r} in {text!r}")


def format_size(n_bytes: float) -> str:
    """Human-readable base-2 size (``"4.0GiB"``)."""
    value = float(n_bytes)
    for suffix, scale in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(value) >= scale:
            return f"{value / scale:.1f}{suffix}"
    return f"{int(value)}B"


def format_duration(seconds: float) -> str:
    """Human-readable duration (``"1.2ms"``, ``"3m20s"``)."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.2f}s"
    minutes, secs = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{secs:.0f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes)}m"
