"""Deterministic random-stream derivation.

Every stochastic component of the simulation (machine-to-machine variation,
network jitter, OS noise, workload think time) draws from a
:class:`numpy.random.Generator` derived from a root seed plus a label path,
so that (a) the whole evaluation is reproducible bit-for-bit from one seed
and (b) adding a new consumer never perturbs the streams of existing ones —
the property that makes regression baselines stable across code changes.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "derive_rng", "SeedSequenceFactory"]


def derive_seed(root: int, *labels: str | int) -> int:
    """A 63-bit seed deterministically derived from *root* and a label path."""
    digest = hashlib.sha256()
    digest.update(str(int(root)).encode("ascii"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


def derive_rng(root: int, *labels: str | int) -> np.random.Generator:
    """A numpy Generator seeded from :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(root, *labels))


class SeedSequenceFactory:
    """Hands out independent generators under a fixed root seed.

    A factory is handed to a simulation; components request
    ``factory.rng("component", instance_id)`` and receive streams that are
    stable regardless of creation order.
    """

    def __init__(self, root: int) -> None:
        self.root = int(root)

    def seed(self, *labels: str | int) -> int:
        """Derived integer seed for a label path."""
        return derive_seed(self.root, *labels)

    def rng(self, *labels: str | int) -> np.random.Generator:
        """Derived generator for a label path."""
        return derive_rng(self.root, *labels)

    def child(self, *labels: str | int) -> "SeedSequenceFactory":
        """A factory namespaced under this one."""
        return SeedSequenceFactory(self.seed(*labels))
