"""Shared substrate-free utilities: YAML subset, hashing, tables, units,
RNG, inter-process locking and crash injection."""

from repro.common.crash import (
    CrashPlan,
    SimulatedCrash,
    active_crash_plan,
    crashpoint,
    install_crash_plan,
)
from repro.common.errors import ReproError
from repro.common.locking import LockInfo, RepoLock, ScopedLock
from repro.common.hashing import sha256_bytes, sha256_file, sha256_text, short_id
from repro.common.rng import SeedSequenceFactory, derive_rng, derive_seed
from repro.common.tables import MetricsTable
from repro.common.units import (
    format_duration,
    format_size,
    parse_duration,
    parse_rate,
    parse_size,
)

__all__ = [
    "ReproError",
    "CrashPlan",
    "SimulatedCrash",
    "active_crash_plan",
    "crashpoint",
    "install_crash_plan",
    "LockInfo",
    "RepoLock",
    "ScopedLock",
    "MetricsTable",
    "SeedSequenceFactory",
    "derive_rng",
    "derive_seed",
    "sha256_bytes",
    "sha256_file",
    "sha256_text",
    "short_id",
    "parse_size",
    "parse_duration",
    "parse_rate",
    "format_size",
    "format_duration",
]
