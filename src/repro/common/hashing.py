"""Content hashing used across the version-control, container and dataset
substrates.

Everything that the Popper convention references "by identifier" —
commits, image layers, dataset resources — is content-addressed with
SHA-256.  This module centralizes the hashing so every substrate derives
identifiers the same way.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterable

__all__ = [
    "sha256_bytes",
    "sha256_text",
    "sha256_file",
    "sha256_stream",
    "short_id",
    "combine_digests",
]

_CHUNK = 1 << 20


def sha256_bytes(data: bytes) -> str:
    """Hex digest of a bytes payload."""
    return hashlib.sha256(data).hexdigest()


def sha256_text(text: str) -> str:
    """Hex digest of a text payload (UTF-8 encoded)."""
    return sha256_bytes(text.encode("utf-8"))


def sha256_file(path: str | os.PathLike) -> str:
    """Hex digest of a file's contents, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def sha256_stream(chunks: Iterable[bytes]) -> str:
    """Hex digest of an iterable of byte chunks."""
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(chunk)
    return digest.hexdigest()


def short_id(digest: str, length: int = 12) -> str:
    """Abbreviated identifier, the way ``git log --oneline`` abbreviates."""
    if length < 4:
        raise ValueError("short ids below 4 characters are too ambiguous")
    return digest[:length]


def combine_digests(digests: Iterable[str]) -> str:
    """Order-sensitive combination of several digests into one.

    Used for image identities (hash of the layer-digest chain) and tree
    objects (hash of sorted entries).
    """
    digest = hashlib.sha256()
    for item in digests:
        digest.update(item.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()
