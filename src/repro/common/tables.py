"""Columnar metrics tables — the interchange format between experiments,
monitoring, analysis and the Aver validation language.

The Popper pipeline produces ``results.csv`` files; Aver assertions are
evaluated against them; analysis scripts group and aggregate them.  A
:class:`MetricsTable` is a small, dependency-free columnar table with just
the operations those stages need: CSV round-trips, row filtering, column
extraction, group-by and aggregate.  Numeric columns are materialized as
numpy arrays so downstream statistics stay vectorized.
"""

from __future__ import annotations

import csv
import io
import os
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

__all__ = ["MetricsTable"]


def _coerce(value: Any) -> Any:
    """CSV cells arrive as strings; recover ints/floats/bools/None."""
    if not isinstance(value, str):
        return value
    text = value.strip()
    if text == "":
        return None
    low = text.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


class MetricsTable:
    """An ordered collection of rows sharing a column set.

    Parameters
    ----------
    columns:
        Column names, in presentation order.
    rows:
        Iterable of per-row mappings or sequences aligned with *columns*.
    """

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Mapping[str, Any] | Sequence[Any]] = (),
    ) -> None:
        self.columns: list[str] = list(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names: {self.columns}")
        self._rows: list[dict[str, Any]] = []
        for row in rows:
            self.append(row)

    # -- construction -------------------------------------------------------
    def append(self, row: Mapping[str, Any] | Sequence[Any]) -> None:
        """Append one row (mapping, or sequence aligned with ``columns``)."""
        if isinstance(row, Mapping):
            unknown = set(row) - set(self.columns)
            if unknown:
                raise KeyError(f"row has columns not in table: {sorted(unknown)}")
            self._rows.append({c: row.get(c) for c in self.columns})
        else:
            values = list(row)
            if len(values) != len(self.columns):
                raise ValueError(
                    f"row has {len(values)} values, table has "
                    f"{len(self.columns)} columns"
                )
            self._rows.append(dict(zip(self.columns, values)))

    def extend(self, rows: Iterable[Mapping[str, Any] | Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, Any]]) -> "MetricsTable":
        """Build a table from mappings, unioning their keys in first-seen order."""
        columns: list[str] = []
        for record in records:
            for key in record:
                if key not in columns:
                    columns.append(key)
        table = cls(columns)
        for record in records:
            table._rows.append({c: record.get(c) for c in columns})
        return table

    # -- container protocol --------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsTable):
            return NotImplemented
        return self.columns == other.columns and self._rows == other._rows

    def __repr__(self) -> str:
        return f"MetricsTable(columns={self.columns}, rows={len(self)})"

    # -- access --------------------------------------------------------------
    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"no such column: {name!r} (have {self.columns})")
        return [row[name] for row in self._rows]

    def numeric(self, name: str) -> np.ndarray:
        """One column as a float64 numpy array (None becomes NaN)."""
        values = self.column(name)
        out = np.empty(len(values), dtype=np.float64)
        for i, value in enumerate(values):
            if value is None:
                out[i] = np.nan
            elif isinstance(value, bool):
                out[i] = 1.0 if value else 0.0
            elif isinstance(value, (int, float)):
                out[i] = float(value)
            else:
                raise TypeError(
                    f"column {name!r} is not numeric: row {i} holds {value!r}"
                )
        return out

    def distinct(self, name: str) -> list[Any]:
        """Distinct values of a column, in first-seen order."""
        seen: dict[Any, None] = {}
        for value in self.column(name):
            seen.setdefault(value, None)
        return list(seen)

    # -- relational-ish operations --------------------------------------------
    def where(self, predicate: Callable[[dict[str, Any]], bool]) -> "MetricsTable":
        """Rows satisfying *predicate*, as a new table."""
        out = MetricsTable(self.columns)
        out._rows = [dict(row) for row in self._rows if predicate(row)]
        return out

    def where_equals(self, **conditions: Any) -> "MetricsTable":
        """Rows where every named column equals the given value."""
        for key in conditions:
            if key not in self.columns:
                raise KeyError(f"no such column: {key!r}")
        return self.where(
            lambda row: all(row[k] == v for k, v in conditions.items())
        )

    def select(self, *names: str) -> "MetricsTable":
        """Projection onto a subset of columns."""
        for name in names:
            if name not in self.columns:
                raise KeyError(f"no such column: {name!r}")
        out = MetricsTable(list(names))
        out._rows = [{n: row[n] for n in names} for row in self._rows]
        return out

    def sort_by(self, *names: str, reverse: bool = False) -> "MetricsTable":
        """Rows ordered by the named columns."""
        for name in names:
            if name not in self.columns:
                raise KeyError(f"no such column: {name!r}")
        out = MetricsTable(self.columns)
        out._rows = sorted(
            (dict(r) for r in self._rows),
            key=lambda row: tuple(
                (row[n] is None, row[n] if row[n] is not None else 0)
                for n in names
            ),
            reverse=reverse,
        )
        return out

    def group_by(self, *names: str) -> dict[tuple[Any, ...], "MetricsTable"]:
        """Partition rows by the tuple of the named columns' values."""
        groups: dict[tuple[Any, ...], MetricsTable] = {}
        for row in self._rows:
            key = tuple(row[n] for n in names)
            if key not in groups:
                groups[key] = MetricsTable(self.columns)
            groups[key]._rows.append(dict(row))
        return groups

    def aggregate(
        self,
        by: Sequence[str],
        metric: str,
        func: Callable[[np.ndarray], float] = np.mean,
        output: str | None = None,
    ) -> "MetricsTable":
        """Group by *by* and reduce *metric* with *func* (mean by default)."""
        output = output or metric
        out = MetricsTable(list(by) + [output])
        for key, group in self.group_by(*by).items():
            values = group.numeric(metric)
            out.append(list(key) + [float(func(values))])
        return out

    def with_column(self, name: str, values: Sequence[Any]) -> "MetricsTable":
        """New table with an extra column appended."""
        if name in self.columns:
            raise ValueError(f"column already exists: {name!r}")
        if len(values) != len(self):
            raise ValueError("column length does not match row count")
        out = MetricsTable(self.columns + [name])
        out._rows = [
            {**row, name: value} for row, value in zip(self._rows, values)
        ]
        return out

    def concat(self, other: "MetricsTable") -> "MetricsTable":
        """Stack two tables with identical column sets."""
        if self.columns != other.columns:
            raise ValueError(
                f"column mismatch: {self.columns} vs {other.columns}"
            )
        out = MetricsTable(self.columns)
        out._rows = [dict(r) for r in self._rows] + [dict(r) for r in other._rows]
        return out

    # -- serialization ---------------------------------------------------------
    def to_csv(self) -> str:
        """Render as CSV text with a header row."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self._rows:
            writer.writerow(
                ["" if row[c] is None else row[c] for c in self.columns]
            )
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "MetricsTable":
        """Parse CSV text produced by :meth:`to_csv` (types are recovered)."""
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError("empty CSV document") from None
        table = cls(header)
        for values in reader:
            if not values:
                continue
            if len(values) != len(header):
                raise ValueError(
                    f"CSV row has {len(values)} cells, header has {len(header)}"
                )
            table._rows.append(
                {c: _coerce(v) for c, v in zip(header, values)}
            )
        return table

    def save_csv(self, path: str | os.PathLike) -> None:
        """Write the table to *path* as CSV."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_csv())

    @classmethod
    def load_csv(cls, path: str | os.PathLike) -> "MetricsTable":
        """Read a CSV file written by :meth:`save_csv`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_csv(handle.read())

    def to_records(self) -> list[dict[str, Any]]:
        """All rows as independent dicts."""
        return [dict(row) for row in self._rows]

    def to_text(self) -> str:
        """Render as an aligned plain-text table (header + rows).

        The terminal-facing sibling of :meth:`to_csv`: columns are
        padded to their widest cell, floats print with 4 significant
        digits, None prints empty.  Used by ``popper perf`` and friends
        for verdict tables.
        """

        def fmt(value: Any) -> str:
            if value is None:
                return ""
            if isinstance(value, bool):
                return str(value)
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        rendered = [[fmt(row[c]) for c in self.columns] for row in self._rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in rendered))
            if rendered
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.columns)).rstrip()
        ]
        for cells in rendered:
            lines.append(
                "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()
            )
        return "\n".join(lines) + "\n"
