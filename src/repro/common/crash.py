"""Deterministic crash injection: killing the process at write hazards.

The fault plan in :mod:`repro.engine.faults` makes *payloads* fail; this
module makes the *toolchain itself* die mid-write, which is the failure
class crash consistency is about.  Every hazardous write site in the
storage stack calls :func:`crashpoint` with a dotted site name::

    cas.ingest.tmp          object bytes written, not yet published
    cas.ingest.publish      object published, index record not yet written
    index.record            about to publish an artifact-index record
    refs.update             about to replace a ref file
    runstate.append.torn    half a run-state record flushed to disk
    journal.append.torn     half a journal event flushed to disk
    runstate.append.window  a group-commit window about to land (the
                            buffered records are lost whole, no tear)
    journal.append.window   same, for the run journal's writer
    fuzz.coverage.window / fuzz.coverage.torn  the coverage map's writer
    fuzz.corpus.window / fuzz.corpus.torn      the corpus index's writer
    queue.claim             job lease marker durable, journal record
                            not yet appended (the job stays claimable)
    queue.publish           job result file durable, journal record not
                            yet appended (the lease expires and the job
                            re-runs — idempotent through the cache)
    queue.append.window / queue.append.torn    the serve queue journal's
                            group-commit writer
    pack.write.tmp          packfile temp durable, rename not yet issued
    pack.publish            pack renamed in, index not yet written
    fsutil.atomic_write.tmp     temp file durable, rename not yet issued
    fsutil.atomic_write.rename  renamed, parent directory not yet fsynced

With no plan installed the hook is a cheap no-op.  A :class:`CrashPlan`
(``popper run --inject-crash SPEC``) matches site names against globbed
clauses and kills the process at the matching hit — either *soft*
(raising :class:`SimulatedCrash`, a ``BaseException`` that unwinds like
a ``kill`` would, skipping the ``except Exception`` recovery paths) or
*hard* (``os._exit``, the honest ``kill -9``).  Determinism mirrors
``FaultPlan``: the same spec and seed crash at the same write on every
run, so a crash test is itself a reproducible experiment.

Spec grammar (comma-separated clauses)::

    at:<glob>:<n>     the n-th hit of a matching site crashes
    rate:<glob>:<p>   each hit of a matching site crashes with
                      probability p, drawn from a seeded stream

``popper doctor`` is the other half: after an injected (or real) crash
it scans ``.pvcs/`` for the debris — orphan temps, torn JSONL tails,
half-published index records, stale locks — and repairs it.
"""

from __future__ import annotations

import math
import os
import threading
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.common.errors import EngineError
from repro.common.rng import derive_rng

__all__ = [
    "EXIT_CRASH",
    "SimulatedCrash",
    "CrashSpec",
    "CrashPlan",
    "install_crash_plan",
    "active_crash_plan",
    "crashpoint",
]

#: Exit status of a process killed by a (soft) injected crash: the CLI
#: maps an uncaught :class:`SimulatedCrash` onto this code so subprocess
#: harnesses can tell "crashed as planned" from ordinary failures.
EXIT_CRASH = 70

_MODES = ("at", "rate")


class SimulatedCrash(BaseException):
    """The process "died" at a crash point.

    Deliberately *not* an :class:`Exception`: the storage layers catch
    ``Exception`` to degrade gracefully (a cache miss, a skipped record)
    and a simulated crash must not be absorbed by those paths — a real
    ``kill -9`` would not be.  Cleanup handlers that would un-tear the
    injected state (e.g. ``atomic_write`` unlinking its temp file) are
    expected to re-raise this without tidying.
    """

    def __init__(self, point: str, hit: int) -> None:
        self.point = point
        self.hit = hit
        super().__init__(f"simulated crash at {point} (hit {hit})")

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__``, which takes (point, hit) — so a
        # crash raised inside a worker process could not be rebuilt by
        # the parent without this.
        return (SimulatedCrash, (self.point, self.hit))


@dataclass(frozen=True)
class CrashSpec:
    """One parsed clause of a crash plan."""

    mode: str
    target: str
    arg: float

    def matches(self, point: str) -> bool:
        return fnmatchcase(point, self.target)


def _parse_clause(clause: str) -> CrashSpec:
    parts = clause.split(":")
    if len(parts) != 3 or not parts[0] or not parts[1]:
        raise EngineError(
            f"bad crash clause {clause!r}; expected mode:point-glob:arg"
        )
    mode, target, raw = parts
    if mode not in _MODES:
        raise EngineError(
            f"unknown crash mode {mode!r}; known: {', '.join(_MODES)}"
        )
    try:
        arg = float(raw)
    except ValueError:
        raise EngineError(
            f"crash clause {clause!r}: bad numeric arg {raw!r}"
        ) from None
    if not math.isfinite(arg):
        raise EngineError(f"crash clause {clause!r}: arg must be finite")
    if mode == "at" and (arg < 1 or arg != int(arg)):
        raise EngineError(f"crash clause {clause!r}: 'at' needs an int >= 1")
    if mode == "rate" and not 0 <= arg <= 1:
        raise EngineError(f"crash clause {clause!r}: rate must be in [0, 1]")
    return CrashSpec(mode=mode, target=target, arg=arg)


class CrashPlan:
    """A seeded set of crash specs, consulted at every crash point.

    ``hard=True`` dies with ``os._exit(EXIT_CRASH)`` — no unwinding, no
    ``finally`` blocks, the closest in-process model of ``kill -9``.
    The default soft mode raises :class:`SimulatedCrash` so in-process
    tests can observe the debris without losing the interpreter.
    """

    def __init__(
        self,
        specs: list[CrashSpec] | tuple[CrashSpec, ...],
        seed: int = 42,
        hard: bool = False,
    ) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        self.hard = bool(hard)
        self._lock = threading.Lock()
        self._counts: dict[tuple[int, str], int] = {}

    @classmethod
    def parse(cls, text: str, seed: int = 42, hard: bool = False) -> "CrashPlan":
        """Parse a spec string (see module docstring for the grammar)."""
        clauses = [c.strip() for c in str(text).split(",") if c.strip()]
        if not clauses:
            raise EngineError(f"empty crash spec: {text!r}")
        return cls([_parse_clause(c) for c in clauses], seed=seed, hard=hard)

    def describe(self) -> str:
        return ",".join(f"{s.mode}:{s.target}:{s.arg:g}" for s in self.specs)

    def __getstate__(self) -> dict:
        # The lock cannot cross a process boundary; counters ship as a
        # snapshot (each worker counts its own hits from there on).
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _bump(self, index: int, point: str) -> int:
        with self._lock:
            key = (index, point)
            self._counts[key] = self._counts.get(key, 0) + 1
            return self._counts[key]

    def check(self, point: str) -> None:
        """Crash if any clause says this hit of *point* is the one."""
        for index, spec in enumerate(self.specs):
            if not spec.matches(point):
                continue
            count = self._bump(index, point)
            doomed = False
            if spec.mode == "at":
                doomed = count == int(spec.arg)
            elif spec.mode == "rate":
                rng = derive_rng(self.seed, "crash", spec.target, point, count)
                doomed = float(rng.random()) < spec.arg
            if doomed:
                if self.hard:  # pragma: no cover - kills the test process
                    os._exit(EXIT_CRASH)
                raise SimulatedCrash(point, count)


#: The installed plan; module-global so the write sites need no plumbing.
_ACTIVE: CrashPlan | None = None


def install_crash_plan(plan: CrashPlan | None) -> CrashPlan | None:
    """Install (or, with ``None``, clear) the process-wide crash plan.

    Returns the previously installed plan so callers can restore it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def active_crash_plan() -> CrashPlan | None:
    return _ACTIVE


def crashpoint(point: str) -> None:
    """Declare a crash hazard; a no-op unless a plan is installed."""
    plan = _ACTIVE
    if plan is not None:
        plan.check(point)
