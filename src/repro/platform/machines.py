"""Machine models: the simulated hardware substrate.

The paper's experiments run on real testbeds — CloudLab bare-metal nodes,
EC2 instances, a "10 year old Xeon" in the authors' lab.  We cannot ship
that hardware, so this module models machines as parameter vectors (clock,
IPC, core count, cache, memory/storage/network bandwidth and latency, a
virtualization tax) that a roofline-style cost model
(:mod:`repro.platform.perfmodel`) consumes.  The catalog below encodes
generationally plausible spec points so cross-platform *ratios* — the
quantity every use-case figure is about — come out right.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import PlatformError

__all__ = ["MachineSpec", "CATALOG", "get_machine", "register_machine"]


@dataclass(frozen=True)
class MachineSpec:
    """A hardware platform as the performance model sees it.

    Attributes
    ----------
    name:
        Catalog identifier, e.g. ``"cloudlab-c220g1"``.
    year:
        Rough introduction year (documentation only).
    cores:
        Physical cores available to workloads.
    freq_ghz:
        Sustained clock in GHz.
    ipc_int / ipc_fp:
        Sustained instructions-per-cycle for integer and floating-point
        heavy code on one core.
    l2_kib / l3_mib:
        Cache sizes; working sets past L3 pay memory-bandwidth cost.
    mem_bw_gbs:
        Sustained memory bandwidth (all cores), GB/s.
    mem_lat_ns:
        Random-access memory latency, nanoseconds.
    storage_bw_mbs / storage_iops / storage_lat_us:
        Storage characteristics (HDD vs SSD is the interesting contrast).
    net_bw_gbit / net_lat_us:
        NIC bandwidth and one-way small-message latency.
    virt_overhead:
        Fractional slowdown imposed by hardware virtualization (the
        "hypervisor tax"); 0.0 for bare metal and containers.
    smt:
        Hardware threads per core.
    """

    name: str
    year: int
    cores: int
    freq_ghz: float
    ipc_int: float
    ipc_fp: float
    l2_kib: int
    l3_mib: int
    mem_bw_gbs: float
    mem_lat_ns: float
    storage_bw_mbs: float
    storage_iops: float
    storage_lat_us: float
    net_bw_gbit: float
    net_lat_us: float
    virt_overhead: float = 0.0
    smt: int = 1

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.freq_ghz <= 0:
            raise PlatformError(f"invalid machine spec: {self.name}")
        if not 0.0 <= self.virt_overhead < 1.0:
            raise PlatformError(
                f"virt_overhead must be in [0, 1): {self.virt_overhead}"
            )

    # -- derived rates ----------------------------------------------------------
    def core_ops_per_sec(self, fp_fraction: float = 0.0) -> float:
        """Sustained one-core op throughput for a given int/fp mix."""
        ipc = self.ipc_int * (1.0 - fp_fraction) + self.ipc_fp * fp_fraction
        return self.freq_ghz * 1e9 * ipc

    @property
    def mem_bytes_per_sec(self) -> float:
        return self.mem_bw_gbs * 1e9

    @property
    def net_bytes_per_sec(self) -> float:
        return self.net_bw_gbit * 1e9 / 8.0

    @property
    def storage_bytes_per_sec(self) -> float:
        return self.storage_bw_mbs * 1e6

    def virtualized(self, overhead: float = 0.08, tag: str = "vm") -> "MachineSpec":
        """This machine behind a hypervisor paying *overhead* tax."""
        return replace(
            self, name=f"{self.name}-{tag}", virt_overhead=overhead
        )


# ---------------------------------------------------------------------------
# Catalog.  Spec points are generational approximations; what matters for the
# reproduction is the *ratios* between platforms (see DESIGN.md).
# ---------------------------------------------------------------------------

CATALOG: dict[str, MachineSpec] = {}


def register_machine(spec: MachineSpec) -> MachineSpec:
    """Add a machine to the global catalog (test fixtures use this too)."""
    if spec.name in CATALOG:
        raise PlatformError(f"machine already registered: {spec.name}")
    CATALOG[spec.name] = spec
    return spec


def get_machine(name: str) -> MachineSpec:
    """Catalog lookup by name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise PlatformError(
            f"unknown machine {name!r}; known: {sorted(CATALOG)}"
        ) from None


# The authors' "10 year old Xeon": a 2006-era Clovertown-class box with
# slow FSB-attached memory and a single HDD.
register_machine(
    MachineSpec(
        name="lab-xeon-2006",
        year=2006,
        cores=8,
        freq_ghz=2.33,
        ipc_int=1.18,
        ipc_fp=0.85,
        l2_kib=4096,
        l3_mib=0,
        mem_bw_gbs=9.5,
        mem_lat_ns=110.0,
        storage_bw_mbs=80.0,
        storage_iops=150.0,
        storage_lat_us=7000.0,
        net_bw_gbit=1.0,
        net_lat_us=55.0,
    )
)

# CloudLab Wisconsin c220g1: Haswell bare metal with 10 GbE and SSD.
register_machine(
    MachineSpec(
        name="cloudlab-c220g1",
        year=2015,
        cores=16,
        freq_ghz=2.60,
        ipc_int=2.35,
        ipc_fp=2.6,
        l2_kib=4096,
        l3_mib=20,
        mem_bw_gbs=59.0,
        mem_lat_ns=82.0,
        storage_bw_mbs=480.0,
        storage_iops=60000.0,
        storage_lat_us=120.0,
        net_bw_gbit=10.0,
        net_lat_us=25.0,
        smt=2,
    )
)

# CloudLab Utah m400: ARM-ish microserver, lower clock, modest memory.
register_machine(
    MachineSpec(
        name="cloudlab-m400",
        year=2014,
        cores=8,
        freq_ghz=2.40,
        ipc_int=1.7,
        ipc_fp=1.5,
        l2_kib=1024,
        l3_mib=8,
        mem_bw_gbs=34.0,
        mem_lat_ns=95.0,
        storage_bw_mbs=400.0,
        storage_iops=50000.0,
        storage_lat_us=150.0,
        net_bw_gbit=10.0,
        net_lat_us=28.0,
    )
)

# EC2 m4-class: virtualized Haswell, consolidated network.
register_machine(
    MachineSpec(
        name="ec2-m4",
        year=2015,
        cores=8,
        freq_ghz=2.40,
        ipc_int=2.3,
        ipc_fp=2.5,
        l2_kib=2048,
        l3_mib=30,
        mem_bw_gbs=52.0,
        mem_lat_ns=88.0,
        storage_bw_mbs=250.0,
        storage_iops=20000.0,
        storage_lat_us=300.0,
        net_bw_gbit=2.5,
        net_lat_us=60.0,
        virt_overhead=0.08,
        smt=2,
    )
)

# An HPC site node: high-clock cores, fast interconnect (IB-class).
register_machine(
    MachineSpec(
        name="hpc-haswell-ib",
        year=2016,
        cores=24,
        freq_ghz=2.90,
        ipc_int=2.4,
        ipc_fp=2.9,
        l2_kib=6144,
        l3_mib=30,
        mem_bw_gbs=110.0,
        mem_lat_ns=80.0,
        storage_bw_mbs=900.0,
        storage_iops=100000.0,
        storage_lat_us=90.0,
        net_bw_gbit=56.0,
        net_lat_us=1.5,
        smt=2,
    )
)
