"""Run-to-run performance noise models.

Three sources the systems literature cares about, each deterministic
under :class:`~repro.common.rng.SeedSequenceFactory` seeding:

* :class:`JitterNoise` — multiplicative lognormal jitter (thermal,
  scheduling, TLB state); present on every platform.
* :class:`DaemonNoise` — periodic OS/background-daemon interference that
  steals a core for short windows (classic HPC "OS noise").
* :class:`NeighborNoise` — consolidated-infrastructure noisy neighbors
  (EC2-style): occasional heavy slowdown intervals on shared resources.

A :class:`NoiseModel` composes any subset and turns a *nominal* modeled
runtime into a *sampled* runtime for one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import PlatformError

__all__ = ["JitterNoise", "DaemonNoise", "NeighborNoise", "NoiseModel", "QUIET", "noisy_cloud"]


@dataclass(frozen=True)
class JitterNoise:
    """Multiplicative lognormal jitter with coefficient-of-variation *cov*."""

    cov: float = 0.01

    def sample(self, nominal: float, rng: np.random.Generator) -> float:
        if self.cov <= 0:
            return nominal
        sigma = float(np.sqrt(np.log1p(self.cov**2)))
        return nominal * float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))


@dataclass(frozen=True)
class DaemonNoise:
    """Periodic background work stealing *steal_fraction* of time with
    period *period_s* and duty cycle *duty*."""

    steal_fraction: float = 0.02
    period_s: float = 1.0
    duty: float = 0.1

    def sample(self, nominal: float, rng: np.random.Generator) -> float:
        if nominal <= 0:
            return nominal
        # Expected number of interference windows overlapping the run,
        # with phase randomized per run.
        windows = nominal / self.period_s
        hit = float(rng.poisson(max(windows * self.duty, 0.0)))
        return nominal * (1.0 + self.steal_fraction * hit)


@dataclass(frozen=True)
class NeighborNoise:
    """Noisy-neighbor slowdown: with probability *prob* per run, the run is
    stretched by a factor drawn uniformly from [1+lo, 1+hi]."""

    prob: float = 0.25
    lo: float = 0.05
    hi: float = 0.45

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise PlatformError(f"probability out of range: {self.prob}")
        if self.lo > self.hi:
            raise PlatformError("NeighborNoise lo > hi")

    def sample(self, nominal: float, rng: np.random.Generator) -> float:
        if rng.random() < self.prob:
            return nominal * (1.0 + rng.uniform(self.lo, self.hi))
        return nominal


@dataclass(frozen=True)
class NoiseModel:
    """Composition of noise sources applied in sequence."""

    jitter: JitterNoise = field(default_factory=JitterNoise)
    daemon: DaemonNoise | None = None
    neighbor: NeighborNoise | None = None

    def sample(self, nominal: float, rng: np.random.Generator) -> float:
        """One run's observed time given the nominal modeled time."""
        value = self.jitter.sample(nominal, rng)
        if self.daemon is not None:
            value = self.daemon.sample(value, rng)
        if self.neighbor is not None:
            value = self.neighbor.sample(value, rng)
        return value

    def sample_many(
        self, nominal: float, rng: np.random.Generator, runs: int
    ) -> np.ndarray:
        """Vector of *runs* independent observed times."""
        return np.array([self.sample(nominal, rng) for _ in range(runs)])


#: Bare-metal, well-isolated node (CloudLab-style).
QUIET = NoiseModel(jitter=JitterNoise(cov=0.008))


def noisy_cloud(neighbor_prob: float = 0.3) -> NoiseModel:
    """Consolidated-cloud noise (EC2-style): jitter + daemons + neighbors."""
    return NoiseModel(
        jitter=JitterNoise(cov=0.02),
        daemon=DaemonNoise(steal_fraction=0.015, period_s=0.5, duty=0.15),
        neighbor=NeighborNoise(prob=neighbor_prob),
    )
