"""Simulated hardware platforms: machine models, roofline cost model,
noise regimes and provisionable sites (the CloudLab/EC2/lab-testbed
substitution documented in DESIGN.md).
"""

from repro.platform.machines import CATALOG, MachineSpec, get_machine, register_machine
from repro.platform.noise import (
    QUIET,
    DaemonNoise,
    JitterNoise,
    NeighborNoise,
    NoiseModel,
    noisy_cloud,
)
from repro.platform.perfmodel import (
    KernelDemand,
    amdahl_speedup,
    bottleneck,
    execution_time,
)
from repro.platform.sites import Node, NodeAllocation, Site, default_sites

__all__ = [
    "MachineSpec",
    "CATALOG",
    "get_machine",
    "register_machine",
    "KernelDemand",
    "execution_time",
    "bottleneck",
    "amdahl_speedup",
    "NoiseModel",
    "JitterNoise",
    "DaemonNoise",
    "NeighborNoise",
    "QUIET",
    "noisy_cloud",
    "Node",
    "NodeAllocation",
    "Site",
    "default_sites",
]
