"""Bare-metal-as-a-service sites: the CloudLab/PRObE/EC2 analog.

A :class:`Site` owns an inventory of machines of one catalog type plus a
site-wide noise regime; :meth:`Site.allocate` hands out a
:class:`NodeAllocation` of concrete :class:`Node` objects.  Each node
carries a small persistent per-node speed multiplier (the "silicon
lottery" plus firmware/BIOS drift) so that two allocations of the same
type are *similar but not identical* — exactly the variability the Popper
paper argues must be fingerprinted before validating results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import AllocationError, PlatformError
from repro.common.rng import SeedSequenceFactory
from repro.platform.machines import MachineSpec, get_machine
from repro.platform.noise import QUIET, NoiseModel, noisy_cloud, DaemonNoise, JitterNoise

__all__ = ["Node", "NodeAllocation", "Site", "default_sites"]


@dataclass(frozen=True)
class Node:
    """One allocated machine instance."""

    hostname: str
    spec: MachineSpec
    speed_factor: float
    noise: NoiseModel
    site: str

    def nominal_time(self, modeled_seconds: float) -> float:
        """Apply this node's persistent speed factor to a modeled time."""
        return modeled_seconds / self.speed_factor

    def observed_time(
        self, modeled_seconds: float, rng: np.random.Generator
    ) -> float:
        """One observed run: persistent factor plus sampled noise."""
        return self.noise.sample(self.nominal_time(modeled_seconds), rng)


@dataclass
class NodeAllocation:
    """A held set of nodes, released back to the site when done."""

    site: "Site"
    nodes: list[Node]
    allocation_id: int

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, index: int) -> Node:
        return self.nodes[index]

    def release(self) -> None:
        """Return the nodes to the site's free pool."""
        self.site._release(self)

    def __enter__(self) -> "NodeAllocation":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class Site:
    """A provisionable pool of identical-type machines.

    Parameters
    ----------
    name:
        Site identifier (``"cloudlab-wisc"``).
    machine:
        Catalog machine name or spec for the node type.
    capacity:
        Number of machines in the pool.
    noise:
        Site noise regime applied to every node.
    seeds:
        Seed factory; node speed factors derive from it so the same seed
        always produces the same "physical" machines.
    node_cov:
        Coefficient of variation of the persistent per-node speed factor.
    """

    def __init__(
        self,
        name: str,
        machine: str | MachineSpec,
        capacity: int,
        noise: NoiseModel = QUIET,
        seeds: SeedSequenceFactory | None = None,
        node_cov: float = 0.015,
    ) -> None:
        if capacity <= 0:
            raise PlatformError(f"site {name!r} needs positive capacity")
        self.name = name
        self.spec = get_machine(machine) if isinstance(machine, str) else machine
        self.capacity = capacity
        self.noise = noise
        seeds = seeds or SeedSequenceFactory(0)
        rng = seeds.rng("site", name, "speed-factors")
        factors = 1.0 + node_cov * rng.standard_normal(capacity)
        self._nodes = [
            Node(
                hostname=f"{name}-n{i:03d}",
                spec=self.spec,
                speed_factor=float(max(factor, 0.8)),
                noise=noise,
                site=name,
            )
            for i, factor in enumerate(factors)
        ]
        self._free = list(range(capacity))
        self._held: dict[int, list[int]] = {}
        self._next_allocation = 0

    # -- provisioning ------------------------------------------------------------
    @property
    def available(self) -> int:
        """Machines currently free."""
        return len(self._free)

    def allocate(self, count: int) -> NodeAllocation:
        """Provision *count* nodes (lowest-numbered free nodes first)."""
        if count <= 0:
            raise AllocationError(f"cannot allocate {count} nodes")
        if count > len(self._free):
            raise AllocationError(
                f"site {self.name!r}: requested {count} nodes, "
                f"{len(self._free)} available"
            )
        picked = sorted(self._free)[:count]
        self._free = [i for i in self._free if i not in picked]
        allocation_id = self._next_allocation
        self._next_allocation += 1
        self._held[allocation_id] = picked
        return NodeAllocation(
            site=self,
            nodes=[self._nodes[i] for i in picked],
            allocation_id=allocation_id,
        )

    def _release(self, allocation: NodeAllocation) -> None:
        held = self._held.pop(allocation.allocation_id, None)
        if held is None:
            raise AllocationError("allocation already released")
        self._free.extend(held)

    def node(self, index: int) -> Node:
        """Direct access to the site's *index*-th machine (for baselining)."""
        return self._nodes[index]


def default_sites(seed: int = 42) -> dict[str, Site]:
    """The testbeds the paper's use cases run on, as simulated sites."""
    seeds = SeedSequenceFactory(seed)
    return {
        "lab": Site("lab", "lab-xeon-2006", capacity=2, noise=QUIET, seeds=seeds),
        "cloudlab-wisc": Site(
            "cloudlab-wisc", "cloudlab-c220g1", capacity=32, noise=QUIET, seeds=seeds
        ),
        "cloudlab-utah": Site(
            "cloudlab-utah", "cloudlab-m400", capacity=32, noise=QUIET, seeds=seeds
        ),
        "ec2": Site(
            "ec2", "ec2-m4", capacity=64, noise=noisy_cloud(), seeds=seeds
        ),
        "hpc": Site(
            "hpc",
            "hpc-haswell-ib",
            capacity=128,
            noise=NoiseModel(
                jitter=JitterNoise(cov=0.006),
                daemon=DaemonNoise(steal_fraction=0.01, period_s=0.25, duty=0.08),
            ),
            seeds=seeds,
        ),
    }
