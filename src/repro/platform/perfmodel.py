"""Roofline-style execution-time model.

A workload phase is summarized as a :class:`KernelDemand` — how many
integer/floating-point operations it retires, how many bytes it streams
through memory, how much storage and network traffic it causes, and how
large its working set is.  A machine executes the phase at the rate of its
binding bottleneck; overlapping resources follow the roofline convention
(``time = max(compute, memory, storage, network)``) with a small serial
overhead term, which captures exactly the cross-platform effects the
paper's use cases measure (CPU-bound vs memory-bound speedup bands,
HDD-vs-network bottleneck inversion, the hypervisor tax).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import PlatformError
from repro.platform.machines import MachineSpec

__all__ = ["KernelDemand", "execution_time", "bottleneck", "amdahl_speedup"]


@dataclass(frozen=True)
class KernelDemand:
    """Resource demand of one workload phase.

    Attributes
    ----------
    ops:
        Retired core operations (integer + fp combined).
    fp_fraction:
        Fraction of *ops* that is floating point (selects the IPC used).
    mem_bytes:
        Bytes moved between the core and DRAM (misses past LLC).
    working_set_kib:
        Resident working set; sets how cache-friendly the phase is.
    storage_read_bytes / storage_write_bytes:
        File-system traffic.
    storage_ops:
        Distinct storage operations (seeks for HDDs, IOPS for SSDs).
    net_bytes:
        Bytes crossing the NIC.
    net_msgs:
        Message count (pays per-message latency).
    parallel_fraction:
        Amdahl parallel fraction when the phase runs on many cores.
    """

    ops: float = 0.0
    fp_fraction: float = 0.0
    mem_bytes: float = 0.0
    working_set_kib: float = 64.0
    storage_read_bytes: float = 0.0
    storage_write_bytes: float = 0.0
    storage_ops: float = 0.0
    net_bytes: float = 0.0
    net_msgs: float = 0.0
    parallel_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fp_fraction <= 1.0:
            raise PlatformError(f"fp_fraction out of range: {self.fp_fraction}")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise PlatformError(
                f"parallel_fraction out of range: {self.parallel_fraction}"
            )

    def scaled(self, factor: float) -> "KernelDemand":
        """The same phase with all volumes scaled by *factor*."""
        return replace(
            self,
            ops=self.ops * factor,
            mem_bytes=self.mem_bytes * factor,
            storage_read_bytes=self.storage_read_bytes * factor,
            storage_write_bytes=self.storage_write_bytes * factor,
            storage_ops=self.storage_ops * factor,
            net_bytes=self.net_bytes * factor,
            net_msgs=self.net_msgs * factor,
        )

    def plus(self, other: "KernelDemand") -> "KernelDemand":
        """Sequential composition of two phases (volumes add)."""
        return KernelDemand(
            ops=self.ops + other.ops,
            fp_fraction=(
                (self.ops * self.fp_fraction + other.ops * other.fp_fraction)
                / (self.ops + other.ops)
                if (self.ops + other.ops) > 0
                else 0.0
            ),
            mem_bytes=self.mem_bytes + other.mem_bytes,
            working_set_kib=max(self.working_set_kib, other.working_set_kib),
            storage_read_bytes=self.storage_read_bytes + other.storage_read_bytes,
            storage_write_bytes=self.storage_write_bytes + other.storage_write_bytes,
            storage_ops=self.storage_ops + other.storage_ops,
            net_bytes=self.net_bytes + other.net_bytes,
            net_msgs=self.net_msgs + other.net_msgs,
            parallel_fraction=min(self.parallel_fraction, other.parallel_fraction),
        )


def _amdahl(threads: int, parallel_fraction: float) -> float:
    """Amdahl speedup of *threads* cores at the given parallel fraction."""
    if threads <= 1:
        return 1.0
    serial = 1.0 - parallel_fraction
    return 1.0 / (serial + parallel_fraction / threads)


def amdahl_speedup(threads: int, parallel_fraction: float) -> float:
    """Public alias for the Amdahl model (used in validation assertions)."""
    return _amdahl(threads, parallel_fraction)


def _cache_penalty(demand: KernelDemand, machine: MachineSpec) -> float:
    """Extra memory traffic multiplier when the working set spills caches."""
    ws_kib = demand.working_set_kib
    l2 = machine.l2_kib
    l3 = machine.l3_mib * 1024
    if ws_kib <= l2:
        return 0.15  # mostly cache-resident; trickle of traffic
    if l3 and ws_kib <= l3:
        return 0.55
    return 1.0


def _component_times(
    demand: KernelDemand, machine: MachineSpec, threads: int
) -> dict[str, float]:
    threads = max(1, min(threads, machine.cores))
    compute_rate = machine.core_ops_per_sec(demand.fp_fraction)
    compute = demand.ops / compute_rate / _amdahl(threads, demand.parallel_fraction)

    mem_traffic = demand.mem_bytes * _cache_penalty(demand, machine)
    memory = mem_traffic / machine.mem_bytes_per_sec

    storage_stream = (
        demand.storage_read_bytes + demand.storage_write_bytes
    ) / machine.storage_bytes_per_sec
    storage_iops_time = (
        demand.storage_ops / machine.storage_iops if demand.storage_ops else 0.0
    )
    storage = storage_stream + storage_iops_time

    net_stream = demand.net_bytes / machine.net_bytes_per_sec
    net_lat = demand.net_msgs * machine.net_lat_us * 1e-6
    network = net_stream + net_lat

    return {
        "compute": compute,
        "memory": memory,
        "storage": storage,
        "network": network,
    }


def execution_time(
    demand: KernelDemand,
    machine: MachineSpec,
    threads: int = 1,
    overlap: float = 0.85,
) -> float:
    """Seconds to execute *demand* on *machine* with *threads* workers.

    ``overlap`` sets how much the non-binding components hide behind the
    bottleneck: 1.0 is a pure roofline (perfect overlap), 0.0 is fully
    serial resource use.  The default 0.85 matches how well-tuned systems
    software overlaps compute with I/O.
    """
    if not 0.0 <= overlap <= 1.0:
        raise PlatformError(f"overlap out of range: {overlap}")
    parts = _component_times(demand, machine, threads)
    dominant = max(parts.values())
    total = sum(parts.values())
    time = dominant + (1.0 - overlap) * (total - dominant)
    return time * (1.0 + machine.virt_overhead)


def bottleneck(
    demand: KernelDemand, machine: MachineSpec, threads: int = 1
) -> str:
    """Name of the binding resource (``compute|memory|storage|network``)."""
    parts = _component_times(demand, machine, threads)
    return max(parts, key=parts.__getitem__)
