"""repro — a from-scratch reproduction of *The Popper Convention: Making
Reproducible Systems Evaluation Practical* (Jimenez et al.).

The package builds the Popper toolchain itself (convention engine, CLI,
Aver validation language, CI, templates) plus every DevOps substrate it
composes (version control, containers, orchestration, dataset
management, monitoring, baseline fingerprinting) and the systems under
study in the paper's use cases (GassyFS, Torpor, the LULESH/mpiP
experiment, the Big-Weather-Web analysis) — all runnable on a laptop
with no network, no Docker daemon and no cluster.

Quickstart::

    from repro.core import PopperRepository, ExperimentPipeline

    repo = PopperRepository.init("/tmp/mypaper-repo")
    repo.add_experiment("gassyfs", "myexp")
    result = ExperimentPipeline(repo, "myexp").run()
    assert result.validated

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
