"""The Popper convention engine — the paper's primary contribution.

Repository layout and config (Listing 1), the template registry and CLI
(Listing 2), the experiment pipeline with Aver validation (Listing 3),
and the convention-compliance checker.
"""

from repro.core.check import ComplianceReport, Finding, check_repository
from repro.core.config import CONFIG_NAME, PopperConfig
from repro.core.pipeline import ExperimentPipeline, ExperimentResult
from repro.core.repo import PAPER_TEMPLATES, PopperRepository
from repro.core.runners import (
    EXPERIMENT_RUNNERS,
    register_runner,
    run_experiment_runner,
)
from repro.core.templates import (
    TEMPLATES,
    ExperimentTemplate,
    get_template,
    list_templates,
)

__all__ = [
    "PopperRepository",
    "PAPER_TEMPLATES",
    "PopperConfig",
    "CONFIG_NAME",
    "ExperimentPipeline",
    "ExperimentResult",
    "ComplianceReport",
    "Finding",
    "check_repository",
    "TEMPLATES",
    "ExperimentTemplate",
    "get_template",
    "list_templates",
    "EXPERIMENT_RUNNERS",
    "register_runner",
    "run_experiment_runner",
]
