"""Repository bundles: single-file artifact-evaluation exports.

The paper notes that "a Popper repository could even be used instead of
an 'Artifact Evaluation' appendix".  ``popper bundle`` freezes the
repository at a commit into one integrity-hashed JSON artifact (tree +
manifest + metadata); ``unbundle`` recreates a working Popper repository
from it — what a conference AE committee would download and run.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

from repro.common.errors import PopperError
from repro.common.hashing import sha256_text
from repro.core.repo import PopperRepository
from repro.vcs.repository import Repository

__all__ = ["create_bundle", "load_bundle", "unbundle"]

_FORMAT = "popper-bundle-v1"


def create_bundle(
    repo: PopperRepository, path: str | Path, ref: str = "HEAD"
) -> dict:
    """Write a bundle of *repo* at *ref*; returns the manifest."""
    commit_oid = repo.vcs.resolve(ref)
    commit = repo.vcs.store.get_commit(commit_oid)
    files: dict[str, str] = {}
    total = 0
    for rel, blob_oid in repo.vcs.store.walk_tree(commit.tree):
        data = repo.vcs.store.get_blob(blob_oid).data
        files[rel] = base64.b64encode(data).decode("ascii")
        total += len(data)
    manifest = {
        "experiments": dict(repo.config.experiments),
        "paper_template": repo.config.paper_template,
        "files": len(files),
        "bytes": total,
        "commit": commit_oid,
        "history": [entry.subject for entry in repo.vcs.log(ref)],
    }
    body = json.dumps(
        {"format": _FORMAT, "manifest": manifest, "tree": files},
        sort_keys=True,
    )
    document = json.dumps(
        {
            "format": _FORMAT,
            "digest": sha256_text(body),
            "body": json.loads(body),
        },
        indent=1,
        sort_keys=True,
    )
    Path(path).write_text(document, encoding="utf-8")
    return manifest


def load_bundle(path: str | Path) -> dict:
    """Parse and integrity-check a bundle; returns its body."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise PopperError(f"cannot read bundle: {exc}") from exc
    if doc.get("format") != _FORMAT:
        raise PopperError(f"not a popper bundle: {path}")
    body = doc.get("body") or {}
    expected = doc.get("digest", "")
    actual = sha256_text(json.dumps(body, sort_keys=True))
    if actual != expected:
        raise PopperError("bundle digest mismatch (corrupted or tampered)")
    return body


def unbundle(path: str | Path, target: str | Path) -> PopperRepository:
    """Recreate a working Popper repository from a bundle."""
    body = load_bundle(path)
    target = Path(target)
    if target.exists() and any(target.iterdir()):
        raise PopperError(f"unbundle target not empty: {target}")
    target.mkdir(parents=True, exist_ok=True)
    for rel, encoded in body["tree"].items():
        file_path = target / rel
        file_path.parent.mkdir(parents=True, exist_ok=True)
        file_path.write_bytes(base64.b64decode(encoded))
    repo = Repository.init(target)
    repo.add_all()
    repo.commit(
        f"unbundled popper artifact (source commit "
        f"{body['manifest']['commit'][:12]})"
    )
    return PopperRepository.open(target)
