"""Post-processing stage: the ``process-result.py`` of Listing 1.

An experiment may ship a ``process-result.py`` defining::

    def process(results):          # MetricsTable in
        ...
        return table_or_dict       # MetricsTable, or {figure-name: table}

The pipeline executes it after the run and writes each returned table as
``figure.csv`` (or ``<name>.csv``) next to ``results.csv`` — the data
behind the ``figure.png`` of the paper's repository layout.  Scripts run
in-process (a Popper repository's code is exactly as trusted as the rest
of the experiment it describes).
"""

from __future__ import annotations

from pathlib import Path

from repro.common.errors import PopperError
from repro.common.tables import MetricsTable

__all__ = ["run_postprocess", "PROCESS_SCRIPT"]

PROCESS_SCRIPT = "process-result.py"


def run_postprocess(directory: Path, results: MetricsTable) -> dict[str, Path]:
    """Execute the experiment's processing script, if present.

    Returns a mapping of figure name → written CSV path (empty when the
    experiment ships no script).
    """
    script = directory / PROCESS_SCRIPT
    if not script.is_file():
        return {}
    namespace: dict = {
        "__name__": "__popper_process__",
        "__file__": str(script),
        "MetricsTable": MetricsTable,
    }
    source = script.read_text(encoding="utf-8")
    try:
        exec(compile(source, str(script), "exec"), namespace)
    except Exception as exc:
        raise PopperError(f"{PROCESS_SCRIPT} failed to load: {exc}") from exc
    process = namespace.get("process")
    if not callable(process):
        raise PopperError(f"{PROCESS_SCRIPT} must define process(results)")
    try:
        produced = process(results)
    except Exception as exc:
        raise PopperError(f"{PROCESS_SCRIPT} process() raised: {exc}") from exc

    figures: dict[str, MetricsTable]
    if isinstance(produced, MetricsTable):
        figures = {"figure": produced}
    elif isinstance(produced, dict) and all(
        isinstance(v, MetricsTable) for v in produced.values()
    ):
        figures = produced
    else:
        raise PopperError(
            f"{PROCESS_SCRIPT} must return a MetricsTable or a dict of them"
        )

    written: dict[str, Path] = {}
    for name, table in figures.items():
        if "/" in name or not name:
            raise PopperError(f"bad figure name from {PROCESS_SCRIPT}: {name!r}")
        path = directory / f"{name}.csv"
        table.save_csv(path)
        written[name] = path
    return written
