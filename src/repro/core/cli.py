"""The ``popper`` command-line interface (Listing 2 of the paper).

::

    $ popper init
    -- Initialized Popper repo

    $ popper experiment list
    -- available templates ---------------
    ceph-rados        proteustm  mpi-comm-variability
    cloverleaf        gassyfs    zlog
    spark-standalone  torpor     malacology

    $ popper add torpor myexp

Additional verbs: ``check`` (compliance), ``run`` (pipeline),
``trace`` / ``log`` (render or dump a run's journal), ``cache
stats|verify|gc`` (the artifact store), ``doctor`` (crash-debris scan
and repair), ``paper list|add|build``, ``status``.

Exit codes beyond the usual 0/1/2: an injected crash exits 70
(:data:`~repro.common.crash.EXIT_CRASH`), SIGINT/SIGTERM drain the
in-flight work and exit 130/143 (``128 + signum``) — both states are
resumable with ``popper run --resume``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.common.errors import PopperError, ReproError
from repro.core.check import check_repository
from repro.core.pipeline import ExperimentPipeline
from repro.core.repo import PAPER_TEMPLATES, PopperRepository
from repro.core.templates import list_templates

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="popper",
        description="Bootstrap and drive Popper-convention repositories.",
    )
    parser.add_argument(
        "--repo", "-C", default=".", help="repository root (default: cwd)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("init", help="initialize a Popper repository")

    experiment = sub.add_parser("experiment", help="experiment template commands")
    experiment_sub = experiment.add_subparsers(dest="subcommand", required=True)
    experiment_sub.add_parser("list", help="list available templates")

    add = sub.add_parser("add", help="instantiate a template as an experiment")
    add.add_argument("template")
    add.add_argument("name")

    rm = sub.add_parser("rm", help="remove an experiment")
    rm.add_argument("name")

    sub.add_parser("check", help="check convention compliance")

    run = sub.add_parser("run", help="run experiment pipeline(s)")
    run.add_argument("names", nargs="*", help="experiments to run")
    run.add_argument("--all", action="store_true", help="run every experiment")
    run.add_argument(
        "--strict", action="store_true", help="fail on validation failures"
    )
    run.add_argument(
        "--validate-only",
        action="store_true",
        help="re-validate stored results.csv without re-running",
    )
    run.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N independent experiments concurrently (default 1)",
    )
    run.add_argument(
        "--backend",
        choices=("auto", "serial", "threaded", "process"),
        default="auto",
        help="execution backend: serial, threaded (overlaps I/O), or "
        "process (worker processes, true multi-core; payloads must be "
        "pickle-safe).  auto = threaded when -j > 1 (default)",
    )
    run.add_argument(
        "--process-smoke",
        action="store_true",
        help="shorthand for --backend process -j 2 (single-token "
        "process-backend job for CI env matrices)",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already completed by an interrupted sweep",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry transient stage failures up to N times (default 0)",
    )
    run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-stage deadline in seconds (default: none)",
    )
    run.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault plan, e.g. 'flaky:run:2,delay:setup:0.1' "
        "(modes: flaky/fail/delay/rate; see docs/robustness.md)",
    )
    run.add_argument(
        "--fault-seed",
        type=int,
        default=42,
        metavar="SEED",
        help="seed for injected-fault determinism (default 42; "
        "superseded by --seed)",
    )
    run.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="one seed for every injection surface (fault plan, crash "
        "plan, fuzz randomizer); overrides --fault-seed and the "
        "POPPER_SEED environment variable, and is recorded in the "
        "run_start journal header",
    )
    run.add_argument(
        "--chaos-smoke",
        action="store_true",
        help="shorthand for --retries 3 --inject-faults flaky:run:2 "
        "(single-token chaos job for CI env matrices)",
    )
    run.add_argument(
        "--inject-crash",
        default=None,
        metavar="SPEC",
        help="deterministic crash plan, e.g. 'at:cas.ingest.publish:1' "
        "(modes: at/rate; crash points: see docs/robustness.md)",
    )
    run.add_argument(
        "--crash-hard",
        action="store_true",
        help="injected crashes os._exit(70) instead of raising "
        "(the honest kill -9; only with --inject-crash)",
    )
    run.add_argument(
        "--crash-smoke",
        action="store_true",
        help="single-token CI job: seeded crash-injection run, popper "
        "doctor repair, then a clean --resume re-run",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the artifact store: execute every stage even when "
        "a memoized result exists",
    )
    run.add_argument(
        "--cache-check",
        action="store_true",
        help="run the sweep twice against one artifact store and fail "
        "unless the warm pass is >=90%% cache hits with identical "
        "results (single-token warm-cache job for CI env matrices)",
    )
    run.add_argument(
        "--perf-smoke",
        action="store_true",
        help="run the degradation-detector suite over a synthetic "
        "two-commit profile history before the sweep and fail unless "
        "the injected slowdown is caught (single-token perf job for "
        "CI env matrices)",
    )
    run.add_argument(
        "--fuzz-smoke",
        action="store_true",
        help="run a seeded end-to-end scenario-fuzz check in a scratch "
        "repository before the sweep: at least one variant must be "
        "generated, executed and scored, and a planted known-bad "
        "variant must be caught by the oracle and minimized to a "
        "runnable reproducer (single-token fuzz job for CI env "
        "matrices)",
    )
    run.add_argument(
        "--store-smoke",
        action="store_true",
        help="run a scratch-pool packed-store check before the sweep: "
        "ingest, repack, byte-identical reads, then an injected "
        "pack-publish crash repaired by popper doctor (single-token "
        "storage job for CI env matrices)",
    )
    run.add_argument(
        "--serve-smoke",
        action="store_true",
        help="run a scratch-daemon service check before the sweep: "
        "bring up popper serve, reject adversarial requests cleanly, "
        "run a job cold then cache-served, kill -9 a worker mid-job "
        "and require recovery, then drain and doctor clean "
        "(single-token service job for CI env matrices)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the job-queue daemon: a local HTTP API accepting "
        "experiment runs into a crash-tolerant persistent queue "
        "(.pvcs/queue/) executed by supervised worker processes",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes executing queued jobs (default 2)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        metavar="M",
        help="admission bound on queued+leased jobs; submissions over "
        "it are shed with HTTP 429 while cache-servable ones still "
        "succeed (default 16)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1 — local only)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8999,
        metavar="P",
        help="port to bind; 0 picks a free one (default 8999)",
    )
    serve.add_argument(
        "--lease",
        type=float,
        default=15.0,
        metavar="S",
        help="job lease seconds before an unheartbeated job is "
        "requeued (default 15)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided scenario fuzzing: mutate experiment "
        "inputs, execute variants in sandbox repos, keep and minimize "
        "the interesting ones under .pvcs/fuzz/",
    )
    fuzz.add_argument(
        "names", nargs="*", help="experiments to fuzz (default: all)"
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="campaign seed (default: POPPER_SEED env var, then 42); "
        "the same seed and --iterations reproduce the corpus, the "
        "coverage map and every minimized reproducer byte for byte",
    )
    fuzz.add_argument(
        "--iterations",
        "-n",
        type=int,
        default=16,
        metavar="K",
        help="variants to generate (default 16)",
    )
    fuzz.add_argument(
        "--max-stack",
        type=int,
        default=3,
        metavar="M",
        help="maximum mutations stacked per variant (default 3)",
    )
    fuzz.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip delta-debugging failing variants into minimal "
        "reproducers",
    )

    perf = sub.add_parser(
        "perf",
        help="compare two commits' performance profiles with the "
        "degradation-detector suite",
    )
    perf.add_argument("rev1", help="baseline commit/branch/tag")
    perf.add_argument(
        "rev2",
        nargs="?",
        default="HEAD",
        help="candidate commit/branch/tag (default HEAD)",
    )
    perf.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        metavar="R",
        help="relative degradation threshold (default 0.10 = 10%%)",
    )
    perf.add_argument(
        "--all-verdicts",
        action="store_true",
        help="print every detector verdict, not only suspicious ones",
    )

    trace = sub.add_parser(
        "trace", help="render an experiment's run journal (timings, critical path)"
    )
    trace.add_argument(
        "name", nargs="?", help="experiment whose last run to inspect"
    )
    trace.add_argument(
        "--fuzz",
        action="store_true",
        help="summarize the last fuzz campaign's journal "
        "(.pvcs/fuzz/journal.jsonl) instead of an experiment run",
    )
    trace.add_argument(
        "--serve",
        action="store_true",
        help="summarize the serve queue's journal "
        "(.pvcs/queue/journal.jsonl) instead of an experiment run",
    )

    log = sub.add_parser(
        "log", help="print an experiment's run journal events"
    )
    log.add_argument("name", help="experiment whose last run to inspect")
    log.add_argument(
        "--raw", action="store_true", help="print raw JSONL instead of one-liners"
    )

    paper = sub.add_parser("paper", help="manuscript commands")
    paper_sub = paper.add_subparsers(dest="subcommand", required=True)
    paper_sub.add_parser("list", help="list manuscript templates")
    paper_add = paper_sub.add_parser("add", help="add a manuscript template")
    paper_add.add_argument("template", nargs="?", default="generic-article")
    paper_sub.add_parser("build", help="build the manuscript")

    ci = sub.add_parser("ci", help="run the repository's CI build locally")
    ci.add_argument("--ref", default="HEAD", help="commit/branch/tag to build")
    ci.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N matrix jobs concurrently (default 1)",
    )
    ci.add_argument(
        "--backend",
        choices=("auto", "serial", "threaded", "process"),
        default="auto",
        help="scheduler backend for the matrix jobs (the CI executor "
        "runs popper in-process, so process demotes itself to threaded "
        "for the job graph; experiments inside a job may still use it)",
    )
    ci.add_argument(
        "--resume",
        action="store_true",
        help="skip matrix jobs already green for the same commit and env",
    )
    ci.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="export POPPER_SEED to every matrix job so in-process "
        "popper runs (fault/crash plans, fuzz smoke) share one seed",
    )

    cache = sub.add_parser(
        "cache", help="administer the content-addressed artifact store"
    )
    cache_sub = cache.add_subparsers(dest="subcommand", required=True)
    cache_sub.add_parser(
        "stats", help="object, record and dedup accounting for the pools"
    )
    cache_sub.add_parser(
        "verify",
        help="fsck every pool: quarantine corrupt objects, report referrers",
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="drop old artifact records and sweep unreferenced objects"
    )
    cache_gc.add_argument(
        "--keep-last",
        type=int,
        default=1,
        metavar="N",
        help="records to keep per task, newest first (default 1)",
    )
    cache_repack = cache_sub.add_parser(
        "repack",
        help="fold loose objects (and old packs) into one fresh packfile "
        "per pool; reads stay byte-identical, fsyncs drop to one per pack",
    )
    cache_repack.add_argument(
        "--min-objects",
        type=int,
        default=2,
        metavar="N",
        help="skip pools holding fewer than N objects (default 2)",
    )
    cache_repack.add_argument(
        "--no-delta",
        action="store_true",
        help="store whole (zlib) payloads only; skip affix-delta encoding",
    )

    doctor = sub.add_parser(
        "doctor",
        help="scan .pvcs/ for crash debris (stale locks, orphan temps, "
        "torn journals, partial index records) and repair it",
    )
    doctor.add_argument(
        "--dry-run",
        action="store_true",
        help="report findings without repairing anything",
    )
    doctor.add_argument(
        "--tmp-age",
        type=float,
        default=60.0,
        metavar="S",
        help="minimum age before an orphan temp file is swept "
        "(default 60s; younger temps may belong to a live writer)",
    )

    bundle = sub.add_parser(
        "bundle", help="export the repository as a single artifact file"
    )
    bundle.add_argument("output", help="bundle file to write")
    bundle.add_argument("--ref", default="HEAD")

    unbundle = sub.add_parser(
        "unbundle", help="recreate a repository from a bundle"
    )
    unbundle.add_argument("bundle_file")
    unbundle.add_argument("target")

    sub.add_parser(
        "notebooks",
        help="re-run every analysis notebook on stored results (Binder-style)",
    )

    sub.add_parser("status", help="show repository status")
    return parser


def _cmd_init(args) -> int:
    PopperRepository.init(args.repo)
    print("-- Initialized Popper repo")
    return 0


def _cmd_experiment_list(args) -> int:
    print("-- available templates ---------------")
    templates = list_templates()
    names = [t.name for t in templates]
    # three-column layout like the paper's listing
    rows = (len(names) + 2) // 3
    width = max(len(n) for n in names) + 2
    for row in range(rows):
        chunk = names[row::rows]
        print("".join(name.ljust(width) for name in chunk).rstrip())
    return 0


def _cmd_add(args) -> int:
    repo = PopperRepository.open(args.repo)
    target = repo.add_experiment(args.template, args.name)
    print(f"-- Added experiment {args.name} from template {args.template}")
    print(f"   {target}")
    return 0


def _cmd_rm(args) -> int:
    repo = PopperRepository.open(args.repo)
    repo.remove_experiment(args.name)
    print(f"-- Removed experiment {args.name}")
    return 0


def _cmd_check(args) -> int:
    repo = PopperRepository.open(args.repo)
    report = check_repository(repo)
    print(report.describe(), end="")
    return 0 if report.compliant else 1


def _scheduler_for(backend: str, jobs: int):
    """Resolve ``--backend``/``-j`` into a scheduler; print any warning.

    Returns ``(scheduler, effective_workers)``.  Asking for more workers
    than CPU cores warns (and, for the process backend, clamps) instead
    of silently oversubscribing — see
    :func:`repro.engine.resolve_backend` for the policy.
    """
    from repro.engine import resolve_backend

    if jobs < 1:
        raise PopperError(f"--jobs must be >= 1, got {jobs}")
    scheduler, workers, warning = resolve_backend(backend, jobs)
    if warning:
        print(f"-- {warning}", file=sys.stderr)
    return scheduler, workers


def _effective_seed(args) -> int:
    """One seed for every injection surface: ``--seed`` wins, then the
    ``POPPER_SEED`` environment variable (how ``popper ci --seed``
    reaches in-process matrix jobs), then ``--fault-seed`` (default 42)."""
    explicit = getattr(args, "seed", None)
    if explicit is not None:
        return int(explicit)
    env = os.environ.get("POPPER_SEED")
    if env is not None:
        try:
            return int(env)
        except ValueError:
            raise PopperError(
                f"POPPER_SEED must be an integer, got {env!r}"
            ) from None
    return int(getattr(args, "fault_seed", 42))


def _cmd_run(args) -> int:
    """Run experiments as independent nodes of a task graph.

    With ``-j N`` the engine runs up to N experiments concurrently; each
    one journals into its own ``journal.jsonl``.  A failing experiment
    (``PopperError``) is reported as ERRORED and the rest of the sweep
    keeps running; exit status aggregates across the sweep (0 all ok,
    1 validation failures, 2 errored experiments).

    Resilience: ``--retries``/``--task-timeout`` set stage-level retry
    and deadline policies, ``--inject-faults`` applies a deterministic
    chaos plan, and ``--resume`` restores experiments a previous
    (interrupted) sweep already completed from ``.pvcs/sweep-state.jsonl``.
    """
    from repro.common.crash import (
        EXIT_CRASH,
        CrashPlan,
        SimulatedCrash,
        install_crash_plan,
    )
    from repro.common.errors import ValidationFailure
    from repro.common.hashing import sha256_text
    from repro.core.sweep import SweepExperimentJob
    from repro.engine import (
        CancelToken,
        FaultPlan,
        GracefulShutdown,
        MemoizedPayload,
        RunCancelled,
        RunOptions,
        RunStateStore,
        TaskGraph,
        TaskState,
        task_fingerprint,
    )

    repo = PopperRepository.open(args.repo)

    if args.perf_smoke:
        # The synthetic detector check runs first (and even with no
        # experiments registered): it validates the degradation
        # subsystem itself, independent of this repository's content.
        from repro.check.smoke import perf_smoke
        from repro.common.errors import CheckError

        try:
            print("-- " + perf_smoke())
        except CheckError as exc:
            print(f"-- perf smoke FAILED: {exc}")
            return 1

    seed = _effective_seed(args)
    if args.fuzz_smoke:
        # Like --perf-smoke: a scratch-repository self-check that runs
        # before (and even without) this repository's experiments.  It
        # proves the fuzz loop generates, executes, scores, catches a
        # planted known-bad variant and minimizes it to a reproducer.
        from repro.common.errors import FuzzError
        from repro.fuzz import fuzz_smoke

        try:
            print("-- " + fuzz_smoke())
        except FuzzError as exc:
            print(f"-- fuzz smoke FAILED: {exc}")
            return 1

    if args.store_smoke:
        # A scratch-pool self-check of the packed store: ingest, repack,
        # byte-identical reads, then an injected pack-publish crash that
        # popper doctor must repair.  Runs before (and even without)
        # this repository's experiments.
        from repro.common.errors import StoreError
        from repro.store.smoke import store_smoke

        try:
            print("-- " + store_smoke())
        except StoreError as exc:
            print(f"-- store smoke FAILED: {exc}")
            return 1

    if args.serve_smoke:
        # A scratch-daemon self-check of the service core: adversarial
        # requests rejected cleanly, cold + cache-served runs, a worker
        # killed -9 mid-job recovered, drain + doctor clean.  Runs
        # before (and even without) this repository's experiments.
        from repro.common.errors import ServeError
        from repro.serve import serve_smoke

        try:
            print("-- " + serve_smoke())
        except ServeError as exc:
            print(f"-- serve smoke FAILED: {exc}")
            return 1

    names = list(args.names)
    if args.all:
        names = repo.experiments()
        if not names:
            print("-- no experiments registered; nothing to run")
            return 0
    if not names:
        print("popper run: name at least one experiment (or --all)", file=sys.stderr)
        return 2

    retries = args.retries
    fault_spec = args.inject_faults
    if args.chaos_smoke:
        retries = max(retries, 3)
        fault_spec = fault_spec or "flaky:run:2"
    if retries < 0:
        raise PopperError(f"--retries must be >= 0, got {retries}")
    if fault_spec:
        FaultPlan.parse(fault_spec, seed=seed)  # validate early

    backend = args.backend
    jobs = args.jobs
    if args.process_smoke:
        backend = "process"
        jobs = max(jobs, 2)
    scheduler, workers = _scheduler_for(backend, jobs)

    if args.cache_check and (args.no_cache or args.validate_only):
        raise PopperError(
            "--cache-check exercises the artifact store; it cannot be "
            "combined with --no-cache or --validate-only"
        )
    crash_spec = args.inject_crash
    if args.crash_smoke:
        if args.cache_check or args.validate_only or args.crash_hard:
            raise PopperError(
                "--crash-smoke orchestrates crash+doctor+resume in one "
                "process; it cannot be combined with --cache-check, "
                "--validate-only or --crash-hard"
            )
        crash_spec = crash_spec or "at:runstate.append.torn:1"
    if args.crash_hard and not crash_spec:
        raise PopperError("--crash-hard needs --inject-crash")
    if crash_spec:
        CrashPlan.parse(crash_spec, seed=seed)  # validate early
    # Cross-run memoization is on by default; --no-cache executes every
    # stage, and --validate-only never touches the store.
    use_cache = not args.no_cache and not args.validate_only
    artifact_store = repo.artifact_store if use_cache else None

    cancel = CancelToken()

    def experiment_task(name: str):
        # Plain data rather than a closure, so the process backend can
        # ship it to a worker; bound to the open repo and cancel token
        # for the in-process backends (dropped on pickle).
        return SweepExperimentJob(
            repo_root=str(repo.root),
            name=name,
            strict=args.strict,
            resume=args.resume,
            validate_only=args.validate_only,
            retries=retries,
            task_timeout=args.task_timeout,
            fault_spec=fault_spec,
            fault_seed=seed,
            use_cache=use_cache,
            backend=scheduler.backend,
            workers=workers,
        ).bind(repo=repo, cancel=cancel)

    def sweep_fingerprint(name: str) -> str:
        # Covers the experiment's parameters: editing vars.yml
        # invalidates the checkpoint and the experiment re-runs.
        vars_path = repo.experiment_dir(name) / "vars.yml"
        text = (
            vars_path.read_text(encoding="utf-8") if vars_path.is_file() else ""
        )
        return task_fingerprint(f"sweep/{name}", {"vars": sha256_text(text)})

    def sweep_restore(name: str):
        def restore(detail: dict):
            # Re-validates the stored results.csv without re-executing;
            # raising (e.g. deleted results) falls back to a real run.
            return ExperimentPipeline(repo, name).validate_existing()

        return restore

    def sweep_payload(name: str):
        """The task payload for one experiment of the sweep.

        With the cache on, the whole experiment is memoized under its
        vars fingerprint: a warm run materializes ``results.csv``, the
        figure artifacts and the reports from the content pool and only
        re-evaluates the (cheap) validations.
        """
        payload = experiment_task(name)
        if artifact_store is None:
            return payload
        exp_dir = repo.experiment_dir(name)

        def outputs(result):
            files = {
                "results": exp_dir / "results.csv",
                "report": exp_dir / "validation_report.txt",
            }
            for figure_name, path in result.figures.items():
                files[f"figure-{figure_name}"] = path
            for extra in ("figure.svg", "baseline.json"):
                if (exp_dir / extra).is_file():
                    files[extra] = exp_dir / extra
            return files

        def meta(result):
            # Only validated successes are worth replaying on later
            # runs; a run with failed validations must re-execute.
            if not result.validated:
                return None
            return {"rows": len(result.results)}

        return MemoizedPayload(
            fn=payload,
            key=sweep_fingerprint(name),
            root=repo.root,
            outputs=outputs,
            meta=meta,
            # Re-validate the materialized results: an edited
            # validations.aver yields a fresh verdict even on a hit.
            restore=sweep_restore(name),
        )

    state_path = repo.root / ".pvcs" / "sweep-state.jsonl"

    def build_graph() -> TaskGraph:
        graph = TaskGraph()
        for name in names:
            if args.validate_only:
                graph.add(name, experiment_task(name))
            else:
                graph.add(
                    name,
                    sweep_payload(name),
                    fingerprint=sweep_fingerprint(name),
                    # Only validated successes are worth caching; a run
                    # that completed with validation failures re-runs on
                    # resume.
                    checkpoint=lambda result: (
                        {"validated": True, "rows": len(result.results)}
                        if result.validated
                        else None
                    ),
                    restore=sweep_restore(name),
                )
        return graph

    def execute(resume: bool):
        with RunStateStore(state_path, resume=resume) as store:
            options = RunOptions(
                run_state=store,
                artifact_store=artifact_store,
                cancel=cancel,
            )
            return scheduler.run(build_graph(), options=options)

    def report(recap) -> int:
        exit_code = 0
        for name in names:
            outcome = recap.outcome(name)
            if outcome.ok:
                result = outcome.value
                status = "ok" if result.validated else "VALIDATION FAILED"
                cached = (
                    " (cached)"
                    if outcome.restored or outcome.state is TaskState.CACHED
                    else ""
                )
                print(
                    f"-- {name}: {len(result.results)} result rows, "
                    f"{status}{cached}"
                )
                for stage in result.degraded_stages:
                    print(f"   degraded: optional stage {stage} failed")
                for validation in result.validations:
                    print("   " + validation.describe().replace("\n", "\n   "))
                if not result.validated:
                    exit_code = max(exit_code, 1)
            elif isinstance(outcome.error, ValidationFailure):
                print(f"-- {name}: VALIDATION FAILED (strict)")
                print("   " + str(outcome.error).replace("\n", "\n   "))
                exit_code = max(exit_code, 1)
            elif isinstance(outcome.error, ReproError):
                print(f"-- {name}: ERRORED ({outcome.error})")
                exit_code = max(exit_code, 2)
            else:
                # A non-repro exception is a bug, not an experiment outcome.
                raise outcome.error
        return exit_code

    def drive() -> int:
        recap = execute(args.resume)
        exit_code = report(recap)
        if not args.cache_check:
            return exit_code

        # Warm pass: same sweep again against the store the cold pass
        # just filled.  The CI warm-cache job fails unless (almost)
        # everything is served from cache with byte-identical results.
        def results_bytes() -> dict[str, bytes]:
            snapshots = {}
            for name in names:
                path = repo.experiment_dir(name) / "results.csv"
                snapshots[name] = path.read_bytes() if path.is_file() else b""
            return snapshots

        cold = results_bytes()
        warm_recap = execute(resume=False)
        exit_code = max(exit_code, report(warm_recap))
        warm = results_bytes()
        hits = sum(
            1
            for name in names
            if warm_recap.outcome(name).state is TaskState.CACHED
        )
        rate = hits / len(names)
        differing = sorted(name for name in names if cold[name] != warm[name])
        if rate >= 0.9 and not differing and exit_code == 0:
            print(
                f"-- cache check: {hits}/{len(names)} experiments served "
                "from cache; results identical"
            )
            return exit_code
        reasons = [f"{hits}/{len(names)} cache hits"]
        if differing:
            reasons.append(f"results differ for {', '.join(differing)}")
        print(f"-- cache check FAILED: {'; '.join(reasons)}")
        return max(exit_code, 1)

    def drive_with_crashes() -> int:
        """One sweep under the installed crash plan; 70 when it fires."""
        plan = CrashPlan.parse(
            crash_spec, seed=seed, hard=args.crash_hard
        )
        previous = install_crash_plan(plan)
        try:
            return drive()
        except SimulatedCrash as crash:
            print(
                f"-- simulated crash at {crash.point} (hit {crash.hit}); "
                "run `popper doctor`, then `popper run --resume`"
            )
            return EXIT_CRASH
        finally:
            install_crash_plan(previous)

    def crash_smoke() -> int:
        """crash -> doctor -> resume, the single-token CI robustness job."""
        from repro.store.doctor import diagnose, repair

        code = drive_with_crashes()
        if code != EXIT_CRASH:
            print("-- crash smoke: plan never fired; nothing to recover")
            return max(code, 1) if code else 1
        doctor_report = repair(diagnose(repo.root, tmp_age_s=0.0))
        print(doctor_report.describe(), end="")
        if doctor_report.unrepaired:
            print("-- crash smoke FAILED: doctor left damage unrepaired")
            return 1
        recap = execute(resume=True)
        code = report(recap)
        verify = repo.artifact_store.verify() if use_cache else None
        if verify is not None and not verify.ok:
            print("-- crash smoke FAILED: artifact store corrupt after resume")
            return max(code, 1)
        if code == 0:
            print("-- crash smoke: crashed, repaired, resumed clean")
        return code

    guard = GracefulShutdown(cancel)
    try:
        with guard:
            if args.crash_smoke:
                return crash_smoke()
            if crash_spec:
                return drive_with_crashes()
            return drive()
    except RunCancelled as cancelled:
        resume_hint = "--all" if args.all else " ".join(names)
        print(
            f"-- {cancelled}; completed tasks are checkpointed"
            f" (resume with: popper run {resume_hint} --resume)"
        )
        return cancelled.exit_code if guard.exit_code == 0 else guard.exit_code


def _journal_events(args):
    from repro.monitor.journal import JOURNAL_FILE, load_journal

    repo = PopperRepository.open(args.repo)
    if args.name not in repo.config.experiments:
        raise PopperError(f"no such experiment: {args.name!r}")
    path = repo.experiment_dir(args.name) / JOURNAL_FILE
    if not path.is_file():
        raise PopperError(
            f"{args.name}: no run journal yet; `popper run {args.name}` first"
        )
    return load_journal(path)


def _cmd_serve(args) -> int:
    """``popper serve``: the crash-tolerant job-queue daemon.

    Foreground until SIGINT/SIGTERM, then a graceful drain: admission
    stops (503), leased jobs finish, the queue journal checkpoints, and
    the process exits 130/143 — every accepted job either completed or
    survives in ``.pvcs/queue/`` for the next daemon to re-admit.
    """
    from repro.engine import CancelToken, GracefulShutdown
    from repro.serve import PopperServer

    repo = PopperRepository.open(args.repo)
    daemon = PopperServer(
        repo,
        workers=args.workers,
        max_queue=args.max_queue,
        host=args.host,
        port=args.port,
        lease_s=args.lease,
    )
    cancel = CancelToken()
    try:
        with GracefulShutdown(cancel) as guard:
            daemon.start()
            print(
                f"-- popper serve on http://{daemon.host}:{daemon.port} "
                f"({args.workers} worker(s), queue bound {args.max_queue})"
            )
            print(
                '   POST /v1/jobs {"experiment": NAME} to submit; '
                "GET /healthz; Ctrl-C drains"
            )
            daemon.run_until(cancel)
            print("-- draining: finishing leased jobs, checkpointing the queue")
    finally:
        daemon.drain()
    stats = daemon.queue.stats()
    print(
        f"-- served {stats['states']['done']} job(s) "
        f"({stats['cache_served']} cache-served, {stats['shed']} shed); "
        f"{stats['states']['queued']} left queued for the next daemon"
    )
    return guard.exit_code


def _cmd_trace(args) -> int:
    from repro.monitor.report import render_fuzz_summary, render_report

    if args.serve:
        from repro.monitor.journal import load_journal
        from repro.monitor.report import render_serve_summary
        from repro.serve import QUEUE_DIR

        repo = PopperRepository.open(args.repo)
        path = repo.vcs.meta / QUEUE_DIR / "journal.jsonl"
        if not path.is_file():
            raise PopperError(
                "no serve queue journal yet; `popper serve` first"
            )
        events, skipped = load_journal(path)
        print(render_serve_summary(events, skipped=skipped), end="")
        return 0
    if args.fuzz:
        from repro.fuzz import FUZZ_DIR
        from repro.monitor.journal import load_journal

        repo = PopperRepository.open(args.repo)
        path = repo.vcs.meta / FUZZ_DIR / "journal.jsonl"
        if not path.is_file():
            raise PopperError(
                "no fuzz campaign journal yet; `popper fuzz` first"
            )
        events, skipped = load_journal(path)
        print(render_fuzz_summary(events, skipped=skipped), end="")
        return 0
    if not args.name:
        print("popper trace: name an experiment (or use --fuzz)", file=sys.stderr)
        return 2
    events, skipped = _journal_events(args)
    print(render_report(events, skipped=skipped), end="")
    return 0


def _cmd_log(args) -> int:
    import json

    events, skipped = _journal_events(args)
    if not args.raw:
        run_start = next(
            (e for e in events if e.get("event") == "run_start"), None
        )
        if run_start is not None:
            header = f"-- run: {run_start.get('experiment', '?')}"
            if run_start.get("backend"):
                header += f"   backend: {run_start['backend']}"
                if run_start.get("workers"):
                    header += f" ({run_start['workers']} workers)"
            print(header)
    for event in events:
        if args.raw:
            print(json.dumps(event))
            continue
        kind = event.get("event", "?")
        detail = " ".join(
            f"{k}={v}"
            for k, v in event.items()
            if k not in ("seq", "ts", "event", "attributes", "detail")
        )
        print(f"[{event.get('seq', '?'):>4}] {kind:<12} {detail}".rstrip())
    if skipped and not args.raw:
        print(f"-- {skipped} torn trailing line skipped (crashed append)")
    return 0


def _cmd_perf(args) -> int:
    """``popper perf <rev1> [rev2]``: detector verdicts between commits.

    Loads the commit-attached profiles of both revisions from
    ``.pvcs/profiles/``, runs the four-detector suite over every shared
    series, and prints the verdict table.  Exit status: 0 when no firm
    degradation, 1 when at least one detector is certain, 2 on usage
    errors (unknown revision, missing profile).
    """
    from repro.check import DetectorSuite, PerformanceChange, default_suite
    from repro.common.errors import CheckError, ObjectNotFound, VcsError

    repo = PopperRepository.open(args.repo)

    def resolve(ref: str) -> str:
        try:
            return repo.vcs.resolve(ref)
        except ObjectNotFound as exc:
            raise PopperError(
                f"popper perf: unknown revision {ref!r} "
                "(no branch, tag, or commit prefix matches)"
            ) from exc
        except VcsError as exc:
            raise PopperError(
                f"popper perf: cannot resolve revision {ref!r}: {exc}"
            ) from exc

    old = resolve(args.rev1)
    new = resolve(args.rev2)
    history = repo.profile_history
    try:
        baseline = history.require(old)
        candidate = history.require(new)
    except CheckError as exc:
        profiled = history.commits()
        hint = (
            "profiled commits: "
            + ", ".join(c[:12] for c in profiled[-5:])
            if profiled
            else "no commits have profiles yet"
        )
        raise PopperError(f"popper perf: {exc} ({hint})") from exc

    suite = default_suite(threshold=args.threshold)
    verdicts = suite.compare_series(baseline.series, candidate.series)
    span = ""
    try:
        between = repo.vcs.commits_between(old, new)
        span = f" ({len(between)} commit{'s' if len(between) != 1 else ''} apart)"
    except VcsError:
        pass  # unrelated revisions still compare profile-to-profile
    print(f"== perf: {old[:12]} -> {new[:12]}{span}")

    shown = verdicts
    if not args.all_verdicts:
        quiet = (
            PerformanceChange.NO_CHANGE,
            PerformanceChange.OPTIMIZATION,
            PerformanceChange.MAYBE_OPTIMIZATION,
            PerformanceChange.UNKNOWN,
        )
        shown = [v for v in verdicts if v.change not in quiet]
        unknown = sum(
            1 for v in verdicts if v.change is PerformanceChange.UNKNOWN
        )
        hidden = len(verdicts) - len(shown) - unknown
        if unknown:
            print(
                f"-- {unknown} series not comparable "
                "(missing from one profile or too few samples)"
            )
        if hidden:
            print(f"-- {hidden} unremarkable verdicts hidden (--all-verdicts shows them)")
    if shown:
        print(DetectorSuite.to_table(shown).to_text(), end="")
    firm = [v for v in verdicts if v.change is PerformanceChange.DEGRADATION]
    maybes = [
        v for v in verdicts if v.change is PerformanceChange.MAYBE_DEGRADATION
    ]
    if firm:
        metrics = sorted({v.metric for v in firm})
        print(f"-- DEGRADATION in {len(metrics)} metric(s): {', '.join(metrics)}")
        return 1
    if maybes:
        print(f"-- no firm degradation ({len(maybes)} maybe-verdicts above)")
    else:
        print("-- no degradation detected")
    return 0


def _cmd_paper(args) -> int:
    repo = PopperRepository.open(args.repo)
    if args.subcommand == "list":
        print("-- available paper templates ---------")
        for name in sorted(PAPER_TEMPLATES):
            print(name)
        return 0
    if args.subcommand == "add":
        repo.add_paper(args.template)
        print(f"-- Added paper template {args.template}")
        return 0
    if args.subcommand == "build":
        output = repo.build_paper()
        print(f"-- Built {output}")
        return 0
    raise PopperError(f"unknown paper subcommand {args.subcommand!r}")


def _cmd_ci(args) -> int:
    from repro.core.ci_integration import make_ci_server

    repo = PopperRepository.open(args.repo)
    server = make_ci_server(repo, jobs=args.jobs, backend=args.backend)
    # Matrix jobs run `popper run ...` in-process; exporting POPPER_SEED
    # is how one `--seed` reaches every job's fault/crash/fuzz surfaces.
    previous = os.environ.get("POPPER_SEED")
    if args.seed is not None:
        os.environ["POPPER_SEED"] = str(args.seed)
    try:
        record = server.trigger(args.ref, resume=args.resume)
    finally:
        if args.seed is not None:
            if previous is None:
                os.environ.pop("POPPER_SEED", None)
            else:
                os.environ["POPPER_SEED"] = previous
    print(f"-- build #{record.number} on {record.commit[:12]}: {record.status.value}")
    for job in record.jobs:
        env = " ".join(f"{k}={v}" for k, v in job.env.items()) or "<default env>"
        verdict = "ok" if job.ok else "FAILED"
        if job.restored:
            verdict += " (cached)"
        print(f"   job [{env}]: {verdict}")
        for step in job.steps:
            marker = "ok " if step.ok else "ERR"
            print(f"     [{marker}] {step.phase}: {step.command}")
            if not step.ok and step.stderr.strip():
                print("          " + step.stderr.strip().splitlines()[0])
    if record.perf:
        from repro.check import PerformanceChange

        firm = [
            v for v in record.perf if v.change is PerformanceChange.DEGRADATION
        ]
        print(
            f"-- perf: {len(record.perf)} detector verdicts vs baseline, "
            f"{len(firm)} firm degradation(s)"
        )
        for verdict in firm:
            print(f"   {verdict}")
    print(f"-- {server.badge()}")
    return 0 if record.ok else 1


def _cmd_fuzz(args) -> int:
    """``popper fuzz``: a seeded coverage-guided campaign over this
    repository's experiments.  Exit 1 when failing variants were found
    (their minimized reproducers are under ``.pvcs/fuzz/repro/``)."""
    from repro.fuzz import FUZZ_DIR, FuzzCampaign
    from repro.monitor.journal import RunJournal

    repo = PopperRepository.open(args.repo)
    campaign = FuzzCampaign(
        repo,
        seed=_effective_seed(args),
        iterations=args.iterations,
        experiments=args.names or None,
        max_stack=args.max_stack,
        do_minimize=not args.no_minimize,
    )
    journal = RunJournal(repo.vcs.meta / FUZZ_DIR / "journal.jsonl")
    try:
        report = campaign.run(journal=journal)
    finally:
        journal.close()
    print(report.describe(), end="")
    if report.failures:
        print(
            f"-- {report.failures} failing variant(s); reproducers under "
            f"{campaign.state_root / 'repro'}"
        )
        return 1
    return 0


def _cmd_cache(args) -> int:
    """``popper cache stats|verify|gc``: artifact-store administration."""
    repo = PopperRepository.open(args.repo)
    store = repo.artifact_store
    if args.subcommand == "stats":
        stats = store.stats()
        print(f"-- artifact cache ({store.root})")
        print(
            f"   objects: {stats['objects']} ({stats['bytes']} bytes, "
            f"{stats['quarantined']} quarantined)"
        )
        print(
            f"   loose: {stats['loose_objects']} "
            f"({stats['loose_bytes']} bytes); "
            f"packed: {stats['packed_objects']} "
            f"({stats['packed_bytes']} bytes in {stats['pack_files']} "
            f"pack(s), {stats['pack_deltas']} delta-encoded)"
        )
        print(f"   records: {stats['records']} across {stats['tasks']} tasks")
        print(
            f"   logical bytes: {stats['logical_bytes']} "
            f"({stats['bytes_deduped']} deduped, "
            f"{stats['dedup_ratio']:.2f}x dedup ratio incl. pack deltas)"
        )
        vcs_stats = repo.vcs.store.cas.stats()
        print(f"-- vcs object pool ({repo.vcs.store.root})")
        print(
            f"   objects: {vcs_stats['objects']} ({vcs_stats['bytes']} bytes, "
            f"{vcs_stats['quarantined']} quarantined)"
        )
        print(
            f"   loose: {vcs_stats['loose_objects']} "
            f"({vcs_stats['loose_bytes']} bytes); "
            f"packed: {vcs_stats['packed_objects']} "
            f"({vcs_stats['packed_bytes']} bytes in "
            f"{vcs_stats['pack_files']} pack(s), "
            f"{vcs_stats['pack_deltas']} delta-encoded)"
        )
        return 0
    if args.subcommand == "repack":
        delta = not args.no_delta
        report = store.repack(min_objects=args.min_objects, delta=delta)
        print(f"-- artifact cache ({store.root})")
        print("   " + report.describe().replace("\n", "\n   ").rstrip())
        vcs_report = repo.vcs.store.cas.repack(
            min_objects=args.min_objects, delta=delta
        )
        print(f"-- vcs object pool ({repo.vcs.store.root})")
        print("   " + vcs_report.describe().replace("\n", "\n   ").rstrip())
        return 0
    if args.subcommand == "verify":
        report = store.verify()
        print(f"-- artifact cache: {report.healthy_objects} objects healthy")
        for oid, referrers in sorted(report.corrupt.items()):
            blame = "; ".join(referrers) or "unreferenced"
            print(f"   corrupt (quarantined): {oid[:12]} <- {blame}")
        vcs_bad = repo.vcs.fsck()
        healthy_vcs = sum(1 for _ in repo.vcs.store.ids())
        print(f"-- vcs object pool: {healthy_vcs} objects healthy")
        if vcs_bad:
            blame_map = repo.vcs.referrers(set(vcs_bad))
            for oid in sorted(vcs_bad):
                blame = "; ".join(blame_map.get(oid, [])) or "unreferenced"
                print(f"   corrupt (quarantined): {oid[:12]} <- {blame}")
        ok = report.ok and not vcs_bad
        print(f"-- verify: {'clean' if ok else 'CORRUPTION FOUND'}")
        return 0 if ok else 1
    if args.subcommand == "gc":
        gc = store.gc(keep_last=args.keep_last)
        print(
            f"-- gc: kept {args.keep_last} record(s) per task; removed "
            f"{gc.records_removed} records, {gc.objects_removed} objects "
            f"({gc.bytes_reclaimed} bytes reclaimed)"
        )
        return 0
    raise PopperError(f"unknown cache subcommand {args.subcommand!r}")


def _cmd_doctor(args) -> int:
    """``popper doctor [--dry-run]``: crash-debris scan and repair.

    Dry-run exits 1 when findings exist (so CI can gate on cleanliness);
    a repair pass exits 1 only when damage could not be repaired.
    """
    from repro.store.doctor import diagnose, repair

    repo = PopperRepository.open(args.repo)
    report = diagnose(repo.root, tmp_age_s=args.tmp_age)
    if not args.dry_run:
        repair(report)
    print(report.describe(), end="")
    if args.dry_run:
        return 0 if report.clean else 1
    return 1 if report.unrepaired else 0


def _cmd_bundle(args) -> int:
    from repro.core.bundle import create_bundle

    repo = PopperRepository.open(args.repo)
    manifest = create_bundle(repo, args.output, ref=args.ref)
    print(
        f"-- bundled {manifest['files']} files ({manifest['bytes']} bytes) "
        f"at {manifest['commit'][:12]} -> {args.output}"
    )
    return 0


def _cmd_unbundle(args) -> int:
    from repro.core.bundle import unbundle

    repo = unbundle(args.bundle_file, args.target)
    print(f"-- recreated Popper repository at {repo.root}")
    print(f"   experiments: {', '.join(repo.experiments()) or '<none>'}")
    return 0


def _cmd_notebooks(args) -> int:
    from repro.core.binder import rerun_notebooks

    repo = PopperRepository.open(args.repo)
    statuses = rerun_notebooks(repo)
    exit_code = 0
    for status in statuses:
        if not status.ran:
            marker = "--" if status.ok else "!!"
        else:
            marker = "ok" if status.ok else "!!"
        detail = f" ({status.detail})" if status.detail else ""
        print(f"[{marker}] {status.experiment}{detail}")
        if not status.ok:
            exit_code = 1
    return exit_code


def _cmd_status(args) -> int:
    repo = PopperRepository.open(args.repo)
    print(f"Popper repository at {repo.root}")
    print(f"paper template: {repo.config.paper_template or '<none>'}")
    for name in repo.experiments():
        template = repo.config.experiments[name]
        has_results = (repo.experiment_dir(name) / "results.csv").is_file()
        state = "ran" if has_results else "never ran"
        print(f"  {name}  (from {template}, {state})")
    vcs_status = repo.vcs.status()
    print("working tree:", "clean" if vcs_status.clean else "dirty")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "init": _cmd_init,
        "add": _cmd_add,
        "rm": _cmd_rm,
        "check": _cmd_check,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "fuzz": _cmd_fuzz,
        "perf": _cmd_perf,
        "trace": _cmd_trace,
        "log": _cmd_log,
        "paper": _cmd_paper,
        "ci": _cmd_ci,
        "cache": _cmd_cache,
        "doctor": _cmd_doctor,
        "bundle": _cmd_bundle,
        "unbundle": _cmd_unbundle,
        "notebooks": _cmd_notebooks,
        "status": _cmd_status,
    }
    try:
        if args.command == "experiment":
            return _cmd_experiment_list(args)
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"popper: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
