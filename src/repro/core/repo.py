"""The Popper repository: the paper's Listing 1 layout, under version
control.

::

    paper-repo
    | README.md
    | .travis.yml
    | .popper.yml
    | experiments/
    |   |-- myexp/
    |       |-- datasets/
    |       |-- vars.yml  setup.yml  run.sh  validations.aver
    |       |-- results.csv  validation_report.txt   (after a run)
    | paper/
    |   |-- build.sh  paper.md  figures/  references.bib

``PopperRepository`` wraps the VCS substrate and the config file and
implements ``init`` / ``add_experiment`` / ``add_paper`` plus the path
accessors every other core module uses.
"""

from __future__ import annotations

from pathlib import Path

from repro.common.errors import PopperError
from repro.common.fsutil import ensure_dir, write_text
from repro.core.config import CONFIG_NAME, PopperConfig
from repro.core.templates import get_template
from repro.store import ArtifactStore
from repro.vcs.repository import Repository

__all__ = ["PopperRepository", "PAPER_TEMPLATES"]


#: Manuscript templates (`popper paper list`): generic article and the
#: BAMS layout the weather use case mentions.
PAPER_TEMPLATES: dict[str, dict[str, str]] = {
    "generic-article": {
        "paper/paper.md": (
            "# Title\n\n## Abstract\n\nWrite the abstract here.\n\n"
            "## Experiments\n\nReference figures produced under "
            "`experiments/*/figures/`.\n"
        ),
        "paper/build.sh": (
            "#!/bin/sh\n# Build the manuscript into paper/output.pdf\n"
            "popper paper build\n"
        ),
        "paper/references.bib": "% BibTeX entries\n",
    },
    "bams-article": {
        "paper/paper.md": (
            "# BAMS Article Title\n\n*Capsule summary.*\n\n"
            "## Data availability\n\nDatasets are referenced as data "
            "packages in each experiment's `datasets/` folder.\n"
        ),
        "paper/build.sh": "#!/bin/sh\npopper paper build\n",
        "paper/references.bib": "% BibTeX entries (BAMS style)\n",
    },
}

DEFAULT_TRAVIS = """\
# Integrity checks for this Popper repository (category-1 validation).
# The matrix runs nine jobs: a re-validation of stored results, a
# chaos smoke job that re-executes every pipeline under injected
# transient faults with retries enabled (the resilience layer's own
# integrity check), a warm-cache job that runs the sweep twice against
# one artifact store and fails unless the second pass is served
# (almost) entirely from cache with identical results, a crash smoke
# job that kills a seeded sweep mid-write, repairs the debris with
# popper doctor and requires a clean --resume (the crash-consistency
# layer's own integrity check), a process-backend job that runs
# the sweep on worker processes (--backend process -j 2) so the
# multi-core execution path is exercised on every build, and a perf
# smoke job that drives the degradation-detector suite over a
# synthetic two-commit profile history and fails unless the injected
# slowdown is caught (the regression layer's own integrity check),
# and a fuzz smoke job that runs a fixed-seed scenario-fuzz campaign
# in a scratch repository and fails unless a planted known-bad
# variant is caught by the oracle and minimized to a runnable
# reproducer (the fuzzing layer's own integrity check), and a store
# smoke job that packs a scratch object pool, demands byte-identical
# reads, and repairs an injected pack-publish crash with popper doctor
# (the storage layer's own integrity check), and a serve smoke job
# that brings up the popper serve daemon against a scratch repository,
# rejects adversarial requests cleanly, runs a job cold then from
# cache, kills a worker -9 mid-job and requires the job to recover,
# then drains gracefully (the service layer's own integrity check).
# Env values must be single tokens (the CI env parser splits on
# whitespace), hence the --chaos-smoke / --cache-check /
# --crash-smoke / --process-smoke / --perf-smoke / --fuzz-smoke /
# --store-smoke / --serve-smoke shorthands.
language: generic
env:
  - POPPER_RUN_MODE=--validate-only
  - POPPER_RUN_MODE=--chaos-smoke
  - POPPER_RUN_MODE=--cache-check
  - POPPER_RUN_MODE=--crash-smoke
  - POPPER_RUN_MODE=--process-smoke
  - POPPER_RUN_MODE=--perf-smoke
  - POPPER_RUN_MODE=--fuzz-smoke
  - POPPER_RUN_MODE=--store-smoke
  - POPPER_RUN_MODE=--serve-smoke
script:
  - popper check
  - popper run --all ${POPPER_RUN_MODE}
"""


class PopperRepository:
    """A repository following the Popper convention."""

    def __init__(self, root: str | Path) -> None:
        self.vcs = Repository.open(root)
        self.root = self.vcs.root
        self.config = PopperConfig.load(self.root)

    # -- lifecycle -----------------------------------------------------------------
    @classmethod
    def init(cls, root: str | Path, author: str = "popper <popper@localhost>") -> "PopperRepository":
        """``popper init``: create the layout (and a VCS repo if needed)."""
        root = Path(root)
        if (root / CONFIG_NAME).exists():
            raise PopperError(f"already a Popper repository: {root}")
        if not Repository.is_repository(root):
            Repository.init(root)
        repo = Repository.open(root)
        config = PopperConfig()
        config.save(root)
        ensure_dir(root / "experiments")
        ensure_dir(root / "paper")
        if not (root / "README.md").exists():
            write_text(
                root / "README.md",
                "# A Popperized article\n\nInitialized with `popper init`.\n",
            )
        if not (root / ".travis.yml").exists():
            write_text(root / ".travis.yml", DEFAULT_TRAVIS)
        repo.add_all()
        repo.commit("popper init", author=author)
        return cls(root)

    @classmethod
    def open(cls, root: str | Path) -> "PopperRepository":
        return cls(root)

    # -- paths ------------------------------------------------------------------------
    @property
    def experiments_dir(self) -> Path:
        return self.root / "experiments"

    def experiment_dir(self, name: str) -> Path:
        return self.experiments_dir / name

    @property
    def paper_dir(self) -> Path:
        return self.root / "paper"

    @property
    def cache_dir(self) -> Path:
        """Root of the repository's artifact cache (``.pvcs/cache``)."""
        return self.vcs.meta / "cache"

    @property
    def artifact_store(self) -> ArtifactStore:
        """The repository's content-addressed artifact store.

        One store per repository: sweeps, single-experiment runs and CI
        jobs running in checkouts of this repository all dedupe into the
        same pool under ``.pvcs/cache/``.
        """
        return ArtifactStore(self.cache_dir)

    @property
    def profile_history(self):
        """Commit-attached performance profiles (``.pvcs/profiles/``).

        Successful runs attach their stage timings and result columns
        here; the regression detectors (CI gate, Aver ``no_regression``,
        ``popper perf``) read baselines back out of it.
        """
        from repro.check.profiles import ProfileHistory

        return ProfileHistory(self.vcs.meta)

    def experiments(self) -> list[str]:
        return sorted(self.config.experiments)

    # -- experiment management -----------------------------------------------------------
    def add_experiment(
        self, template_name: str, experiment_name: str, commit: bool = True
    ) -> Path:
        """``popper add <template> <name>``: instantiate a template."""
        if not experiment_name or "/" in experiment_name:
            raise PopperError(f"bad experiment name: {experiment_name!r}")
        if experiment_name in self.config.experiments:
            raise PopperError(f"experiment already exists: {experiment_name!r}")
        template = get_template(template_name)
        target = self.experiment_dir(experiment_name)
        if target.exists():
            raise PopperError(f"directory already exists: {target}")
        for rel, content in template.files:
            write_text(target / rel, content)
        self.config.experiments[experiment_name] = template_name
        self.config.save(self.root)
        if commit:
            self.vcs.add_all()
            self.vcs.commit(f"popper add {template_name} {experiment_name}")
        return target

    def remove_experiment(self, name: str, commit: bool = True) -> None:
        """Drop an experiment from the convention and the tree."""
        if name not in self.config.experiments:
            raise PopperError(f"no such experiment: {name!r}")
        target = self.experiment_dir(name)
        for path in sorted(target.rglob("*"), reverse=True):
            if path.is_file():
                path.unlink()
            else:
                path.rmdir()
        if target.exists():
            target.rmdir()
        del self.config.experiments[name]
        self.config.save(self.root)
        if commit:
            self.vcs.add_all()
            self.vcs.commit(f"popper rm {name}")

    # -- paper management -------------------------------------------------------------------
    def add_paper(self, template_name: str = "generic-article", commit: bool = True) -> None:
        """``popper paper add``: drop in a manuscript template."""
        if template_name not in PAPER_TEMPLATES:
            raise PopperError(
                f"no paper template {template_name!r}; "
                f"available: {sorted(PAPER_TEMPLATES)}"
            )
        for rel, content in PAPER_TEMPLATES[template_name].items():
            write_text(self.root / rel, content)
        self.config.paper_template = template_name
        self.config.save(self.root)
        if commit:
            self.vcs.add_all()
            self.vcs.commit(f"popper paper add {template_name}")

    def build_paper(self) -> Path:
        """``popper paper build``: render the manuscript.

        The stand-in renderer concatenates the manuscript with the list
        of generated figure artifacts into ``paper/output.pdf`` (a text
        placeholder — the convention cares that the build is automated
        and CI-checkable, not about TeX itself).
        """
        source = self.paper_dir / "paper.md"
        if not source.is_file():
            raise PopperError("no paper/paper.md; run `popper paper add` first")
        chunks = [source.read_text(encoding="utf-8"), "\n\n## Generated artifacts\n"]
        for name in self.experiments():
            results = self.experiment_dir(name) / "results.csv"
            status = "results available" if results.is_file() else "not yet run"
            chunks.append(f"- experiment `{name}`: {status}\n")
        output = self.paper_dir / "output.pdf"
        output.write_text("".join(chunks), encoding="utf-8")
        return output
