"""``.popper.yml`` — the Popper repository's configuration file.

``popper init`` drops this file at the repository root; every other CLI
command reads it to locate experiments and the paper.  It records the
convention version, the registered experiments (and which template each
came from) and the manuscript template in use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.common import minyaml
from repro.common.errors import PopperError

__all__ = ["PopperConfig", "CONFIG_NAME"]

CONFIG_NAME = ".popper.yml"
CONVENTION_VERSION = 1


@dataclass
class PopperConfig:
    """Parsed contents of ``.popper.yml``."""

    version: int = CONVENTION_VERSION
    experiments: dict[str, str] = field(default_factory=dict)  # name -> template
    paper_template: str | None = None
    metadata: dict = field(default_factory=dict)

    # -- serialization -------------------------------------------------------------
    def to_yaml(self) -> str:
        doc: dict = {"version": self.version}
        doc["experiments"] = dict(self.experiments)
        if self.paper_template is not None:
            doc["paper"] = {"template": self.paper_template}
        if self.metadata:
            doc["metadata"] = dict(self.metadata)
        return minyaml.dumps(doc)

    @classmethod
    def from_yaml(cls, text: str) -> "PopperConfig":
        doc = minyaml.loads(text)
        if doc is None:
            return cls()
        if not isinstance(doc, dict):
            raise PopperError(".popper.yml must be a mapping")
        version = doc.get("version", CONVENTION_VERSION)
        if not isinstance(version, int) or version < 1:
            raise PopperError(f"bad convention version: {version!r}")
        if version > CONVENTION_VERSION:
            raise PopperError(
                f"repository uses convention v{version}, this tool supports "
                f"v{CONVENTION_VERSION}"
            )
        experiments = doc.get("experiments") or {}
        if not isinstance(experiments, dict):
            raise PopperError("experiments must map name -> template")
        paper = doc.get("paper") or {}
        return cls(
            version=version,
            experiments={str(k): str(v) for k, v in experiments.items()},
            paper_template=paper.get("template"),
            metadata=doc.get("metadata") or {},
        )

    # -- file I/O ----------------------------------------------------------------------
    def save(self, repo_root: str | Path) -> Path:
        path = Path(repo_root) / CONFIG_NAME
        path.write_text(self.to_yaml(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, repo_root: str | Path) -> "PopperConfig":
        path = Path(repo_root) / CONFIG_NAME
        if not path.is_file():
            raise PopperError(
                f"not a Popper repository (no {CONFIG_NAME} in {repo_root})"
            )
        return cls.from_yaml(path.read_text(encoding="utf-8"))
