"""Baseline-fingerprint gating for experiment pipelines.

From the paper: "when validating assertions that depend on the
underlying hardware ... an important step is to corroborate that the
baseline performance of the experiment for a new environment can be
reproduced.  If the baseline performance cannot be reproduced, there is
no point in executing the experiment."

An experiment opts in through its ``vars.yml``::

    baseline:
      machine: cloudlab-c220g1   # catalog machine the results assume
      max_deviation: 0.15        # tolerated per-stressor rate deviation

On the first run the pipeline fingerprints the platform with the
baseliner battery and stores ``baseline.json``; later runs re-fingerprint
and abort when any stressor's rate drifts past the tolerance — the
"sanitizing" step that catches quietly-changed hardware before it
corrupts a performance result.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.baseliner.fingerprint import BaselineProfile, compare, run_battery
from repro.common.errors import PopperError
from repro.common.rng import SeedSequenceFactory
from repro.platform.noise import QUIET
from repro.platform.sites import Site

__all__ = ["BASELINE_FILE", "check_baseline"]

BASELINE_FILE = "baseline.json"


def _fingerprint(machine: str, seed: int) -> BaselineProfile:
    site = Site(
        f"baseline-{machine}", machine, capacity=1, noise=QUIET,
        seeds=SeedSequenceFactory(seed),
    )
    return run_battery(site.node(0), SeedSequenceFactory(seed), runs=1)


def check_baseline(
    directory: Path, spec: dict, seed: int = 42, journal=None
) -> tuple[bool, str]:
    """Enforce the gate for one experiment.

    Returns ``(fresh, message)`` where ``fresh`` is True when this call
    *created* the stored profile.  Raises :class:`PopperError` when the
    environment's fingerprint deviates beyond tolerance.

    When a :class:`~repro.monitor.journal.RunJournal` is passed, the
    gate's outcome is recorded as a ``baseline`` event — machine,
    tolerance, observed worst deviation and verdict — so a journal shows
    *why* a run was allowed to proceed (or was refused).
    """
    if not isinstance(spec, dict) or "machine" not in spec:
        raise PopperError("baseline spec needs a 'machine' key")
    machine = str(spec["machine"])
    max_deviation = float(spec.get("max_deviation", 0.15))
    if not 0.0 < max_deviation < 1.0:
        raise PopperError(f"baseline max_deviation out of (0, 1): {max_deviation}")

    def journal_event(**fields) -> None:
        if journal is not None:
            journal.event(
                "baseline", machine=machine, max_deviation=max_deviation, **fields
            )

    current = _fingerprint(machine, seed)
    stored_path = directory / BASELINE_FILE
    if not stored_path.is_file():
        stored_path.write_text(current.to_json(), encoding="utf-8")
        message = f"stored new baseline fingerprint for {machine}"
        journal_event(fresh=True, verdict="stored", message=message)
        return True, message

    stored = BaselineProfile.from_json(stored_path.read_text(encoding="utf-8"))
    speedups = compare(stored, current)
    deviations = np.abs(speedups.values() - 1.0)
    worst = float(deviations.max())
    if worst > max_deviation:
        offenders = [
            f"{name} ({value:.2f}x)"
            for name, value in speedups.speedups
            if abs(value - 1.0) > max_deviation
        ]
        message = (
            "baseline performance cannot be reproduced on this environment "
            f"(max deviation {worst:.1%} > {max_deviation:.1%}; "
            f"offending stressors: {', '.join(offenders[:5])}); "
            "refusing to run the experiment"
        )
        journal_event(
            fresh=False,
            verdict="refused",
            worst_deviation=worst,
            offenders=offenders,
            message=message,
        )
        raise PopperError(message)
    message = (
        f"baseline fingerprint matches stored profile "
        f"(max deviation {worst:.1%} <= {max_deviation:.1%})"
    )
    journal_event(
        fresh=False, verdict="matched", worst_deviation=worst, message=message
    )
    return False, message
