"""Experiment runners: the executable half of every template.

A runner is a callable ``(vars: dict) -> MetricsTable`` registered under
a name that an experiment's ``vars.yml`` selects via its ``runner:``
key.  The four use-case runners drive the paper's experiments end to
end; ``generic-scaling`` is the parameterized synthetic workload behind
the remaining community templates (ceph-rados, cloverleaf, zlog,
spark-standalone, proteustm, malacology), each of which configures a
different resource mix.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import PopperError
from repro.common.rng import SeedSequenceFactory
from repro.common.tables import MetricsTable
from repro.monitor.tracing import current_tracer
from repro.platform.perfmodel import KernelDemand, execution_time
from repro.platform.sites import default_sites

__all__ = ["EXPERIMENT_RUNNERS", "register_runner", "run_experiment_runner"]

RunnerFn = Callable[[dict], MetricsTable]

EXPERIMENT_RUNNERS: dict[str, RunnerFn] = {}


def register_runner(name: str, fn: RunnerFn | None = None):
    """Register a runner (usable as a decorator)."""

    def inner(func: RunnerFn) -> RunnerFn:
        if name in EXPERIMENT_RUNNERS:
            raise PopperError(f"runner already registered: {name!r}")
        EXPERIMENT_RUNNERS[name] = func
        return func

    if fn is not None:
        return inner(fn)
    return inner


def run_experiment_runner(name: str, variables: dict) -> MetricsTable:
    """Dispatch to a registered runner (traced as ``runner/<name>``)."""
    fn = EXPERIMENT_RUNNERS.get(name)
    if fn is None:
        raise PopperError(
            f"unknown runner {name!r}; known: {sorted(EXPERIMENT_RUNNERS)}"
        )
    with current_tracer().span(f"runner/{name}") as span:
        table = fn(variables)
        span.attributes["rows"] = len(table)
    return table


# ---------------------------------------------------------------------------
# Use-case runners
# ---------------------------------------------------------------------------

@register_runner("gassyfs-scaling")
def _run_gassyfs(variables: dict) -> MetricsTable:
    from repro.gassyfs.experiment import ScalabilityConfig, run_scalability_experiment
    from repro.gassyfs.workloads import GIT_COMPILE, KERNEL_UNTAR_BUILD, CompileWorkload

    named = {w.name: w for w in (GIT_COMPILE, KERNEL_UNTAR_BUILD)}
    workloads = []
    for name in variables.get("workloads", ["git-compile"]):
        if name not in named:
            raise PopperError(f"unknown gassyfs workload {name!r}")
        workloads.append(named[name])
    scale = float(variables.get("workload_scale", 1.0))
    if scale != 1.0:
        workloads = [
            CompileWorkload(
                name=w.name,
                files=max(1, int(w.files * scale)),
                source_kib=w.source_kib,
                object_kib=w.object_kib,
                compile_ops=w.compile_ops,
                configure_ops=w.configure_ops,
                link_ops=w.link_ops,
            )
            for w in workloads
        ]
    config = ScalabilityConfig(
        node_counts=tuple(variables.get("node_counts", [1, 2, 4, 8])),
        workloads=tuple(workloads),
        sites=tuple(variables.get("sites", ["cloudlab-wisc", "ec2"])),
        placement=variables.get("placement", "round-robin"),
        block_size=int(variables.get("block_size", 1 << 20)),
        seed=int(variables.get("seed", 42)),
    )
    return run_scalability_experiment(config)


@register_runner("torpor-variability")
def _run_torpor(variables: dict) -> MetricsTable:
    from repro.torpor.experiment import run_torpor_experiment

    result = run_torpor_experiment(
        seed=int(variables.get("seed", 42)),
        runs=int(variables.get("runs", 3)),
    )
    return result.speedup_table()


@register_runner("mpi-comm-variability")
def _run_mpi(variables: dict) -> MetricsTable:
    from repro.mpicomm.experiment import run_noise_experiment
    from repro.mpicomm.lulesh import LuleshConfig

    config = LuleshConfig(
        side=int(variables.get("side", 3)),
        iterations=int(variables.get("iterations", 40)),
        elements_per_rank=int(variables.get("elements_per_rank", 27_000)),
    )
    return run_noise_experiment(
        config,
        runs=int(variables.get("runs", 10)),
        seed=int(variables.get("seed", 42)),
    )


@register_runner("bww-airtemp")
def _run_bww(variables: dict) -> MetricsTable:
    from repro.weather.analysis import analyze_air_temperature
    from repro.weather.generator import generate_air_temperature

    air = generate_air_temperature(
        seed=int(variables.get("seed", 42)),
        years=int(variables.get("years", 1)),
        lat_step=float(variables.get("lat_step", 5.0)),
        lon_step=float(variables.get("lon_step", 5.0)),
    )
    return analyze_air_temperature(air).seasonal_zonal


# ---------------------------------------------------------------------------
# The generic synthetic workload behind community templates
# ---------------------------------------------------------------------------

@register_runner("generic-scaling")
def _run_generic(variables: dict) -> MetricsTable:
    """A parallel job with a configurable resource mix, swept over nodes.

    vars: ``serial_ops``, ``parallel_ops``, ``mem_bytes_per_op``,
    ``net_bytes_per_node``, ``storage_bytes``, ``node_counts``,
    ``sites``, ``seed``, ``workload`` (label).
    """
    seed = int(variables.get("seed", 42))
    sites = default_sites(seed)
    seeds = SeedSequenceFactory(seed)
    label = str(variables.get("workload", "synthetic"))
    serial_ops = float(variables.get("serial_ops", 1e9))
    parallel_ops = float(variables.get("parallel_ops", 4e10))
    mem_per_op = float(variables.get("mem_bytes_per_op", 0.2))
    net_per_node = float(variables.get("net_bytes_per_node", 2e8))
    storage_bytes = float(variables.get("storage_bytes", 0.0))
    fp_fraction = float(variables.get("fp_fraction", 0.3))

    table = MetricsTable(["workload", "machine", "nodes", "time"])
    for site_name in variables.get("sites", ["cloudlab-wisc"]):
        if site_name not in sites:
            raise PopperError(f"unknown site {site_name!r}")
        site = sites[site_name]
        for nodes in variables.get("node_counts", [1, 2, 4, 8]):
            nodes = int(nodes)
            with site.allocate(nodes) as allocation:
                rng = seeds.rng("generic", label, site_name, nodes)
                serial_demand = KernelDemand(
                    ops=serial_ops,
                    fp_fraction=fp_fraction,
                    mem_bytes=serial_ops * mem_per_op,
                    working_set_kib=1 << 14,
                )
                share_demand = KernelDemand(
                    ops=parallel_ops / nodes,
                    fp_fraction=fp_fraction,
                    mem_bytes=parallel_ops * mem_per_op / nodes,
                    working_set_kib=1 << 15,
                    storage_read_bytes=storage_bytes / nodes,
                    net_bytes=net_per_node * (nodes - 1) / max(nodes, 1),
                    net_msgs=64.0 * (nodes - 1),
                )
                head = allocation[0]
                serial = head.observed_time(
                    execution_time(serial_demand, head.spec), rng
                )
                per_node = [
                    node.observed_time(
                        execution_time(share_demand, node.spec, threads=node.spec.cores),
                        rng,
                    )
                    for node in allocation
                ]
                table.append(
                    {
                        "workload": label,
                        "machine": site_name,
                        "nodes": nodes,
                        "time": serial + max(per_node),
                    }
                )
    return table
