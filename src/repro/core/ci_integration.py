"""Wiring the Popper CLI into the CI substrate.

The repository's ``.travis.yml`` scripts call ``popper check`` and
``popper run ...`` (category-1 integrity validation).  In hosted CI those
commands execute inside the build environment; here,
:class:`PopperExecutor` recognizes ``popper ...`` and ``aver ...``
commands and runs them in-process against the checked-out workspace,
delegating anything else to the container executor.  The result is a
:class:`~repro.ci.runner.CIServer` that gates commits of a Popperized
paper exactly the way the paper describes.
"""

from __future__ import annotations

import contextlib
import io
import shlex
import threading
from pathlib import Path

from repro.container.runtime import ExecResult
from repro.ci.runner import ContainerExecutor

__all__ = ["PopperExecutor", "make_ci_server"]


class PopperExecutor:
    """CI executor understanding the Popper toolchain's commands."""

    # ``contextlib.redirect_stdout`` swaps the *process-wide* sys.stdout;
    # concurrent jobs must serialize in-process command execution or
    # their output would interleave into the wrong job's StepResult.
    _INPROCESS_LOCK = threading.Lock()

    def __init__(self, fallback: ContainerExecutor | None = None) -> None:
        self.fallback = fallback or ContainerExecutor()

    def clone(self) -> "PopperExecutor":
        """A fresh executor for one concurrent matrix job."""
        return PopperExecutor(fallback=self.fallback.clone())

    def reset(self, workspace: Path) -> None:
        # A CI checkout is a bare file tree; a hosted CI job would be
        # operating on a fresh clone, so recreate that precondition.
        from repro.vcs.repository import Repository

        if not Repository.is_repository(workspace):
            repo = Repository.init(workspace)
            repo.add_all()
            repo.commit("ci checkout")
        self.fallback.reset(workspace)

    def __call__(self, command: str, env: dict[str, str], workspace: Path) -> ExecResult:
        for key, value in env.items():
            command = command.replace(f"${{{key}}}", value).replace(f"${key}", value)
        argv = shlex.split(command)
        if argv and argv[0] == "popper":
            from repro.core.cli import main as popper_main

            return self._run_inprocess(
                popper_main, ["-C", str(workspace)] + argv[1:]
            )
        if argv and argv[0] == "aver":
            from repro.aver.cli import main as aver_main

            rewritten = [
                str(workspace / a) if a.endswith((".csv", ".aver")) else a
                for a in argv[1:]
            ]
            return self._run_inprocess(aver_main, rewritten)
        return self.fallback(command, env, workspace)

    @classmethod
    def _run_inprocess(cls, entry, argv: list[str]) -> ExecResult:
        stdout = io.StringIO()
        stderr = io.StringIO()
        with cls._INPROCESS_LOCK:
            with contextlib.redirect_stdout(stdout), contextlib.redirect_stderr(stderr):
                try:
                    code = int(entry(argv))
                except SystemExit as exc:  # argparse errors
                    code = int(exc.code or 0)
        return ExecResult(
            exit_code=code, stdout=stdout.getvalue(), stderr=stderr.getvalue()
        )


def make_ci_server(popper_repo, jobs: int = 1, backend: str = "auto") -> "CIServer":
    """A CI server for a Popper repository with the integrated executor.

    *jobs* bounds how many matrix jobs run concurrently (``popper ci
    -j``); *backend* picks the scheduler for the job graph (``popper ci
    --backend``).
    """
    from repro.ci.runner import CIServer

    return CIServer(
        popper_repo.vcs, executor=PopperExecutor(), jobs=jobs, backend=backend
    )
