"""The experiment pipeline: a declared stage DAG, run by the engine.

``popper run <experiment>`` drives one experiment end to end.  The
lifecycle is declared as a :class:`~repro.engine.TaskGraph` rather than
an imperative loop::

    setup ──> [baseline] ──> run ──┬──> postprocess
                                   ├──> [visualize]
                                   └──> validate

1. **setup** — execute the experiment's ``setup.yml`` playbook against a
   (simulated) inventory, gathering environment facts;
2. **baseline gate** (optional) — compare the target machine's
   fingerprint against a stored profile before spending any time on the
   real run ("if the baseline performance cannot be reproduced, there is
   no point in executing the experiment");
3. **run** — dispatch to the runner named in ``vars.yml`` and store
   ``results.csv``;
4. the three *tails* — **postprocess** (``process-result.py``),
   **visualize** (the analysis notebook, when present) and **validate**
   (``validations.aver`` → ``validation_report.txt``) — depend only on
   the run's results table and are independent of each other, so a
   :class:`~repro.engine.ThreadedScheduler` may overlap them.  The
   default :class:`~repro.engine.SerialScheduler` keeps runs
   deterministic for debugging; either backend produces identical
   artifacts.

Every run is observable after the fact: each stage executes inside a
``task/<stage>`` tracing span (root span ``pipeline/run/<experiment>``),
every span's wall time lands in a :class:`~repro.monitor.MetricStore`,
and the whole run — span events, metric samples, baseline fingerprints,
Aver verdicts, exit status — is journaled to the experiment directory's
``journal.jsonl``, which ``popper trace`` renders into per-stage timings
and a critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from pathlib import Path

from repro.aver.evaluator import ValidationResult, check_all
from repro.common import minyaml
from repro.common.errors import PopperError, ValidationFailure
from repro.common.hashing import sha256_text
from repro.common.tables import MetricsTable
from repro.core.baseline import BASELINE_FILE, check_baseline
from repro.core.postprocess import PROCESS_SCRIPT, run_postprocess
from repro.core.repo import PopperRepository
from repro.core.runners import run_experiment_runner
from repro.engine import (
    CancelToken,
    FaultPlan,
    MemoizedPayload,
    RetryPolicy,
    RunCancelled,
    RunOptions,
    RUN_STATE_FILE,
    RunStateStore,
    Scheduler,
    SerialScheduler,
    TaskGraph,
    TaskState,
    task_fingerprint,
)
from repro.store import ArtifactStore
from repro.monitor.journal import JOURNAL_FILE, RunJournal
from repro.monitor.metrics import MetricStore
from repro.monitor.tracing import Tracer, activate
from repro.orchestration.connection import ContainerConnection
from repro.orchestration.inventory import Inventory
from repro.orchestration.playbook import Playbook, PlaybookRunner

__all__ = ["ExperimentResult", "ExperimentPipeline", "NOTEBOOK_FILE", "JOURNAL_FILE"]

#: Per-experiment analysis notebook (the Jupyter `visualize.ipynb` analog).
NOTEBOOK_FILE = "visualize.nb.json"

#: Stage names the lifecycle DAG may contain (for optional_stages checks).
PIPELINE_STAGES = ("setup", "baseline", "run", "postprocess", "visualize", "validate")


@dataclass
class ExperimentResult:
    """Everything a pipeline run produced."""

    experiment: str
    results: MetricsTable
    validations: list[ValidationResult]
    stage_seconds: dict[str, float] = field(default_factory=dict)
    figures: dict[str, object] = field(default_factory=dict)  # name -> Path
    baseline_message: str = ""
    #: Optional stages that failed but did not fail the run.
    degraded_stages: list[str] = field(default_factory=list)

    @property
    def validated(self) -> bool:
        return all(v.passed for v in self.validations)

    def report_text(self) -> str:
        lines = [f"experiment: {self.experiment}", ""]
        for result in self.validations:
            lines.append(result.describe())
        lines.append("")
        verdict = "ALL VALIDATIONS PASSED" if self.validated else "VALIDATION FAILURES"
        lines.append(verdict)
        return "\n".join(lines) + "\n"


class ExperimentPipeline:
    """Runs one experiment of a Popper repository."""

    def __init__(
        self,
        repo: PopperRepository,
        experiment: str,
        metrics: MetricStore | None = None,
        inventory: Inventory | None = None,
        tracer: Tracer | None = None,
        scheduler: Scheduler | None = None,
        retry: RetryPolicy | None = None,
        timeout_s: float | None = None,
        faults: FaultPlan | None = None,
        artifact_store: ArtifactStore | None = None,
        cancel: CancelToken | None = None,
        run_meta: dict | None = None,
    ) -> None:
        if experiment not in repo.config.experiments:
            raise PopperError(f"no such experiment: {experiment!r}")
        self.repo = repo
        self.experiment = experiment
        self.directory = repo.experiment_dir(experiment)
        # `or` would discard an empty store (MetricStore defines __len__).
        self.metrics = metrics if metrics is not None else MetricStore()
        self.inventory = inventory
        self.tracer = tracer if tracer is not None else Tracer(metrics=self.metrics)
        # Serial by default: deterministic stage order for debugging.
        # Pass a ThreadedScheduler to overlap the independent tails.
        self.scheduler = scheduler if scheduler is not None else SerialScheduler()
        self.retry = retry
        self.timeout_s = timeout_s
        self.faults = faults
        # Cross-run memoization: when set, cache-aware stages consult
        # the store before executing and file their outputs after.
        self.artifact_store = artifact_store
        # Cooperative shutdown: the scheduler checks this between
        # stages and drains instead of dying mid-write.
        self.cancel = cancel
        # Extra fields for the journal's run_start header — the sweep
        # layer records which backend and worker count drove this run.
        self.run_meta = dict(run_meta) if run_meta else {}

    @property
    def journal_path(self):
        """Where this experiment's run journal lands (``journal.jsonl``)."""
        return self.directory / JOURNAL_FILE

    @property
    def run_state_path(self):
        """Where this experiment's resume checkpoint lands."""
        return self.directory / RUN_STATE_FILE

    # -- pieces ---------------------------------------------------------------------
    def load_vars(self) -> dict:
        path = self.directory / "vars.yml"
        if not path.is_file():
            raise PopperError(f"{self.experiment}: missing vars.yml")
        doc = minyaml.load_file(path)
        if not isinstance(doc, dict) or "runner" not in doc:
            raise PopperError(
                f"{self.experiment}: vars.yml must be a mapping with a 'runner' key"
            )
        return doc

    def _default_inventory(self) -> Inventory:
        inventory = Inventory()
        inventory.add_host(
            "driver",
            groups=["head"],
            connection=ContainerConnection(name="driver"),
        )
        return inventory

    def run_setup(self) -> None:
        """Execute ``setup.yml`` (skipped if the experiment has none)."""
        path = self.directory / "setup.yml"
        if not path.is_file():
            return
        playbook = Playbook.from_yaml(path.read_text(encoding="utf-8"))
        inventory = self.inventory or self._default_inventory()
        recap = PlaybookRunner(inventory, extra_vars=self.load_vars()).run(playbook)
        if not recap.ok:
            failures = [
                f"{host}: {result.msg}"
                for name, host, result in recap.task_results
                if result.failed
            ]
            raise PopperError(
                f"{self.experiment}: setup playbook failed ({'; '.join(failures)})"
            )

    def run_experiment(self, variables: dict) -> MetricsTable:
        """Dispatch to the configured runner and persist results.csv."""
        runner = str(variables["runner"])
        table = run_experiment_runner(runner, variables)
        if len(table) == 0:
            raise PopperError(f"{self.experiment}: runner produced no rows")
        table.save_csv(self.directory / "results.csv")
        return table

    def _run_notebook(self, table: MetricsTable) -> None:
        """Execute the experiment's analysis notebook (``visualize.nb.json``).

        The notebook sees ``results`` (the metrics table), ``figure_path``
        (where to write its rendered figure) and the figure-rendering
        helpers; any cell error fails the pipeline — the paper's "post-
        processing routines can be executed without problems" CI check.
        """
        from repro.figures import (
            bar_chart_svg,
            line_chart_svg,
            series_from_table,
        )
        from repro.notebook import Notebook, execute

        notebook = Notebook.load(self.directory / NOTEBOOK_FILE)
        run = execute(
            notebook,
            namespace={
                "results": table,
                "figure_path": str(self.directory / "figure.svg"),
                "MetricsTable": MetricsTable,
                "series_from_table": series_from_table,
                "line_chart_svg": line_chart_svg,
                "bar_chart_svg": bar_chart_svg,
            },
        )
        if not run.ok:
            raise PopperError(
                f"{self.experiment}: analysis notebook failed:\n{run.first_error}"
            )

    def run_validation(self, table: MetricsTable) -> list[ValidationResult]:
        """Evaluate ``validations.aver``; persist the report.

        Statements run with a :class:`~repro.check.context.RegressionContext`
        bound to the repository's profile history, so ``expect
        no_regression(metric)`` judges the current results against the
        pooled baseline of prior commits (vacuously passing on a history
        with no baseline yet).
        """
        path = self.directory / "validations.aver"
        if not path.is_file():
            return []
        context = self._regression_context()
        functions = context.functions() if context is not None else None
        self._last_regression_context = context
        return check_all(path.read_text(encoding="utf-8"), table, context=functions)

    def _regression_context(self):
        """Bind ``no_regression`` to the prior commits' pooled profiles."""
        from repro.check.context import RegressionContext

        try:
            head = self.repo.vcs.head_commit()
        except Exception:
            return None
        if head is None:
            return None
        prior = [
            entry.oid for entry in self.repo.vcs.log("HEAD") if entry.oid != head
        ]
        baseline = self.repo.profile_history.baseline_for(list(reversed(prior)))
        return RegressionContext(baseline, experiment=self.experiment)

    # -- the whole pipeline -------------------------------------------------------------
    def run(self, strict: bool = False, resume: bool = False) -> ExperimentResult:
        """Execute all stages.  With ``strict``, failed validations raise.

        The run's full provenance is journaled to :attr:`journal_path`
        (one JSONL event per span/metric/verdict) even when a stage
        raises — a crashed run leaves a journal up to the failure point.
        With ``resume``, stages whose fingerprint has a successful
        checkpoint in :attr:`run_state_path` are restored (the ``run``
        stage re-reads ``results.csv``) instead of re-executed, and the
        journal is appended to rather than truncated.
        """
        journal = RunJournal(self.journal_path, fresh=not resume)
        tracer = self.tracer
        tracer.journal = journal
        journal.event(
            "run_start",
            experiment=self.experiment,
            resume=resume,
            **self.run_meta,
        )
        status = "error"
        prior_roots = len(tracer.roots())
        try:
            with RunStateStore(self.run_state_path, resume=resume) as store:
                options = RunOptions(
                    retry=self.retry,
                    timeout_s=self.timeout_s,
                    faults=self.faults,
                    run_state=store,
                    artifact_store=self.artifact_store,
                    cancel=self.cancel,
                )
                with activate(tracer):
                    result = self._run_stages(
                        tracer, strict=strict, options=options
                    )
            status = "ok" if result.validated else "validation-failed"
            return result
        except ValidationFailure:
            status = "validation-failed"
            raise
        except RunCancelled:
            # The drain finished — completed stages are checkpointed —
            # so the journal records a clean cancellation, not a crash.
            status = "cancelled"
            raise
        finally:
            tracer.journal = None
            try:
                journal.event(
                    "run_end",
                    status=status,
                    duration_s=sum(
                        s.duration for s in tracer.roots()[prior_roots:]
                    ),
                )
            finally:
                journal.close()

    def _optional_stages(self, variables: dict) -> set[str]:
        """Parse ``optional_stages`` from vars.yml (graceful degradation).

        A stage listed there fails to DEGRADED instead of FAILED: its
        dependents still run and the run's exit status is unaffected.
        ``run`` cannot be optional — every tail consumes its value.
        """
        raw = variables.get("optional_stages", [])
        if raw in (None, ""):
            return set()
        if isinstance(raw, str):
            raw = [raw]
        if not isinstance(raw, list):
            raise PopperError(
                f"{self.experiment}: optional_stages must be a list of stage names"
            )
        stages = {str(s) for s in raw}
        unknown = stages - set(PIPELINE_STAGES)
        if unknown:
            raise PopperError(
                f"{self.experiment}: unknown optional_stages {sorted(unknown)}; "
                f"known stages: {', '.join(PIPELINE_STAGES)}"
            )
        if "run" in stages:
            raise PopperError(
                f"{self.experiment}: the 'run' stage cannot be optional"
            )
        return stages

    def _restore_results(self, detail: dict) -> MetricsTable:
        """Rebuild the ``run`` stage's value from disk on ``--resume``."""
        table = MetricsTable.load_csv(self.directory / "results.csv")
        rows = int(detail.get("rows", len(table)))
        if len(table) != rows:
            raise PopperError(
                f"{self.experiment}: results.csv has {len(table)} rows, "
                f"checkpoint recorded {rows}; re-running"
            )
        return table

    def _file_digest(self, name: str) -> str:
        """Content hash of an experiment file ('' when absent).

        Folded into stage cache keys so editing ``process-result.py`` or
        the analysis notebook invalidates exactly the stages that read
        them.
        """
        path = self.directory / name
        if not path.is_file():
            return ""
        return sha256_text(path.read_text(encoding="utf-8"))

    def stage_graph(self, variables: dict) -> TaskGraph:
        """Declare the lifecycle DAG for one run.

        ``setup → [baseline] → run`` is a chain; ``postprocess``,
        ``visualize`` (when the experiment ships a notebook) and
        ``validate`` all depend only on ``run`` and are mutually
        independent — the engine may overlap them.  The ``run`` stage
        carries a checkpoint fingerprint over the experiment's variables,
        so an interrupted sweep resumes without re-executing it.

        The artifact-producing stages (``baseline``, ``run``,
        ``postprocess``, ``visualize``) are declared through
        :class:`~repro.engine.MemoizedPayload`: when the pipeline holds
        an artifact store, a stage whose cache key (variables plus the
        content of the script it executes) matches a stored record is
        materialized from the content pool instead of executed.
        ``validate`` always re-evaluates — it is cheap and *is* the
        verdict.
        """
        optional = self._optional_stages(variables)
        graph = TaskGraph()
        graph.add(
            "setup", lambda ctx: self.run_setup(), optional="setup" in optional
        )
        run_deps = ("setup",)
        if "baseline" in variables:
            seed = int(variables.get("seed", 42))
            graph.add(
                "baseline",
                MemoizedPayload(
                    fn=lambda ctx: check_baseline(
                        self.directory,
                        variables["baseline"],
                        seed=seed,
                        journal=self.tracer.journal,
                    ),
                    key=task_fingerprint(
                        f"{self.experiment}/baseline",
                        {"spec": variables["baseline"], "seed": seed},
                    ),
                    root=self.directory,
                    outputs=lambda value: {
                        "profile": self.directory / BASELINE_FILE
                    },
                    meta=lambda value: {
                        "fresh": bool(value[0]), "message": str(value[1])
                    },
                    restore=lambda meta: (
                        bool(meta.get("fresh", False)),
                        str(meta.get("message", "")),
                    ),
                ),
                dependencies=("setup",),
                optional="baseline" in optional,
            )
            run_deps = ("baseline",)
        graph.add(
            "run",
            MemoizedPayload(
                fn=lambda ctx: self.run_experiment(variables),
                key=task_fingerprint(f"{self.experiment}/run", variables),
                root=self.directory,
                outputs=lambda table: {
                    "results": self.directory / "results.csv"
                },
                meta=lambda table: {"rows": len(table)},
                restore=self._restore_results,
            ),
            dependencies=run_deps,
            fingerprint=task_fingerprint(f"{self.experiment}/run", variables),
            checkpoint=lambda table: {"rows": len(table)},
            restore=self._restore_results,
        )
        graph.add(
            "postprocess",
            MemoizedPayload(
                fn=lambda ctx: run_postprocess(
                    self.directory, ctx.result("run")
                ),
                key=task_fingerprint(
                    f"{self.experiment}/postprocess",
                    {
                        "vars": variables,
                        "script": self._file_digest(PROCESS_SCRIPT),
                    },
                ),
                root=self.directory,
                outputs=lambda figures: dict(figures),
                meta=lambda figures: {"figures": sorted(figures)},
                restore=lambda meta: {
                    name: self.directory / f"{name}.csv"
                    for name in meta.get("figures", [])
                },
            ),
            dependencies=("run",),
            optional="postprocess" in optional,
        )
        if (self.directory / NOTEBOOK_FILE).is_file():
            graph.add(
                "visualize",
                MemoizedPayload(
                    fn=lambda ctx: self._run_notebook(ctx.result("run")),
                    key=task_fingerprint(
                        f"{self.experiment}/visualize",
                        {
                            "vars": variables,
                            "notebook": self._file_digest(NOTEBOOK_FILE),
                        },
                    ),
                    root=self.directory,
                    outputs=lambda value: {
                        "figure": self.directory / "figure.svg"
                    },
                    meta=lambda value: {},
                    restore=lambda meta: None,
                ),
                dependencies=("run",),
                optional="visualize" in optional,
            )
        graph.add(
            "validate",
            lambda ctx: self.run_validation(ctx.result("run")),
            dependencies=("run",),
            optional="validate" in optional,
        )
        return graph

    def _run_stages(
        self,
        tracer: Tracer,
        strict: bool,
        options: RunOptions | None = None,
    ) -> ExperimentResult:
        journal = tracer.journal
        variables = self.load_vars()
        graph = self.stage_graph(variables)
        with tracer.span(f"pipeline/run/{self.experiment}"):
            recap = self.scheduler.run(graph, tracer=tracer, options=options)
            # A failed stage fails the run; its dependents were skipped,
            # independent stages already finished and are journaled.
            # DEGRADED stages (declared optional in vars.yml) do not
            # raise: the run completes without their artifacts.
            recap.raise_first_error()

        stage_seconds = {
            stage: recap.outcomes[stage].seconds
            for stage in graph.ids()
            if recap.outcomes[stage].state is TaskState.OK
        }
        table = recap.value("run")
        figures = (
            recap.value("postprocess")
            if recap.outcome("postprocess").ok
            else {}
        )
        validations = (
            recap.value("validate") if recap.outcome("validate").ok else []
        )
        baseline_message = ""
        if "baseline" in graph and recap.outcome("baseline").ok:
            baseline_message = recap.value("baseline")[1]

        result = ExperimentResult(
            experiment=self.experiment,
            results=table,
            validations=validations,
            stage_seconds=stage_seconds,
            figures=dict(figures),
            baseline_message=baseline_message,
            degraded_stages=recap.degraded,
        )
        (self.directory / "validation_report.txt").write_text(
            result.report_text(), encoding="utf-8"
        )
        for validation in validations:
            if journal is not None:
                journal.event(
                    "aver_verdict",
                    assertion=validation.statement.source,
                    passed=validation.passed,
                    detail=validation.describe(),
                )
        for stage, seconds in stage_seconds.items():
            labels = {"experiment": self.experiment, "stage": stage}
            self.metrics.record("popper.stage_seconds", seconds, labels=labels)
            if journal is not None:
                journal.event(
                    "metric",
                    metric="popper.stage_seconds",
                    value=seconds,
                    labels=labels,
                )
        context = getattr(self, "_last_regression_context", None)
        if context is not None and journal is not None:
            for verdict in context.verdicts:
                journal.event(
                    "degradation",
                    metric=verdict.metric,
                    detector=verdict.detector,
                    change=verdict.change.value,
                    rate=verdict.rate,
                    confidence=verdict.confidence,
                )
            for note in context.notes:
                journal.event("degradation", note=note)
        if result.validated:
            # A healthy run's profile joins the baseline history (a
            # regressed/failed run must not poison future baselines —
            # the same rule the old rolling window applied).
            self._attach_profile(result, journal)
        if strict and not result.validated:
            raise ValidationFailure(
                f"{self.experiment}: domain-specific validations failed:\n"
                + result.report_text()
            )
        return result

    def _attach_profile(self, result: ExperimentResult, journal) -> None:
        """Attach this run's performance profile to the HEAD commit.

        Harvests stage timings from the metric store and numeric result
        columns from the results table (keys
        ``<experiment>/stage/<stage>`` and ``<experiment>/results/<col>``
        — the keys ``no_regression`` and ``popper perf`` resolve).
        Attachment failures are journaled, not raised: a completed run
        is worth more than its profile.
        """
        from repro.check.profiles import harvest_profile
        from repro.common.errors import ReproError

        try:
            head = self.repo.vcs.head_commit()
        except Exception:
            return
        if head is None:
            return
        try:
            profile = harvest_profile(
                head,
                store=self.metrics,
                meta={"experiment": self.experiment, **self.run_meta},
            )
            for column in result.results.columns:
                try:
                    values = result.results.numeric(column)
                except (TypeError, ValueError, KeyError):
                    continue  # string column: nothing to profile
                key = f"{self.experiment}/results/{column}"
                profile.series.setdefault(key, []).extend(
                    float(v) for v in values
                )
            path = self.repo.profile_history.attach(profile)
            if journal is not None:
                journal.event(
                    "profile_attached",
                    commit=head,
                    series=len(profile.series),
                    path=str(path),
                )
        except ReproError as exc:
            if journal is not None:
                journal.event("profile_error", error=str(exc))

    def validate_existing(self) -> ExperimentResult:
        """Re-validate a stored ``results.csv`` without re-running.

        A validated result still attaches its result-column series to
        HEAD: cache-restored runs (the common case for commits that do
        not touch ``vars.yml``) are byte-identical replays, so their
        results are a legitimate performance claim for the new commit —
        without this, only cache-miss commits would ever be profiled
        and ``popper perf`` would have nothing to compare.  Stage
        timings are not harvested here (nothing was timed).
        """
        path = self.directory / "results.csv"
        if not path.is_file():
            raise PopperError(
                f"{self.experiment}: no results.csv; run the experiment first"
            )
        table = MetricsTable.load_csv(path)
        validations = self.run_validation(table)
        result = ExperimentResult(
            experiment=self.experiment, results=table, validations=validations
        )
        if result.validated:
            self._attach_profile(result, None)
        return result
