"""The curated experiment-template registry (Listing 2 of the paper).

``popper experiment list`` prints exactly the templates the paper names::

    ceph-rados        proteustm  mpi-comm-variability
    cloverleaf        gassyfs    zlog
    spark-standalone  torpor     malacology

plus ``jupyter-bww`` from the weather use case.  Every template is fully
executable: it carries the experiment's parametrization (``vars.yml``
selecting a registered runner), its validation criteria
(``validations.aver``), orchestration (``setup.yml``), an entry point
(``run.sh``) and documentation — the artifact set self-containment
requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import minyaml
from repro.common.errors import TemplateNotFound
from repro.notebook import Notebook

__all__ = ["ExperimentTemplate", "TEMPLATES", "get_template", "list_templates"]


@dataclass(frozen=True)
class ExperimentTemplate:
    """A reusable, Popperized experiment."""

    name: str
    description: str
    runner: str
    files: tuple[tuple[str, str], ...]  # (relative path, content)

    def files_dict(self) -> dict[str, str]:
        return dict(self.files)


_PROCESS_SCALING = '''\
"""Post-processing: aggregate the scalability figure (mean time per
machine and node count).  Executed by the pipeline after the run; the
returned table is written to figure.csv."""


def process(results):
    return results.aggregate(["machine", "nodes"], "time")
'''

_PROCESS_TORPOR = '''\
"""Post-processing: per-class mean speedup (the variability profile's
class bands)."""


def process(results):
    return results.aggregate(["class"], "speedup")
'''

_PROCESS_MPI = '''\
"""Post-processing: mean wall time and MPI fraction per noise setting."""


def process(results):
    wall = results.aggregate(["noise"], "wall_time")
    mpi = results.aggregate(["noise"], "mpi_fraction")
    return {"figure": wall, "mpi_fraction": mpi}
'''

_PROCESS_IDENTITY = '''\
"""Post-processing: the analysis output is already figure-shaped."""


def process(results):
    return results
'''


def _notebook_for(runner: str, name: str) -> str:
    """The template's `visualize.nb.json`: renders figure.svg from results."""
    nb = Notebook(metadata={"experiment": name})
    nb.add_markdown(f"# {name}: post-mortem analysis\n\nRe-run me after "
                    "every experiment execution; I regenerate figure.svg.")
    if runner == "torpor-variability":
        nb.add_code(
            "by_class = results.aggregate(['class'], 'speedup')\n"
            "labels = by_class.column('class')\n"
            "values = by_class.column('speedup')\n"
        )
        nb.add_code(
            "svg = bar_chart_svg(labels, [round(v, 2) for v in values],\n"
            "                    title='mean speedup by stressor class')\n"
            "open(figure_path, 'w').write(svg)\n"
            "len(values)"
        )
    elif runner == "mpi-comm-variability":
        nb.add_code(
            "series = series_from_table(results, 'run', 'wall_time', group='noise')\n"
            "svg = line_chart_svg(series, title='LULESH wall time per run',\n"
            "                     x_label='run', y_label='wall time (s)')\n"
            "open(figure_path, 'w').write(svg)\n"
            "len(series)"
        )
    elif runner == "bww-airtemp":
        nb.add_code(
            "series = series_from_table(results, 'lat', 'temperature', group='season')\n"
            "svg = line_chart_svg(series, title='seasonal zonal-mean air temperature',\n"
            "                     x_label='latitude', y_label='K')\n"
            "open(figure_path, 'w').write(svg)\n"
            "len(series)"
        )
    else:  # scaling figure
        nb.add_code(
            "mean = results.aggregate(['machine', 'nodes'], 'time')\n"
            "series = series_from_table(mean, 'nodes', 'time', group='machine')\n"
            "svg = line_chart_svg(series, title='runtime vs cluster size',\n"
            "                     x_label='nodes', y_label='time (s)')\n"
            "open(figure_path, 'w').write(svg)\n"
            "len(series)"
        )
    return nb.to_json()


def _template(
    name: str,
    description: str,
    runner: str,
    variables: dict,
    validations: str,
    readme_extra: str = "",
    setup_packages: tuple[str, ...] = ("git", "make"),
    process_script: str | None = None,
) -> ExperimentTemplate:
    vars_doc = {"runner": runner, **variables}
    readme = (
        f"# {name}\n\n{description}\n\n"
        "This experiment follows the Popper convention: `vars.yml` holds the\n"
        "parametrization, `setup.yml` the orchestration, `validations.aver`\n"
        "the result-integrity assertions, and `datasets/` the referenced\n"
        "data dependencies. Run it with `popper run " + name + "` (or the\n"
        "checked-in `run.sh`).\n"
    )
    if readme_extra:
        readme += "\n" + readme_extra + "\n"
    setup = [
        {
            "name": f"provision {name}",
            "hosts": "all",
            "tasks": [
                {
                    "name": "install dependencies",
                    "package": {"name": list(setup_packages)},
                },
                {
                    "name": "record environment facts",
                    "command": {"cmd": "echo facts gathered"},
                },
            ],
        }
    ]
    run_sh = (
        "#!/bin/sh\n"
        "# Popper entry point: executes the experiment and validates results.\n"
        f"popper run {name}\n"
    )
    if process_script is None:
        by_runner = {
            "gassyfs-scaling": _PROCESS_SCALING,
            "generic-scaling": _PROCESS_SCALING,
            "torpor-variability": _PROCESS_TORPOR,
            "mpi-comm-variability": _PROCESS_MPI,
            "bww-airtemp": _PROCESS_IDENTITY,
        }
        process_script = by_runner.get(runner, _PROCESS_IDENTITY)
    files = (
        ("README.md", readme),
        ("vars.yml", minyaml.dumps(vars_doc)),
        ("setup.yml", minyaml.dumps(setup)),
        ("run.sh", run_sh),
        ("validations.aver", validations),
        ("process-result.py", process_script),
        ("visualize.nb.json", _notebook_for(runner, name)),
        (
            "datasets/README.md",
            "Data dependencies are referenced here as data packages\n"
            "(`dpm install <name>@<version>`), never committed directly.\n",
        ),
    )
    return ExperimentTemplate(
        name=name, description=description, runner=runner, files=files
    )


_SUBLINEAR = (
    "-- the paper's Listing 3: scaling must be sublinear on every\n"
    "-- (workload, machine) combination\n"
    "when workload=* and machine=*\n"
    "expect sublinear(nodes, time)\n"
)


TEMPLATES: dict[str, ExperimentTemplate] = {
    t.name: t
    for t in [
        _template(
            "gassyfs",
            "Scalability of the GassyFS in-memory file system compiling Git "
            "across multiple platforms (the paper's Fig. gassyfs-git).",
            "gassyfs-scaling",
            {
                "node_counts": [1, 2, 4, 8],
                "sites": ["cloudlab-wisc", "ec2"],
                "workloads": ["git-compile"],
                "placement": "round-robin",
                "block_size": 1048576,
                "seed": 42,
            },
            _SUBLINEAR
            + "\nwhen workload=* and machine=*\nexpect monotonic_dec(nodes, time)\n",
            setup_packages=("gassyfs", "gasnet", "fuse", "git", "make", "gcc"),
        ),
        _template(
            "torpor",
            "Cross-platform performance-variability profile: stress-ng "
            "speedups of a CloudLab node vs a 10-year-old Xeon "
            "(ASPLOS Fig. torpor-variability).",
            "torpor-variability",
            {"runs": 3, "seed": 42},
            "-- every stressor must speed up on the newer machine\n"
            "expect speedup > 1\n"
            "\n-- integer-ALU stressors cluster tightly\n"
            "when class='cpu'\nexpect constant(speedup, 0.1)\n",
            setup_packages=("stress-ng",),
        ),
        _template(
            "mpi-comm-variability",
            "LULESH communication-time variability under noisy neighbors, "
            "profiled with mpiP (ASPLOS use case 5.3).",
            "mpi-comm-variability",
            {"side": 3, "iterations": 40, "runs": 10, "seed": 42},
            "-- sanity: both noise settings produce full run series\n"
            "when noise=* expect count() >= 5\n"
            "\n-- runs never complete instantaneously\nexpect wall_time > 0\n",
            setup_packages=("openmpi", "mpip", "lulesh"),
        ),
        _template(
            "jupyter-bww",
            "Big Weather Web air-temperature analysis over a referenced "
            "NCEP/NCAR-Reanalysis-style data package (ASPLOS use case 5.4).",
            "bww-airtemp",
            {"years": 1, "lat_step": 5.0, "lon_step": 5.0, "seed": 42},
            "-- temperatures stay physical (Kelvin)\n"
            "expect within(temperature, 180, 330)\n"
            "\n-- every season is represented across the latitude grid\n"
            "when season=* expect count() >= 10\n",
            setup_packages=("python3", "jupyter", "dpm"),
        ),
        _template(
            "ceph-rados",
            "RADOS object-store style streaming benchmark: storage-heavy "
            "scale-out workload.",
            "generic-scaling",
            {
                "workload": "rados-bench",
                "serial_ops": 5e8,
                "parallel_ops": 2e10,
                "mem_bytes_per_op": 0.3,
                "net_bytes_per_node": 6e8,
                "storage_bytes": 4e10,
                "fp_fraction": 0.05,
                "node_counts": [1, 2, 4, 8],
                "sites": ["cloudlab-wisc"],
                "seed": 42,
            },
            _SUBLINEAR,
            setup_packages=("gcc", "make"),
        ),
        _template(
            "cloverleaf",
            "CloverLeaf hydrodynamics mini-app: FP-heavy stencil scaling.",
            "generic-scaling",
            {
                "workload": "cloverleaf",
                "serial_ops": 2e9,
                "parallel_ops": 8e10,
                "mem_bytes_per_op": 0.5,
                "net_bytes_per_node": 3e8,
                "fp_fraction": 0.9,
                "node_counts": [1, 2, 4, 8, 16],
                "sites": ["hpc"],
                "seed": 42,
            },
            _SUBLINEAR,
            setup_packages=("openmpi", "gcc", "make"),
        ),
        _template(
            "spark-standalone",
            "Spark-standalone style shuffle-heavy analytics job.",
            "generic-scaling",
            {
                "workload": "spark-sort",
                "serial_ops": 1e9,
                "parallel_ops": 8e10,
                "mem_bytes_per_op": 0.4,
                "net_bytes_per_node": 2e8,
                "fp_fraction": 0.1,
                "node_counts": [1, 2, 4, 8],
                "sites": ["ec2"],
                "seed": 42,
            },
            _SUBLINEAR
            + "\nwhen workload=* and machine=*\nexpect monotonic_dec(nodes, time)\n",
            setup_packages=("python3",),
        ),
        _template(
            "zlog",
            "ZLog distributed shared-log append throughput.",
            "generic-scaling",
            {
                "workload": "zlog-append",
                "serial_ops": 2e8,
                "parallel_ops": 1e10,
                "mem_bytes_per_op": 0.2,
                "net_bytes_per_node": 1.5e9,
                "storage_bytes": 5e9,
                "fp_fraction": 0.0,
                "node_counts": [1, 2, 4, 8],
                "sites": ["cloudlab-wisc"],
                "seed": 42,
            },
            _SUBLINEAR,
            setup_packages=("gcc", "make"),
        ),
        _template(
            "proteustm",
            "ProteusTM transactional-memory sensitivity study "
            "(single-node, multi-thread).",
            "generic-scaling",
            {
                "workload": "proteustm",
                "serial_ops": 3e9,
                "parallel_ops": 2e10,
                "mem_bytes_per_op": 0.4,
                "net_bytes_per_node": 0.0,
                "fp_fraction": 0.2,
                "node_counts": [1, 2, 4],
                "sites": ["cloudlab-wisc"],
                "seed": 42,
            },
            _SUBLINEAR,
            setup_packages=("gcc", "make"),
        ),
        _template(
            "malacology",
            "Malacology programmable-storage interface benchmark.",
            "generic-scaling",
            {
                "workload": "malacology",
                "serial_ops": 1e9,
                "parallel_ops": 1.5e10,
                "mem_bytes_per_op": 0.3,
                "net_bytes_per_node": 9e8,
                "storage_bytes": 2e10,
                "fp_fraction": 0.05,
                "node_counts": [1, 2, 4, 8],
                "sites": ["cloudlab-wisc"],
                "seed": 42,
            },
            _SUBLINEAR,
            setup_packages=("gcc", "make"),
        ),
    ]
}


def get_template(name: str) -> ExperimentTemplate:
    try:
        return TEMPLATES[name]
    except KeyError:
        raise TemplateNotFound(
            f"no template {name!r}; available: {', '.join(sorted(TEMPLATES))}"
        ) from None


def list_templates() -> list[ExperimentTemplate]:
    """Templates in the display order of the paper's Listing 2."""
    order = [
        "ceph-rados", "proteustm", "mpi-comm-variability",
        "cloverleaf", "gassyfs", "zlog",
        "spark-standalone", "torpor", "malacology",
        "jupyter-bww",
    ]
    return [TEMPLATES[name] for name in order]
