"""The sweep job: one experiment of ``popper run``, as a picklable unit.

``popper run --all -jN`` executes experiments as tasks of a
:class:`~repro.engine.TaskGraph`.  The in-process schedulers can run any
callable, but the :class:`~repro.engine.ProcessScheduler` ships each
task's payload to a worker *process* — so the payload must survive
``pickle``, which rules out the closures the CLI historically built.

:class:`SweepExperimentJob` is that payload as plain data: the
repository root and the run's knobs.  Everything heavyweight or
unpicklable — the open repository, stores, the live
:class:`~repro.engine.CancelToken` — is reconstructed (or simply absent)
on the far side:

* the worker reopens the repository from ``repo_root`` and rebuilds the
  retry policy and per-experiment fault plan from their specs (fault
  seeds derive per experiment name, exactly as the CLI derives them);
* the cancel token only exists in the parent process, so under the
  process backend a signal drains at whole-experiment granularity —
  in-flight experiments finish and checkpoint; under in-process
  backends :meth:`bind` supplies the shared repo and token and
  cancellation additionally drains at stage granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import derive_seed
from repro.core.pipeline import ExperimentPipeline, ExperimentResult
from repro.core.repo import PopperRepository
from repro.engine import CancelToken, FaultPlan, RetryPolicy

__all__ = ["SweepExperimentJob"]


@dataclass
class SweepExperimentJob:
    """Run one experiment end to end; the sweep graph's task payload."""

    repo_root: str
    name: str
    strict: bool = False
    resume: bool = False
    validate_only: bool = False
    retries: int = 0
    task_timeout: float | None = None
    fault_spec: str | None = None
    fault_seed: int = 42
    use_cache: bool = True
    backend: str = "serial"
    workers: int = 1

    def bind(
        self,
        repo: PopperRepository | None = None,
        cancel: CancelToken | None = None,
    ) -> "SweepExperimentJob":
        """Attach in-process-only collaborators (not pickled).

        The CLI binds its open repository and live cancel token so the
        serial/threaded backends share them; a process-backend worker
        unpickles the job without them and reconstructs what it needs.
        """
        self._repo = repo
        self._cancel = cancel
        return self

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_repo", None)
        state.pop("_cancel", None)
        return state

    def _fault_plan(self) -> FaultPlan | None:
        if not self.fault_spec:
            return None
        # One plan per experiment: stage ids ("run", "setup") repeat
        # across experiments, and sharing one plan's counters would let
        # the first experiment consume every injected failure.
        return FaultPlan.parse(
            self.fault_spec,
            seed=derive_seed(self.fault_seed, "faults", self.name),
        )

    def __call__(self, ctx) -> ExperimentResult:
        repo = getattr(self, "_repo", None)
        if repo is None:
            repo = PopperRepository.open(self.repo_root)
        pipeline = ExperimentPipeline(
            repo,
            self.name,
            retry=(
                RetryPolicy(max_attempts=self.retries + 1, seed=self.fault_seed)
                if self.retries
                else None
            ),
            timeout_s=self.task_timeout,
            faults=self._fault_plan(),
            artifact_store=repo.artifact_store if self.use_cache else None,
            cancel=getattr(self, "_cancel", None),
            run_meta={
                "backend": self.backend,
                "workers": self.workers,
                # The effective injection seed, so any run's journal
                # header says how to reproduce its fault/crash schedule.
                "seed": self.fault_seed,
            },
        )
        if self.validate_only:
            return pipeline.validate_existing()
        return pipeline.run(strict=self.strict, resume=self.resume)
