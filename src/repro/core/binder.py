"""Binder-style post-mortem notebook re-execution.

Figure 3 of the paper has readers inspect results "post-mortem" through
Jupyter/Binder without re-running experiments.  :func:`rerun_notebooks`
is that path: for every experiment with stored results and an analysis
notebook, execute the notebook against ``results.csv`` (regenerating
``figure.svg``) and report per-experiment success — no experiment
re-execution involved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PopperError
from repro.common.tables import MetricsTable
from repro.core.pipeline import NOTEBOOK_FILE
from repro.core.repo import PopperRepository
from repro.figures import bar_chart_svg, line_chart_svg, series_from_table
from repro.notebook import Notebook, execute

__all__ = ["NotebookStatus", "rerun_notebooks"]


@dataclass(frozen=True)
class NotebookStatus:
    """Outcome of re-running one experiment's analysis notebook."""

    experiment: str
    ran: bool          # False when results or notebook are absent
    ok: bool
    detail: str = ""


def rerun_notebooks(repo: PopperRepository) -> list[NotebookStatus]:
    """Re-execute every experiment's ``visualize.nb.json`` on its stored
    results (the reader's interactive-inspection path)."""
    statuses: list[NotebookStatus] = []
    for experiment in repo.experiments():
        directory = repo.experiment_dir(experiment)
        notebook_path = directory / NOTEBOOK_FILE
        results_path = directory / "results.csv"
        if not notebook_path.is_file():
            statuses.append(
                NotebookStatus(experiment, ran=False, ok=True, detail="no notebook")
            )
            continue
        if not results_path.is_file():
            statuses.append(
                NotebookStatus(
                    experiment, ran=False, ok=False, detail="no stored results"
                )
            )
            continue
        try:
            table = MetricsTable.load_csv(results_path)
            notebook = Notebook.load(notebook_path)
        except Exception as exc:
            statuses.append(
                NotebookStatus(experiment, ran=False, ok=False, detail=str(exc))
            )
            continue
        run = execute(
            notebook,
            namespace={
                "results": table,
                "figure_path": str(directory / "figure.svg"),
                "MetricsTable": MetricsTable,
                "series_from_table": series_from_table,
                "line_chart_svg": line_chart_svg,
                "bar_chart_svg": bar_chart_svg,
            },
        )
        statuses.append(
            NotebookStatus(
                experiment,
                ran=True,
                ok=run.ok,
                detail=(run.first_error or "").strip().splitlines()[-1]
                if run.first_error
                else "",
            )
        )
    if not statuses:
        raise PopperError("repository has no experiments")
    return statuses
