"""``popper check`` — convention-compliance checking.

Self-containment (§"Popper") demands that every experiment carries, in
the repository: experiment code, orchestration code, data-dependency
references, parametrization, validation criteria and (once run) results.
The checker verifies each item and reports per-experiment findings; CI
runs it on every commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.common import minyaml
from repro.common.errors import YamlError
from repro.core.config import CONFIG_NAME
from repro.core.repo import PopperRepository

__all__ = ["Finding", "ComplianceReport", "check_repository", "check_experiment"]


@dataclass(frozen=True)
class Finding:
    """One compliance problem."""

    scope: str      # "repository" or the experiment name
    severity: str   # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.scope}: {self.message}"


@dataclass
class ComplianceReport:
    """All findings for one repository."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def compliant(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        if not self.findings:
            return "repository is Popper-compliant\n"
        lines = [str(f) for f in self.findings]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines) + "\n"


_REQUIRED_FILES = {
    "vars.yml": "parametrization",
    "setup.yml": "orchestration code",
    "run.sh": "experiment entry point",
    "validations.aver": "validation criteria",
}


def check_experiment(directory: Path, name: str) -> list[Finding]:
    """Compliance findings for one experiment folder."""
    findings: list[Finding] = []
    if not directory.is_dir():
        return [
            Finding(name, "error", "registered in .popper.yml but folder missing")
        ]
    for filename, role in _REQUIRED_FILES.items():
        if not (directory / filename).is_file():
            findings.append(
                Finding(name, "error", f"missing {filename} ({role})")
            )
    vars_path = directory / "vars.yml"
    if vars_path.is_file():
        try:
            doc = minyaml.load_file(vars_path)
            if not isinstance(doc, dict) or "runner" not in doc:
                findings.append(
                    Finding(name, "error", "vars.yml must declare a 'runner'")
                )
        except YamlError as exc:
            findings.append(Finding(name, "error", f"vars.yml unparsable: {exc}"))
    if not (directory / "datasets").is_dir():
        findings.append(
            Finding(name, "warning", "no datasets/ folder (data references)")
        )
    if not (directory / "results.csv").is_file():
        findings.append(
            Finding(name, "warning", "no results.csv yet (experiment never ran)")
        )
    if not (directory / "README.md").is_file():
        findings.append(Finding(name, "warning", "no README.md"))
    return findings


def check_repository(repo: PopperRepository) -> ComplianceReport:
    """Compliance findings for the whole repository."""
    report = ComplianceReport()
    root = repo.root
    if not (root / CONFIG_NAME).is_file():  # pragma: no cover - open() enforces
        report.findings.append(
            Finding("repository", "error", f"missing {CONFIG_NAME}")
        )
    if not (root / ".travis.yml").is_file():
        report.findings.append(
            Finding("repository", "error", "missing .travis.yml (CI integrity checks)")
        )
    if not (root / "paper").is_dir():
        report.findings.append(
            Finding("repository", "warning", "missing paper/ folder")
        )
    if not (root / "README.md").is_file():
        report.findings.append(
            Finding("repository", "warning", "missing README.md")
        )
    # experiments present on disk but not registered
    if repo.experiments_dir.is_dir():
        on_disk = {
            p.name for p in repo.experiments_dir.iterdir() if p.is_dir()
        }
        unregistered = on_disk - set(repo.config.experiments)
        for name in sorted(unregistered):
            report.findings.append(
                Finding(name, "warning", "folder exists but not in .popper.yml")
            )
    for name in repo.experiments():
        report.findings.extend(
            check_experiment(repo.experiment_dir(name), name)
        )
    status = repo.vcs.status()
    if status.untracked:
        report.findings.append(
            Finding(
                "repository",
                "warning",
                f"{len(status.untracked)} untracked file(s) — artifacts must "
                "be versioned to be referenceable",
            )
        )
    return report
