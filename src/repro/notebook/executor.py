"""Notebook execution: shared namespace, captured outputs, CI-friendly.

:func:`execute` runs a notebook's code cells top to bottom in one
namespace (like "Restart & Run All"), capturing per-cell stdout and the
value of a trailing expression.  A cell that raises stops execution and
marks the run failed — exactly the signal a CI integrity check needs.
"""

from __future__ import annotations

import ast
import contextlib
import io
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.notebook.model import Notebook

__all__ = ["CellResult", "RunResult", "execute"]


@dataclass(frozen=True)
class CellResult:
    """Outcome of one executed code cell."""

    index: int
    source: str
    stdout: str
    value: Any
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class RunResult:
    """Outcome of a full notebook run."""

    results: list[CellResult] = field(default_factory=list)
    namespace: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def first_error(self) -> str | None:
        for result in self.results:
            if result.error is not None:
                return result.error
        return None


def _run_cell(source: str, namespace: dict) -> tuple[str, Any, str | None]:
    """Execute one cell; returns (stdout, value, error)."""
    stdout = io.StringIO()
    value: Any = None
    try:
        tree = ast.parse(source, mode="exec")
    except SyntaxError:
        return "", None, traceback.format_exc(limit=0)
    # If the last statement is an expression, evaluate it separately so
    # its value is captured (the notebook "Out[n]" behaviour).
    trailing: ast.Expression | None = None
    if tree.body and isinstance(tree.body[-1], ast.Expr):
        trailing = ast.Expression(tree.body.pop().value)
    try:
        with contextlib.redirect_stdout(stdout):
            exec(compile(tree, "<cell>", "exec"), namespace)
            if trailing is not None:
                value = eval(compile(trailing, "<cell>", "eval"), namespace)
    except Exception:
        return stdout.getvalue(), None, traceback.format_exc(limit=2)
    return stdout.getvalue(), value, None


def execute(
    notebook: Notebook,
    namespace: dict | None = None,
    stop_on_error: bool = True,
) -> RunResult:
    """Run every code cell of *notebook*.

    *namespace* seeds the execution environment (how the pipeline hands
    an experiment's ``results`` table to its analysis notebook).
    """
    env: dict = {"__name__": "__popper_notebook__"}
    if namespace:
        env.update(namespace)
    run = RunResult(namespace=env)
    for index, cell in enumerate(notebook.cells):
        if not cell.is_code:
            continue
        stdout, value, error = _run_cell(cell.source, env)
        run.results.append(
            CellResult(
                index=index,
                source=cell.source,
                stdout=stdout,
                value=value,
                error=error,
            )
        )
        if error is not None and stop_on_error:
            break
    return run
