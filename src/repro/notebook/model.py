"""A minimal executable-notebook format (the Jupyter substitution).

The convention's analysis/visualization category stores post-mortem
analysis as notebooks that readers can re-execute.  A
:class:`Notebook` is an ordered list of markdown and code cells with a
JSON on-disk format (a deliberate subset of ``.ipynb``); the executor in
:mod:`repro.notebook.executor` runs the code cells in one shared
namespace, capturing stdout and the last expression of each cell —
enough for CI to verify "the post-processing routines can be executed
without problems".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ReproError

__all__ = ["Cell", "Notebook", "NotebookError"]


class NotebookError(ReproError):
    """Malformed notebook document or cell."""


_CELL_TYPES = ("markdown", "code")


@dataclass(frozen=True)
class Cell:
    """One notebook cell."""

    cell_type: str
    source: str

    def __post_init__(self) -> None:
        if self.cell_type not in _CELL_TYPES:
            raise NotebookError(f"unknown cell type: {self.cell_type!r}")

    @property
    def is_code(self) -> bool:
        return self.cell_type == "code"


@dataclass
class Notebook:
    """An ordered collection of cells plus document metadata."""

    cells: list[Cell] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    # -- construction ------------------------------------------------------------
    def add_markdown(self, text: str) -> "Notebook":
        self.cells.append(Cell("markdown", text))
        return self

    def add_code(self, source: str) -> "Notebook":
        self.cells.append(Cell("code", source))
        return self

    @property
    def code_cells(self) -> list[Cell]:
        return [c for c in self.cells if c.is_code]

    # -- serialization ------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "nbformat": 4,
                "metadata": self.metadata,
                "cells": [
                    {"cell_type": c.cell_type, "source": c.source}
                    for c in self.cells
                ],
            },
            indent=1,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Notebook":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise NotebookError(f"bad notebook JSON: {exc}") from exc
        if not isinstance(doc, dict) or "cells" not in doc:
            raise NotebookError("notebook document needs a 'cells' list")
        cells = []
        for raw in doc["cells"]:
            try:
                source = raw["source"]
                if isinstance(source, list):  # ipynb stores line lists
                    source = "".join(source)
                cells.append(Cell(raw["cell_type"], source))
            except (KeyError, TypeError) as exc:
                raise NotebookError(f"bad cell: {raw!r}") from exc
        return cls(cells=cells, metadata=doc.get("metadata") or {})

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Notebook":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
