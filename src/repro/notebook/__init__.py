"""Executable notebooks (the Jupyter/Binder substitution): an
ipynb-subset document model plus a run-all executor for post-mortem
analysis that CI can re-verify.
"""

from repro.notebook.executor import CellResult, RunResult, execute
from repro.notebook.model import Cell, Notebook, NotebookError

__all__ = ["Notebook", "Cell", "NotebookError", "execute", "RunResult", "CellResult"]
