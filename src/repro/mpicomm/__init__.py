"""Simulated MPI, the LULESH proxy app, mpiP-style profiling and the
noisy-neighborhood variability experiment (ASPLOS use case §5.3).
"""

from repro.mpicomm.experiment import (
    VariabilityStats,
    run_noise_experiment,
    variability_stats,
)
from repro.mpicomm.lulesh import LuleshConfig, LuleshRun, cube_neighbors, run_lulesh
from repro.mpicomm.mpi import CommEvent, SimComm
from repro.mpicomm.mpip import CallsiteStats, MpiPReport, profile

__all__ = [
    "SimComm",
    "CommEvent",
    "MpiPReport",
    "CallsiteStats",
    "profile",
    "LuleshConfig",
    "LuleshRun",
    "cube_neighbors",
    "run_lulesh",
    "run_noise_experiment",
    "variability_stats",
    "VariabilityStats",
]
