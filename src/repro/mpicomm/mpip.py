"""mpiP-style communication profiling.

mpiP attributes MPI time to call sites and reports, per site, the share
of aggregate application time spent inside MPI.  :class:`MpiPReport`
computes the same breakdown from a :class:`~repro.mpicomm.mpi.SimComm`'s
event log — app%, MPI%, top call sites — and exports the rows the
analysis notebook/figure consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MPIError
from repro.common.tables import MetricsTable
from repro.mpicomm.mpi import SimComm

__all__ = ["CallsiteStats", "MpiPReport", "profile"]


@dataclass(frozen=True)
class CallsiteStats:
    """Aggregate statistics for one call site."""

    callsite: str
    op: str
    calls: int
    total_time: float          # sum over ranks of (wait + cost)
    mean_bytes: float
    share_of_mpi: float        # fraction of all MPI time

    def __str__(self) -> str:
        return (
            f"{self.callsite:<20} {self.op:<12} calls={self.calls:<6} "
            f"time={self.total_time:.4f}s mpi%={self.share_of_mpi * 100:.1f}"
        )


@dataclass(frozen=True)
class MpiPReport:
    """The summary mpiP prints at ``MPI_Finalize``."""

    ranks: int
    wall_time: float
    app_time: float            # aggregate rank-seconds
    mpi_time: float            # aggregate rank-seconds inside MPI
    callsites: tuple[CallsiteStats, ...]

    @property
    def mpi_fraction(self) -> float:
        """Share of aggregate time spent in MPI (mpiP's headline number)."""
        return self.mpi_time / self.app_time if self.app_time else 0.0

    def top_callsites(self, n: int = 5) -> list[CallsiteStats]:
        return list(self.callsites[:n])

    def dominant_callsite(self) -> CallsiteStats:
        if not self.callsites:
            raise MPIError("no MPI activity recorded")
        return self.callsites[0]

    def to_table(self) -> MetricsTable:
        table = MetricsTable(
            ["callsite", "op", "calls", "total_time", "mean_bytes", "share_of_mpi"]
        )
        for cs in self.callsites:
            table.append(
                {
                    "callsite": cs.callsite,
                    "op": cs.op,
                    "calls": cs.calls,
                    "total_time": cs.total_time,
                    "mean_bytes": cs.mean_bytes,
                    "share_of_mpi": cs.share_of_mpi,
                }
            )
        return table


def profile(comm: SimComm) -> MpiPReport:
    """Build the report from a finished communicator."""
    wall = comm.wall_time
    app_aggregate = wall * comm.size
    per_site: dict[str, dict] = {}
    mpi_total = 0.0
    for event in comm.events:
        site = per_site.setdefault(
            event.callsite,
            {"op": event.op, "calls": 0, "time": 0.0, "bytes": []},
        )
        event_time = float(np.sum(event.waits)) + event.cost * comm.size
        site["calls"] += 1
        site["time"] += event_time
        site["bytes"].append(event.bytes_per_rank)
        mpi_total += event_time
    stats = [
        CallsiteStats(
            callsite=name,
            op=data["op"],
            calls=data["calls"],
            total_time=data["time"],
            mean_bytes=float(np.mean(data["bytes"])) if data["bytes"] else 0.0,
            share_of_mpi=(data["time"] / mpi_total) if mpi_total else 0.0,
        )
        for name, data in per_site.items()
    ]
    stats.sort(key=lambda s: s.total_time, reverse=True)
    return MpiPReport(
        ranks=comm.size,
        wall_time=wall,
        app_time=app_aggregate,
        mpi_time=mpi_total,
        callsites=tuple(stats),
    )
