"""A LULESH-like shock-hydrodynamics proxy application.

LULESH decomposes a cubic domain over ``k^3`` ranks; each timestep does
local element work (compute), exchanges halo faces with up to six
neighbors, and runs global reductions to pick the next timestep.  The
proxy reproduces that communication skeleton over :class:`SimComm`,
which is all the paper's use case needs: the *variability* of the
communication time across repeated runs under OS/neighbor noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MPIError
from repro.common.rng import SeedSequenceFactory
from repro.mpicomm.mpi import SimComm
from repro.mpicomm.mpip import MpiPReport, profile
from repro.platform.perfmodel import KernelDemand, execution_time
from repro.platform.sites import Node

__all__ = ["LuleshConfig", "LuleshRun", "cube_neighbors", "run_lulesh"]


def cube_neighbors(k: int) -> dict[int, list[int]]:
    """Face-adjacency of a k x k x k rank grid."""
    if k < 1:
        raise MPIError("cube side must be >= 1")
    neighbors: dict[int, list[int]] = {}
    for z in range(k):
        for y in range(k):
            for x in range(k):
                rank = (z * k + y) * k + x
                peers = []
                for dx, dy, dz in (
                    (1, 0, 0), (-1, 0, 0),
                    (0, 1, 0), (0, -1, 0),
                    (0, 0, 1), (0, 0, -1),
                ):
                    nx, ny, nz = x + dx, y + dy, z + dz
                    if 0 <= nx < k and 0 <= ny < k and 0 <= nz < k:
                        peers.append((nz * k + ny) * k + nx)
                neighbors[rank] = peers
    return neighbors


@dataclass(frozen=True)
class LuleshConfig:
    """Problem parametrization (the experiment's ``vars.yml``)."""

    side: int = 3                 # rank grid side: ranks = side**3
    elements_per_rank: int = 27_000  # 30^3 local problem
    iterations: int = 60
    ops_per_element: float = 2_500.0  # FP work per element per step
    halo_bytes_per_face: int = 30 * 30 * 8 * 3  # doubles, 3 fields
    dt_reductions: int = 2        # global allreduces per step

    @property
    def ranks(self) -> int:
        return self.side**3

    def __post_init__(self) -> None:
        if self.side < 1 or self.iterations < 1:
            raise MPIError("bad LULESH configuration")


@dataclass(frozen=True)
class LuleshRun:
    """One completed run."""

    config: LuleshConfig
    wall_time: float
    report: MpiPReport

    @property
    def mpi_fraction(self) -> float:
        return self.report.mpi_fraction


def run_lulesh(
    config: LuleshConfig,
    nodes: list[Node],
    seeds: SeedSequenceFactory,
    run_id: int = 0,
    noise_injection: bool = False,
    noisy_rank_fraction: float = 0.2,
) -> LuleshRun:
    """Execute the proxy app once over *nodes* (one rank per node entry).

    With *noise_injection* on, a random subset of ranks suffers
    noisy-neighbor interference: extra per-step delays that collectives
    convert into global wait time — the phenomenon the original
    experiment (`bhatele_there_2013`) chases.
    """
    if len(nodes) < config.ranks:
        raise MPIError(
            f"need {config.ranks} nodes for side={config.side}, got {len(nodes)}"
        )
    ranks = config.ranks
    comm = SimComm(nodes[:ranks])
    rng = seeds.rng("lulesh", run_id)
    neighbors = cube_neighbors(config.side)

    demand = KernelDemand(
        ops=config.elements_per_rank * config.ops_per_element,
        fp_fraction=0.85,
        mem_bytes=config.elements_per_rank * 8 * 12,
        working_set_kib=config.elements_per_rank * 8 * 12 / 1024,
    )
    base_compute = np.array(
        [
            execution_time(demand, node.spec) / node.speed_factor
            for node in nodes[:ranks]
        ]
    )

    noisy_ranks: set[int] = set()
    if noise_injection:
        count = max(1, int(round(noisy_rank_fraction * ranks)))
        noisy_ranks = set(rng.choice(ranks, size=count, replace=False).tolist())

    for _step in range(config.iterations):
        jitter = 1.0 + 0.01 * rng.standard_normal(ranks)
        step_compute = base_compute * np.clip(jitter, 0.9, 1.1)
        comm.compute(step_compute)
        if noise_injection:
            for rank in noisy_ranks:
                # Heavy-tailed interference burst.
                if rng.random() < 0.6:
                    burst = float(
                        rng.gamma(shape=2.0, scale=0.35 * base_compute[rank])
                    )
                    comm.delay(rank, burst)
        comm.neighbor_exchange(
            neighbors, config.halo_bytes_per_face, callsite="lulesh.c:1520-halo"
        )
        for r in range(config.dt_reductions):
            comm.allreduce(8, callsite=f"lulesh.c:23{r}0-dtcourant")

    return LuleshRun(config=config, wall_time=comm.wall_time, report=profile(comm))
