"""The MPI noisy-neighborhood characterization experiment (ASPLOS §5.3).

Runs the LULESH proxy repeatedly on an HPC allocation with and without
noisy-neighbor injection, measuring run-to-run variability of wall time
and MPI fraction.  This regenerates the figure the paper promised for
the final version: communication-time spread across executions, with the
root cause visible in the mpiP call-site attribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import SeedSequenceFactory
from repro.common.tables import MetricsTable
from repro.monitor.tracing import current_tracer
from repro.mpicomm.lulesh import LuleshConfig, run_lulesh
from repro.platform.sites import Site, default_sites

__all__ = ["VariabilityStats", "run_noise_experiment", "variability_stats"]


@dataclass(frozen=True)
class VariabilityStats:
    """Spread statistics for one (noise setting) series of runs."""

    noise: bool
    runs: int
    mean_wall: float
    cov_wall: float            # std/mean of wall time
    mean_mpi_fraction: float
    max_over_min: float

    def __str__(self) -> str:
        return (
            f"noise={'on' if self.noise else 'off'} runs={self.runs} "
            f"wall={self.mean_wall:.3f}s cov={self.cov_wall:.3%} "
            f"mpi%={self.mean_mpi_fraction:.1%}"
        )


def run_noise_experiment(
    config: LuleshConfig | None = None,
    site: Site | None = None,
    runs: int = 10,
    seed: int = 42,
) -> MetricsTable:
    """Execute the full experiment; rows: (noise, run, wall_time,
    mpi_fraction, dominant_callsite)."""
    config = config or LuleshConfig()
    site = site or default_sites(seed)["hpc"]
    seeds = SeedSequenceFactory(seed)
    table = MetricsTable(
        ["noise", "run", "ranks", "wall_time", "mpi_fraction", "dominant_callsite"]
    )
    for noise in (False, True):
        with current_tracer().span(
            "mpicomm/setting", noise=noise, runs=runs, ranks=config.ranks
        ):
            for run_id in range(runs):
                with site.allocate(config.ranks) as allocation:
                    result = run_lulesh(
                        config,
                        list(allocation),
                        seeds.child("noise" if noise else "clean"),
                        run_id=run_id,
                        noise_injection=noise,
                    )
                _append_run(table, config, noise, run_id, result)
    return table


def _append_run(
    table: MetricsTable, config: LuleshConfig, noise: bool, run_id: int, result
) -> None:
    table.append(
        {
            "noise": noise,
            "run": run_id,
            "ranks": config.ranks,
            "wall_time": result.wall_time,
            "mpi_fraction": result.mpi_fraction,
            "dominant_callsite": result.report.dominant_callsite().callsite,
        }
    )


def variability_stats(table: MetricsTable, noise: bool) -> VariabilityStats:
    """Summarize one noise setting's series."""
    sub = table.where_equals(noise=noise)
    wall = sub.numeric("wall_time")
    fractions = sub.numeric("mpi_fraction")
    return VariabilityStats(
        noise=noise,
        runs=len(sub),
        mean_wall=float(wall.mean()),
        cov_wall=float(wall.std(ddof=1) / wall.mean()) if len(sub) > 1 else 0.0,
        mean_mpi_fraction=float(fractions.mean()),
        max_over_min=float(wall.max() / wall.min()),
    )
