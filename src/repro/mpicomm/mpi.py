"""A simulated MPI communicator with a latency/bandwidth cost model.

The API follows mpi4py's shape (``Get_rank``-style spellings dropped in
favour of properties, but the operation set — point-to-point, ``bcast``,
``reduce``, ``allreduce``, ``allgather``, ``barrier`` — is the one the
LULESH proxy app uses).  Rather than running P processes, the simulator
keeps a per-rank virtual clock: compute phases advance individual
clocks, communication operations synchronize them according to standard
cost models (Hockney α-β for point-to-point, logarithmic trees for
collectives).  The gap between a rank's clock and the synchronization
point is exactly the *MPI wait time* an mpiP profile attributes to the
call site — which is the measurement the paper's HPC use case is about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MPIError
from repro.platform.sites import Node

__all__ = ["CommEvent", "SimComm"]


@dataclass(frozen=True)
class CommEvent:
    """One recorded communication operation (feeds the mpiP profiler)."""

    op: str
    callsite: str
    bytes_per_rank: int
    start: float            # max clock at entry (sync point basis)
    cost: float             # modeled operation cost after sync
    waits: tuple[float, ...]  # per-rank wait (sync - own clock)


class SimComm:
    """``MPI_COMM_WORLD`` over a set of simulated nodes."""

    def __init__(self, nodes: list[Node], seed_rng: np.random.Generator | None = None):
        if not nodes:
            raise MPIError("communicator needs at least one rank")
        self.nodes = list(nodes)
        self._clock = np.zeros(len(nodes), dtype=np.float64)
        self.events: list[CommEvent] = []
        self._rng = seed_rng
        # Hockney parameters derived from the slowest member's NIC.
        specs = [n.spec for n in nodes]
        self.alpha = max(s.net_lat_us for s in specs) * 1e-6
        self.beta = 1.0 / min(s.net_bytes_per_sec for s in specs)

    # -- introspection -------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def clocks(self) -> np.ndarray:
        """Per-rank virtual clocks (copy)."""
        return self._clock.copy()

    @property
    def wall_time(self) -> float:
        """Elapsed wall time of the simulated program so far."""
        return float(self._clock.max())

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} out of range (size {self.size})")

    # -- compute ----------------------------------------------------------------------
    def compute(self, per_rank_seconds: np.ndarray | list[float] | float) -> None:
        """Advance every rank's clock by its local compute time."""
        times = np.broadcast_to(
            np.asarray(per_rank_seconds, dtype=np.float64), (self.size,)
        )
        if np.any(times < 0):
            raise MPIError("negative compute time")
        self._clock = self._clock + times

    def delay(self, rank: int, seconds: float) -> None:
        """Inject an external delay (noise) on one rank."""
        self._check_rank(rank)
        if seconds < 0:
            raise MPIError("negative delay")
        self._clock[rank] += seconds

    # -- point-to-point ------------------------------------------------------------------
    def send_recv(self, src: int, dst: int, nbytes: int, callsite: str = "SendRecv") -> float:
        """A matched send/recv pair; returns the operation cost."""
        self._check_rank(src)
        self._check_rank(dst)
        if nbytes < 0:
            raise MPIError(f"negative message size: {nbytes}")
        if src == dst:
            return 0.0
        start = float(max(self._clock[src], self._clock[dst]))
        cost = self.alpha + nbytes * self.beta
        waits = tuple(
            start - float(self._clock[r]) if r in (src, dst) else 0.0
            for r in range(self.size)
        )
        self._clock[src] = start + cost
        self._clock[dst] = start + cost
        self.events.append(
            CommEvent(
                op="SendRecv",
                callsite=callsite,
                bytes_per_rank=nbytes,
                start=start,
                cost=cost,
                waits=waits,
            )
        )
        return cost

    # -- collectives ----------------------------------------------------------------------
    def _collective(self, op: str, callsite: str, nbytes: int, cost: float) -> float:
        start = float(self._clock.max())
        waits = tuple(float(start - c) for c in self._clock)
        self._clock[:] = start + cost
        self.events.append(
            CommEvent(
                op=op,
                callsite=callsite,
                bytes_per_rank=nbytes,
                start=start,
                cost=cost,
                waits=waits,
            )
        )
        return cost

    def barrier(self, callsite: str = "Barrier") -> float:
        cost = np.ceil(np.log2(max(self.size, 2))) * self.alpha
        return self._collective("Barrier", callsite, 0, float(cost))

    def bcast(self, nbytes: int, root: int = 0, callsite: str = "Bcast") -> float:
        self._check_rank(root)
        steps = np.ceil(np.log2(max(self.size, 2)))
        cost = steps * (self.alpha + nbytes * self.beta)
        return self._collective("Bcast", callsite, nbytes, float(cost))

    def reduce(self, nbytes: int, root: int = 0, callsite: str = "Reduce") -> float:
        self._check_rank(root)
        steps = np.ceil(np.log2(max(self.size, 2)))
        cost = steps * (self.alpha + nbytes * self.beta)
        return self._collective("Reduce", callsite, nbytes, float(cost))

    def allreduce(self, nbytes: int, callsite: str = "Allreduce") -> float:
        # Rabenseifner-style: reduce-scatter + allgather.
        steps = np.ceil(np.log2(max(self.size, 2)))
        cost = 2 * steps * self.alpha + 2 * nbytes * self.beta
        return self._collective("Allreduce", callsite, nbytes, float(cost))

    def allgather(self, nbytes: int, callsite: str = "Allgather") -> float:
        steps = np.ceil(np.log2(max(self.size, 2)))
        cost = steps * self.alpha + (self.size - 1) * nbytes * self.beta
        return self._collective("Allgather", callsite, nbytes, float(cost))

    def neighbor_exchange(
        self,
        neighbors: dict[int, list[int]],
        nbytes: int,
        callsite: str = "HaloExchange",
    ) -> float:
        """Simultaneous halo exchange: each rank syncs with its neighborhood
        then pays for its face traffic."""
        for rank, peers in neighbors.items():
            self._check_rank(rank)
            for peer in peers:
                self._check_rank(peer)
        before = self._clock.copy()
        sync = np.array(
            [
                max(
                    [before[r]] + [before[p] for p in neighbors.get(r, [])]
                )
                for r in range(self.size)
            ]
        )
        degree = np.array(
            [len(neighbors.get(r, [])) for r in range(self.size)], dtype=np.float64
        )
        cost_vec = degree * self.alpha + degree * nbytes * self.beta
        waits = tuple(float(s - b) for s, b in zip(sync, before))
        self._clock = sync + cost_vec
        self.events.append(
            CommEvent(
                op="HaloExchange",
                callsite=callsite,
                bytes_per_rank=nbytes,
                start=float(sync.max()),
                cost=float(cost_vec.max()),
                waits=waits,
            )
        )
        return float(cost_vec.max())

    # -- accounting ---------------------------------------------------------------------------
    def mpi_time_per_rank(self) -> np.ndarray:
        """Total MPI time (wait + operation cost) attributed to each rank."""
        total = np.zeros(self.size)
        for event in self.events:
            total += np.asarray(event.waits)
            total += event.cost
        return total
