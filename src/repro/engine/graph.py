"""Tasks and the task graph: the declarative half of the execution engine.

Every execution layer in this reproduction — pipeline stages, whole
experiments under ``popper run --all``, CI matrix jobs, playbook host
fan-out — is a set of units of work with dependencies between some of
them.  Collective Knowledge (SysML'19) and MLDev (2021) make the same
observation for experiment automation generally: model the lifecycle as
an explicit graph and drive it from one engine instead of hand-rolling a
sequential loop per layer.

A :class:`Task` is one unit: an id, the ids it depends on, and a payload
callable.  A :class:`TaskGraph` owns a set of tasks and answers the
structural questions (are all dependencies known? is the graph acyclic?
what can run now?).  Scheduling — serial or threaded — lives in
:mod:`repro.engine.scheduler`; results come back as a
:class:`GraphResult` recap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Iterator, Mapping

from repro.common.errors import EngineError
from repro.engine.resilience import RetryPolicy

__all__ = [
    "Task",
    "TaskContext",
    "TaskGraph",
    "ReadySet",
    "TaskState",
    "TaskOutcome",
    "GraphResult",
]


class TaskState(str, enum.Enum):
    """Lifecycle of one task inside a graph run."""

    PENDING = "pending"
    RUNNING = "running"
    OK = "ok"
    #: The task did not execute: its fingerprint hit the artifact index
    #: and its outputs were materialized from the content store (see
    #: :mod:`repro.engine.cache`).  Counts as success everywhere OK does.
    CACHED = "cached"
    FAILED = "failed"
    SKIPPED = "skipped"
    #: An *optional* task failed: the run is degraded, not broken —
    #: dependents still run and exit codes do not flip.
    DEGRADED = "degraded"
    #: The run was interrupted (Ctrl-C / BaseException) mid-task; the
    #: outcome is recorded so the journal accounts for in-flight work.
    ABORTED = "aborted"


@dataclass(frozen=True)
class TaskContext:
    """What a payload sees when it runs: its id and its inputs.

    ``results`` maps each *direct* dependency's id to the value that
    dependency's payload returned — the data-flow edge of the graph.
    ``states`` maps every direct dependency to its
    :class:`TaskState`; a DEGRADED dependency (an optional task that
    failed) appears in ``states`` but carries no value.
    """

    task_id: str
    results: Mapping[str, Any]
    states: Mapping[str, "TaskState"] = field(
        default_factory=lambda: MappingProxyType({})
    )

    def result(self, task_id: str) -> Any:
        """The value dependency *task_id* produced.

        Raises :class:`EngineError` naming the task and its state when
        the dependency is undeclared or did not succeed — never a bare
        ``KeyError``.
        """
        if task_id in self.results:
            return self.results[task_id]
        if task_id in self.states:
            state = self.states[task_id]
            raise EngineError(
                f"task {self.task_id!r}: dependency {task_id!r} is "
                f"{state.value}; no value is available"
            )
        raise EngineError(
            f"task {self.task_id!r} did not declare a dependency on {task_id!r}"
        )


#: A payload receives the :class:`TaskContext` and returns the task's value.
Payload = Callable[[TaskContext], Any]


@dataclass(frozen=True)
class Task:
    """One schedulable unit: id, dependency ids, payload.

    The resilience fields are all opt-in:

    * ``retry`` — a per-task :class:`~repro.engine.resilience.RetryPolicy`
      (overrides the run-level default);
    * ``timeout_s`` — per-task deadline (overrides the run-level default);
    * ``optional`` — a failure yields DEGRADED instead of FAILED:
      dependents still run and ``GraphResult.ok`` stays true;
    * ``fingerprint`` — checkpoint key (see :mod:`repro.engine.runstate`);
      tasks without one are never checkpointed or restored;
    * ``checkpoint`` — maps the task's value to the JSON detail persisted
      in the run state (return ``None`` to mark the outcome
      non-cacheable, e.g. a CI job that ran but failed its steps);
    * ``restore`` — rebuilds a value from persisted detail on resume
      (e.g. re-reading ``results.csv``); raising falls back to
      re-executing the payload.
    """

    id: str
    payload: Payload
    dependencies: tuple[str, ...] = ()
    description: str = ""
    retry: RetryPolicy | None = None
    timeout_s: float | None = None
    optional: bool = False
    fingerprint: str | None = None
    checkpoint: Callable[[Any], dict | None] | None = None
    restore: Callable[[dict], Any] | None = None

    def __post_init__(self) -> None:
        if not self.id:
            raise EngineError("task id required")
        if self.id in self.dependencies:
            raise EngineError(f"task {self.id!r} depends on itself")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise EngineError(
                f"task {self.id!r}: timeout must be positive, got {self.timeout_s}"
            )


class TaskGraph:
    """An insertion-ordered DAG of tasks.

    Insertion order is meaningful: when several tasks are ready at once,
    schedulers start them in the order they were added, which is what
    makes :class:`~repro.engine.scheduler.SerialScheduler` deterministic.
    """

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}

    # -- construction ------------------------------------------------------------
    def add(
        self,
        task_or_id: Task | str,
        payload: Payload | None = None,
        dependencies: tuple[str, ...] | list[str] = (),
        description: str = "",
        **task_fields: Any,
    ) -> Task:
        """Add a :class:`Task` (or build one from id + payload).

        Extra keyword arguments (``retry``, ``timeout_s``, ``optional``,
        ``fingerprint``, ``checkpoint``, ``restore``) pass through to the
        :class:`Task` constructor.
        """
        if isinstance(task_or_id, Task):
            if task_fields:
                raise EngineError(
                    "pass task fields on the Task, not to add(); got "
                    f"{sorted(task_fields)}"
                )
            task = task_or_id
        else:
            if payload is None:
                raise EngineError(f"task {task_or_id!r} needs a payload")
            task = Task(
                id=task_or_id,
                payload=payload,
                dependencies=tuple(dependencies),
                description=description,
                **task_fields,
            )
        if task.id in self._tasks:
            raise EngineError(f"duplicate task id {task.id!r}")
        self._tasks[task.id] = task
        return task

    # -- lookup ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def ids(self) -> list[str]:
        return list(self._tasks)

    def task(self, task_id: str) -> Task:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise EngineError(f"no such task {task_id!r}") from None

    def dependents(self, task_id: str) -> list[str]:
        """Ids of tasks that *directly* depend on ``task_id``."""
        return [t.id for t in self if task_id in t.dependencies]

    def downstream(self, task_id: str) -> set[str]:
        """All transitive dependents of ``task_id`` (not including it)."""
        out: set[str] = set()
        frontier = [task_id]
        while frontier:
            current = frontier.pop()
            for dep_id in self.dependents(current):
                if dep_id not in out:
                    out.add(dep_id)
                    frontier.append(dep_id)
        return out

    # -- structural checks -------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`EngineError` on unknown dependencies or cycles."""
        for task in self:
            for dep in task.dependencies:
                if dep not in self._tasks:
                    raise EngineError(
                        f"task {task.id!r} depends on unknown task {dep!r}"
                    )
        self.topological_levels()  # raises on cycles

    def topological_levels(self) -> list[list[str]]:
        """Kahn's algorithm, grouped into levels.

        Level 0 holds tasks with no dependencies; level *n* holds tasks
        whose dependencies all sit in levels < *n* — the tasks inside one
        level are mutually independent and may run concurrently.  Raises
        :class:`EngineError` when the graph has a cycle.
        """
        remaining = {t.id: set(t.dependencies) for t in self}
        levels: list[list[str]] = []
        done: set[str] = set()
        while remaining:
            level = [tid for tid, deps in remaining.items() if deps <= done]
            if not level:
                cycle = sorted(remaining)
                raise EngineError(f"task graph has a cycle among {cycle}")
            levels.append(level)
            done.update(level)
            for tid in level:
                del remaining[tid]
        return levels


class ReadySet:
    """Tracks which tasks are ready as their dependencies complete.

    The scheduler's bookkeeping core: :meth:`take_ready` hands out every
    task whose dependencies are all satisfied (each task is handed out
    once, in graph insertion order); :meth:`complete` marks a task's
    dependents one step closer to ready; :meth:`discard` removes tasks
    that will never run (failure propagation).
    """

    def __init__(self, graph: TaskGraph) -> None:
        self._waiting: dict[str, set[str]] = {
            t.id: set(t.dependencies) for t in graph
        }

    @property
    def exhausted(self) -> bool:
        """True when every task has been handed out or discarded."""
        return not self._waiting

    def pending(self) -> list[str]:
        """Tasks not yet handed out, in insertion order."""
        return list(self._waiting)

    def take_ready(self) -> list[str]:
        """Pop and return every currently-ready task id, in order."""
        ready = [tid for tid, deps in self._waiting.items() if not deps]
        for tid in ready:
            del self._waiting[tid]
        return ready

    def complete(self, task_id: str) -> list[str]:
        """Record a successful completion; return newly-ready task ids."""
        for deps in self._waiting.values():
            deps.discard(task_id)
        return self.take_ready()

    def discard(self, task_ids: set[str]) -> None:
        """Drop tasks that will never become ready (skipped downstream)."""
        for tid in task_ids:
            self._waiting.pop(tid, None)


@dataclass
class TaskOutcome:
    """How one task ended: state, value or error, and wall seconds."""

    task_id: str
    state: TaskState
    value: Any = None
    error: BaseException | None = None
    seconds: float = 0.0
    #: For SKIPPED tasks: the id of the failed task that doomed this one.
    blamed_on: str | None = None
    #: How many attempts the task took (1 unless a retry policy fired).
    attempts: int = 1
    #: True when the outcome was restored from a run-state checkpoint
    #: instead of executing the payload (``--resume``).
    restored: bool = False
    #: Persisted checkpoint detail (from the task's ``checkpoint``
    #: callback, or the run-state record a restore came from).
    detail: dict | None = None

    @property
    def ok(self) -> bool:
        return self.state in (TaskState.OK, TaskState.CACHED)

    def describe(self) -> str:
        if self.state is TaskState.CACHED:
            return f"{self.task_id}: cached ({self.seconds:.3f}s)"
        if self.state is TaskState.OK:
            suffix = " [restored]" if self.restored else (
                f" [{self.attempts} attempts]" if self.attempts > 1 else ""
            )
            return f"{self.task_id}: ok ({self.seconds:.3f}s){suffix}"
        if self.state is TaskState.SKIPPED:
            return f"{self.task_id}: skipped (upstream {self.blamed_on} failed)"
        if self.state is TaskState.DEGRADED:
            return f"{self.task_id}: degraded (optional task failed: {self.error})"
        return f"{self.task_id}: {self.state.value} ({self.error})"


@dataclass
class GraphResult:
    """The recap of one graph run: every task's outcome plus wall time.

    ``outcomes`` is keyed by task id in *completion* order (which varies
    under the threaded scheduler); use the graph's own ordering when a
    stable iteration is needed.
    """

    outcomes: dict[str, TaskOutcome] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every task is OK, CACHED or DEGRADED."""
        return all(
            o.state in (TaskState.OK, TaskState.CACHED, TaskState.DEGRADED)
            for o in self.outcomes.values()
        )

    def ids(self, state: TaskState) -> list[str]:
        return [tid for tid, o in self.outcomes.items() if o.state is state]

    @property
    def succeeded(self) -> list[str]:
        return self.ids(TaskState.OK)

    @property
    def failed(self) -> list[str]:
        return self.ids(TaskState.FAILED)

    @property
    def skipped(self) -> list[str]:
        return self.ids(TaskState.SKIPPED)

    @property
    def degraded(self) -> list[str]:
        return self.ids(TaskState.DEGRADED)

    @property
    def cached(self) -> list[str]:
        return self.ids(TaskState.CACHED)

    @property
    def aborted(self) -> list[str]:
        return self.ids(TaskState.ABORTED)

    def outcome(self, task_id: str) -> TaskOutcome:
        try:
            return self.outcomes[task_id]
        except KeyError:
            raise EngineError(f"no outcome for task {task_id!r}") from None

    def value(self, task_id: str) -> Any:
        """The value a task returned; raises unless the task is OK/CACHED."""
        outcome = self.outcome(task_id)
        if outcome.state not in (TaskState.OK, TaskState.CACHED):
            raise EngineError(
                f"task {task_id!r} did not succeed: {outcome.describe()}"
            )
        return outcome.value

    def raise_first_error(self) -> None:
        """Re-raise the first failed task's exception (no-op when ok)."""
        for outcome in self.outcomes.values():
            if outcome.state is TaskState.FAILED and outcome.error is not None:
                raise outcome.error

    def recap(self) -> str:
        """A ``PLAY RECAP``-style human summary, one line per task."""
        counts = (
            f"{len(self.succeeded)} ok, {len(self.failed)} failed, "
            f"{len(self.skipped)} skipped"
        )
        if self.cached:
            counts += f", {len(self.cached)} cached"
        if self.degraded:
            counts += f", {len(self.degraded)} degraded"
        if self.aborted:
            counts += f", {len(self.aborted)} aborted"
        lines = [
            f"graph: {len(self.outcomes)} tasks: {counts} "
            f"(wall {self.wall_seconds:.3f}s)"
        ]
        for outcome in self.outcomes.values():
            lines.append("  " + outcome.describe())
        return "\n".join(lines)
