"""Run state: the checkpoint file that makes sweeps resumable.

An aborted sweep should not restart from scratch — the HotOS XIX
reproducibility panel calls partial re-runs one of the two dominant
practical obstacles to artifact re-evaluation.  A :class:`RunStateStore`
persists one JSONL record per finished task, keyed by a *task
fingerprint* (payload identity + parameters hash, see
:func:`task_fingerprint`), to a ``run-state.jsonl`` next to the run's
``journal.jsonl``.  Records are appended and flushed as tasks finish, so
a killed run keeps everything it completed.

On ``popper run --resume`` / ``popper ci --resume`` the store is
reloaded and the scheduler short-circuits any task whose fingerprint has
a successful record: the task is *restored* (its value rebuilt by the
task's ``restore`` callback, e.g. re-reading ``results.csv`` from disk)
instead of re-executed.  Failed and skipped tasks have no successful
record and re-run.  A fingerprint covers the task's parameters, so
editing ``vars.yml`` invalidates the checkpoint automatically.
"""

from __future__ import annotations

import json
import threading
import warnings
from pathlib import Path
from typing import Any

from repro.common.errors import EngineError
from repro.common.groupcommit import GroupCommitWriter
from repro.common.hashing import sha256_text
from repro.common.locking import RepoLock

__all__ = ["RUN_STATE_FILE", "task_fingerprint", "RunStateStore"]

#: Default run-state file name (lands next to ``journal.jsonl``).
RUN_STATE_FILE = "run-state.jsonl"


def task_fingerprint(task_id: str, params: Any = None) -> str:
    """A stable identity for "this task with these parameters".

    Hashes the task id plus a canonical JSON rendering of *params*
    (sorted keys; non-JSON values fall back to ``str``).  Two runs
    agree on a fingerprint exactly when they would execute the same
    payload with the same inputs — the condition under which a stored
    outcome may stand in for a re-execution.
    """
    if not task_id:
        raise EngineError("task_fingerprint: task id required")
    payload = json.dumps(
        {"task": task_id, "params": params}, sort_keys=True, default=str
    )
    return sha256_text(payload)[:16]


class RunStateStore:
    """Append-only JSONL checkpoint of per-task outcomes.

    Constructing with ``resume=False`` (a fresh run) truncates any state
    a previous run left; ``resume=True`` loads the existing records
    (last record per fingerprint wins) and appends.  Writes are
    lock-protected (both against sibling threads and, via a
    :class:`~repro.common.locking.RepoLock`, against other processes
    sharing the file) and land as single flushed lines through a
    :class:`~repro.common.groupcommit.GroupCommitWriter`: every record
    survives a process kill the moment :meth:`record` returns, while
    the durable (machine-crash) fsync barrier is group-committed — one
    fsync per bounded window instead of one per record, committed
    explicitly on :meth:`flush`/:meth:`close`.  A power cut can lose at
    most the last unsynced window of records (those tasks simply
    re-run on resume) and can tear at most the trailing record.

    A torn trailing line is exactly what a killed run leaves behind, so
    the loader skips it with a warning and counts it in :attr:`skipped`;
    garbage *before* the tail means the file was edited or corrupted and
    still raises :class:`~repro.common.errors.EngineError`.
    """

    def __init__(
        self, path: str | Path, resume: bool = False, durable: bool = True
    ) -> None:
        self.path = Path(path)
        self.resume = bool(resume)
        self.durable = bool(durable)
        self._lock = threading.Lock()
        self._records: dict[str, dict[str, Any]] = {}
        #: Unparseable trailing lines skipped during load (0 or 1).
        self.skipped = 0
        if self.resume and self.path.is_file():
            lines = self.path.read_text(encoding="utf-8").splitlines()
            last = len(lines)
            for lineno, line in enumerate(lines, start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    if lineno == last:
                        warnings.warn(
                            f"{self.path}: skipping torn trailing "
                            f"run-state line {lineno} (crashed append); "
                            "the interrupted task will re-run",
                            stacklevel=2,
                        )
                        self.skipped += 1
                        continue
                    raise EngineError(
                        f"{self.path}:{lineno}: bad run-state line: {exc}"
                    ) from exc
                if isinstance(record, dict) and record.get("fingerprint"):
                    self._records[str(record["fingerprint"])] = record
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._iplock = RepoLock(
            self.path.with_name(self.path.name + ".lock"), label="run-state"
        )
        # fresh=True truncates separately, then appends: an append-mode
        # handle can never overwrite a concurrent writer's records.
        self._writer: GroupCommitWriter | None = GroupCommitWriter(
            self.path,
            durable=self.durable,
            fresh=not self.resume,
            crash_label="runstate.append",
        )

    # -- reading -----------------------------------------------------------------
    def lookup(self, fingerprint: str) -> dict[str, Any] | None:
        """The restorable record for *fingerprint*, if any.

        Only successful, cacheable outcomes are restorable; failed or
        explicitly non-cacheable records return ``None`` so the task
        re-runs.
        """
        record = self._records.get(fingerprint)
        if record is None:
            return None
        if record.get("state") != "ok" or not record.get("cacheable", True):
            return None
        return record

    def states(self) -> dict[str, str]:
        """fingerprint -> recorded state, for reporting."""
        return {fp: str(r.get("state", "?")) for fp, r in self._records.items()}

    def __len__(self) -> int:
        return len(self._records)

    # -- writing -----------------------------------------------------------------
    def record(
        self,
        task_id: str,
        fingerprint: str,
        state: str,
        seconds: float = 0.0,
        attempts: int = 1,
        detail: dict[str, Any] | None = None,
        error: str = "",
        cacheable: bool = True,
    ) -> dict[str, Any]:
        """Append one task outcome; returns the record as written."""
        record: dict[str, Any] = {
            "task": task_id,
            "fingerprint": fingerprint,
            "state": state,
            "seconds": round(float(seconds), 6),
            "attempts": int(attempts),
            "cacheable": bool(cacheable),
        }
        if detail is not None:
            record["detail"] = detail
        if error:
            record["error"] = error
        with self._lock:
            if self._writer is None:
                raise EngineError(f"run-state store {self.path} is closed")
            with self._iplock:
                self._writer.append(json.dumps(record, sort_keys=False))
            self._records[fingerprint] = record
        return record

    def flush(self) -> None:
        """Commit the open group-commit window (fsync when durable)."""
        with self._lock:
            if self._writer is not None:
                self._writer.flush()

    def close(self) -> None:
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None

    def __enter__(self) -> "RunStateStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
