"""Signal-safe shutdown: turn SIGINT/SIGTERM into a cooperative drain.

A killed sweep must not lose the work it already finished — the whole
point of the run-state checkpoint is that an interrupted evaluation
resumes instead of restarting.  The dangerous window is *between* the
signal and the exit: a handler that raises ``KeyboardInterrupt`` at an
arbitrary bytecode boundary can land mid-``os.replace`` or mid-append
and leave exactly the torn state the crash-consistency layer exists to
prevent.

So shutdown here is cooperative:

* a :class:`CancelToken` is a thread-safe "stop now" flag;
* :class:`GracefulShutdown` installs SIGINT/SIGTERM handlers (main
  thread only — ``signal.signal`` is illegal elsewhere, and the CI
  executor runs pipelines on worker threads) that *set the token*
  instead of raising;
* the schedulers check the token between tasks: in-flight tasks drain
  and checkpoint normally, no new work starts, and the run raises
  :class:`RunCancelled` once quiescent;
* the CLI maps the cancellation to the conventional ``128 + signum``
  exit code (130 for SIGINT, 143 for SIGTERM), so wrappers and CI can
  tell "interrupted, resumable" from "failed".

A second signal while draining restores the default handler, so a
stuck payload can still be killed the blunt way.
"""

from __future__ import annotations

import signal
import threading
from typing import Any

__all__ = [
    "EXIT_SIGINT",
    "EXIT_SIGTERM",
    "CancelToken",
    "GracefulShutdown",
    "RunCancelled",
]

#: Conventional exit codes: 128 + signal number.
EXIT_SIGINT = 128 + signal.SIGINT  # 130
EXIT_SIGTERM = 128 + signal.SIGTERM  # 143


class RunCancelled(BaseException):
    """The run was cancelled by a signal (or an explicit token).

    Deliberately a ``BaseException``: payload code that catches broad
    ``Exception`` (retry loops, degradation paths) must not absorb a
    shutdown request.
    """

    def __init__(self, signum: int | None = None) -> None:
        name = (
            signal.Signals(signum).name
            if signum is not None
            else "cancel token"
        )
        super().__init__(f"run cancelled by {name}")
        self.signum = signum

    def __reduce__(self):
        # Default exception pickling replays the formatted message into
        # ``__init__(signum)``; spell out the real constructor argument
        # so a cancellation can cross a process boundary intact.
        return (RunCancelled, (self.signum,))

    @property
    def exit_code(self) -> int:
        """The conventional shell exit code for this cancellation."""
        return 128 + self.signum if self.signum else EXIT_SIGINT


class CancelToken:
    """A thread-safe cancellation flag, optionally carrying a signal."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._signum: int | None = None

    def cancel(self, signum: int | None = None) -> None:
        """Request cancellation (idempotent; first signal wins)."""
        if self._signum is None:
            self._signum = signum
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def signum(self) -> int | None:
        return self._signum

    def raise_if_cancelled(self) -> None:
        """Raise :class:`RunCancelled` when the token is set."""
        if self._event.is_set():
            raise RunCancelled(self._signum)


class GracefulShutdown:
    """Context manager: route SIGINT/SIGTERM into a :class:`CancelToken`.

    ::

        token = CancelToken()
        with GracefulShutdown(token) as guard:
            result = scheduler.run(graph, options=RunOptions(cancel=token))
        ...
        # RunCancelled propagates here; exit with guard.exit_code

    Off the main thread (where ``signal.signal`` raises ``ValueError``)
    the manager degrades to a no-op pass-through: the token still works
    when cancelled programmatically, only the signal routing is absent.
    That keeps in-process embeddings (the CI executor runs ``popper``
    mains on worker threads) working unchanged.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, token: CancelToken | None = None) -> None:
        self.token = token if token is not None else CancelToken()
        self.installed = False
        self._previous: dict[int, Any] = {}

    def _handler(self, signum: int, frame: Any) -> None:
        first = not self.token.cancelled
        self.token.cancel(signum)
        if first:
            return
        # Second signal: the user means it — fall back to the default
        # disposition so a wedged payload can still be killed.
        self._restore()
        signal.raise_signal(signum)

    def _restore(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover - teardown race
                pass
        self._previous.clear()
        self.installed = False

    def __enter__(self) -> "GracefulShutdown":
        if threading.current_thread() is threading.main_thread():
            try:
                for signum in self.SIGNALS:
                    self._previous[signum] = signal.signal(
                        signum, self._handler
                    )
                self.installed = True
            except ValueError:  # pragma: no cover - exotic embeddings
                self._restore()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._restore()

    @property
    def exit_code(self) -> int:
        """128 + the received signal (130/143); 0 when never signalled."""
        signum = self.token.signum
        return 128 + signum if signum else 0
