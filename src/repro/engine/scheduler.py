"""Schedulers: execute a :class:`~repro.engine.graph.TaskGraph`.

Two interchangeable backends run the same graph:

* :class:`SerialScheduler` — one task at a time, in deterministic
  (insertion, dependency-respecting) order.  The debugging backend: a
  failure's traceback is exactly where it happened and journals read
  top-to-bottom.
* :class:`ThreadedScheduler` — a ``concurrent.futures`` thread pool of
  ``max_workers``; every task whose dependencies are satisfied runs
  concurrently with its peers.  Because the simulated workloads are
  deterministic functions of their seeds, both backends produce
  bit-identical experiment results — only wall-clock and journal event
  interleaving differ.

Semantics shared by both backends:

* **Tracing** — every task executes inside a ``task/<id>`` span.  The
  span's parent is the span that was active on the *calling* thread when
  :meth:`Scheduler.run` was entered, so a parallel run still journals as
  one tree and ``popper trace`` renders a correct critical path.  The
  caller's ambient tracer is re-activated on worker threads, so payload
  code that calls :func:`~repro.monitor.tracing.current_tracer` lands its
  spans in the right journal even under concurrency.
* **Failure propagation** — a task that raises is recorded as FAILED
  with its exception; every transitive dependent is recorded as SKIPPED
  (with the failed task blamed); tasks on independent branches keep
  running.  :meth:`~repro.engine.graph.GraphResult.raise_first_error`
  re-raises for callers that want fail-stop behavior.
* **Resilience** — a :class:`RunOptions` bundle (or per-task fields on
  :class:`~repro.engine.graph.Task`) adds retries with deterministic
  backoff, per-task deadlines, graceful degradation of *optional* tasks
  to DEGRADED (dependents still run), checkpoint/resume through a
  :class:`~repro.engine.runstate.RunStateStore`, and deterministic fault
  injection via a :class:`~repro.engine.faults.FaultPlan`.  When a retry
  policy allows more than one attempt, each attempt runs in a
  ``task/<id>/attempt-N`` child span and journals an ``attempt`` event.
* **Abort accounting** — a ``BaseException`` (Ctrl-C, ``SystemExit``)
  inside a payload is *not* swallowed: the task is recorded as ABORTED
  (outcome, ``task_aborted`` journal event, run-state record) and the
  exception re-raises to the caller, so an interrupted run's journal
  still accounts for the in-flight task.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from types import MappingProxyType

from repro.common.errors import EngineError
from repro.engine.cache import CacheAwarePayload
from repro.engine.faults import FaultPlan
from repro.engine.graph import (
    GraphResult,
    ReadySet,
    Task,
    TaskContext,
    TaskGraph,
    TaskOutcome,
    TaskState,
)
from repro.engine.resilience import NO_RETRY, RetryPolicy, call_with_timeout
from repro.engine.runstate import RunStateStore
from repro.engine.shutdown import CancelToken, RunCancelled
from repro.store import ArtifactStore
from repro.monitor.tracing import Span, Tracer, activate, current_tracer

__all__ = [
    "BACKENDS",
    "RunOptions",
    "Scheduler",
    "SerialScheduler",
    "ThreadedScheduler",
    "resolve_backend",
]

#: Backend names accepted by ``popper run --backend`` / :func:`resolve_backend`.
BACKENDS = ("auto", "serial", "threaded", "process")


@dataclass(frozen=True)
class RunOptions:
    """Run-level resilience defaults, overridable per task.

    * ``retry`` — default :class:`RetryPolicy` for tasks that do not set
      their own (``None`` means fail-stop, :data:`NO_RETRY`);
    * ``timeout_s`` — default per-task deadline (``None`` = no deadline);
    * ``faults`` — a :class:`FaultPlan` applied before every attempt;
    * ``run_state`` — a :class:`RunStateStore`; tasks carrying a
      ``fingerprint`` are checkpointed into it and, on resume, restored
      from it instead of re-executing;
    * ``artifact_store`` — an :class:`~repro.store.ArtifactStore`; tasks
      whose payload implements
      :class:`~repro.engine.cache.CacheAwarePayload` consult its
      artifact index before executing, and a fingerprint hit
      materializes the recorded outputs instead of running the payload
      (cross-run memoization; the task completes as ``CACHED``);
    * ``cancel`` — a :class:`~repro.engine.shutdown.CancelToken`; the
      schedulers check it between tasks, drain in-flight work (which
      checkpoints normally) and raise
      :class:`~repro.engine.shutdown.RunCancelled` once quiescent —
      the cooperative half of signal-safe shutdown.
    """

    retry: RetryPolicy | None = None
    timeout_s: float | None = None
    faults: FaultPlan | None = None
    run_state: RunStateStore | None = None
    artifact_store: ArtifactStore | None = None
    cancel: CancelToken | None = None


#: The zero-cost default: no retries, no deadline, no faults, no state.
DEFAULT_OPTIONS = RunOptions()


class Scheduler:
    """Common machinery; subclasses choose the execution strategy."""

    #: Human-readable backend name (lands in span attributes and benches).
    backend = "abstract"

    def run(
        self,
        graph: TaskGraph,
        tracer: Tracer | None = None,
        options: RunOptions | None = None,
    ) -> GraphResult:
        """Execute every task; never raises for payload failures.

        *tracer* defaults to the calling thread's ambient tracer; pass
        one explicitly to journal task spans into a specific run.
        *options* carries the run-level resilience defaults.
        """
        graph.validate()
        eff_tracer = tracer if tracer is not None else current_tracer()
        eff_options = options if options is not None else DEFAULT_OPTIONS
        parent = eff_tracer.current()
        started = time.perf_counter()
        result = GraphResult()
        try:
            self._execute(graph, result, eff_tracer, parent, eff_options)
        finally:
            result.wall_seconds = time.perf_counter() - started
        return result

    # -- strategy hook -----------------------------------------------------------
    def _execute(
        self,
        graph: TaskGraph,
        result: GraphResult,
        tracer: Tracer,
        parent: Span | None,
        options: RunOptions,
    ) -> None:
        raise NotImplementedError

    # -- shared pieces -----------------------------------------------------------
    def _run_task(
        self,
        task: Task,
        result: GraphResult,
        tracer: Tracer,
        parent: Span | None,
        options: RunOptions,
    ) -> TaskOutcome:
        """Run one payload inside its ``task/<id>`` span.

        Called on whatever thread executes the task; re-activates the
        caller's tracer there so ambient instrumentation nests correctly.
        An abort (``BaseException`` that is not an ``Exception``) records
        an ABORTED outcome directly into *result* and re-raises.
        """
        dep_outcomes = {dep: result.outcomes[dep] for dep in task.dependencies}
        ctx = TaskContext(
            task_id=task.id,
            results={
                dep: o.value
                for dep, o in dep_outcomes.items()
                if o.state in (TaskState.OK, TaskState.CACHED)
            },
            states=MappingProxyType(
                {dep: o.state for dep, o in dep_outcomes.items()}
            ),
        )
        journal = tracer.journal
        cached = self._try_cache(task, options, journal)
        if cached is not None:
            return cached
        restored = self._try_restore(task, options, journal)
        if restored is not None:
            return restored
        policy = task.retry if task.retry is not None else (
            options.retry if options.retry is not None else NO_RETRY
        )
        timeout_s = (
            task.timeout_s if task.timeout_s is not None else options.timeout_s
        )
        started = time.perf_counter()
        attempt = 0
        try:
            with activate(tracer):
                with tracer.span(
                    f"task/{task.id}", parent=parent, scheduler=self.backend
                ) as task_span:
                    value = None
                    while True:
                        attempt += 1
                        try:
                            value = self._attempt(
                                task, ctx, tracer, task_span, policy,
                                timeout_s, options.faults, attempt, journal,
                            )
                        except Exception as exc:
                            if attempt < policy.max_attempts and policy.retryable(exc):
                                time.sleep(policy.delay_s(task.id, attempt))
                                continue
                            raise
                        break
            outcome = TaskOutcome(
                task_id=task.id,
                state=TaskState.OK,
                value=value,
                seconds=time.perf_counter() - started,
                attempts=attempt,
            )
        except Exception as exc:
            outcome = TaskOutcome(
                task_id=task.id,
                state=TaskState.DEGRADED if task.optional else TaskState.FAILED,
                error=exc,
                seconds=time.perf_counter() - started,
                attempts=max(attempt, 1),
            )
        except BaseException as exc:
            # Interrupted mid-task: account for the in-flight work, then
            # let the interrupt propagate (journal lines are flushed per
            # event, so the record is durable before the re-raise).
            outcome = TaskOutcome(
                task_id=task.id,
                state=TaskState.ABORTED,
                error=exc,
                seconds=time.perf_counter() - started,
                attempts=max(attempt, 1),
            )
            result.outcomes[task.id] = outcome
            if journal is not None:
                journal.event(
                    "task_aborted",
                    task=task.id,
                    attempt=max(attempt, 1),
                    error=f"{type(exc).__name__}: {exc}",
                )
            self._record_state(task, outcome, options)
            raise
        self._record_cache(task, outcome, options, journal)
        self._record_state(task, outcome, options)
        return outcome

    def _attempt(
        self,
        task: Task,
        ctx: TaskContext,
        tracer: Tracer,
        task_span: Span,
        policy: RetryPolicy,
        timeout_s: float | None,
        faults: FaultPlan | None,
        attempt: int,
        journal,
    ):
        """One attempt of one task, spanned and journaled when retrying."""
        if policy.max_attempts > 1:
            if journal is not None:
                journal.event(
                    "attempt",
                    task=task.id,
                    attempt=attempt,
                    max_attempts=policy.max_attempts,
                )
            with tracer.span(
                f"task/{task.id}/attempt-{attempt}",
                parent=task_span,
                attempt=attempt,
            ) as span:
                return self._invoke(task, ctx, tracer, span, timeout_s, faults)
        return self._invoke(task, ctx, tracer, task_span, timeout_s, faults)

    def _invoke(
        self,
        task: Task,
        ctx: TaskContext,
        tracer: Tracer,
        anchor: Span,
        timeout_s: float | None,
        faults: FaultPlan | None,
    ):
        """Execute the payload (plus injected faults), under the deadline.

        With a deadline, the payload runs on a watchdog thread: the
        tracer is re-activated and the attempt span adopted there so
        ambient instrumentation still nests under the right parent.
        Injected faults fire inside the timed region, so a ``delay``
        fault can trip the deadline.
        """
        if timeout_s is None:
            if faults is not None:
                faults.before(task.id)
            return task.payload(ctx)

        def guarded():
            with activate(tracer), tracer.adopt(anchor):
                if faults is not None:
                    faults.before(task.id)
                return task.payload(ctx)

        return call_with_timeout(guarded, timeout_s, label=f"task/{task.id}")

    @staticmethod
    def _try_cache(
        task: Task, options: RunOptions, journal
    ) -> TaskOutcome | None:
        """Complete the task from the artifact store, if its key hits.

        Any store trouble — a missing or corrupt object, a restore
        callback that cannot rebuild the value — silently degrades to a
        miss: the payload executes normally and re-stores its outputs.
        """
        store = options.artifact_store
        payload = task.payload
        if store is None or not isinstance(payload, CacheAwarePayload):
            return None
        started = time.perf_counter()
        try:
            key = payload.cache_key()
            record = store.lookup(key)
            if record is None:
                return None
            restored_bytes = store.materialize(
                record,
                payload.cache_root(),
                link=bool(getattr(payload, "link", False)),
            )
            value = payload.cache_restore(dict(record.meta))
        except Exception:
            return None
        if journal is not None:
            journal.event(
                "cache",
                task=task.id,
                key=key,
                hit=True,
                bytes_saved=restored_bytes,
            )
        return TaskOutcome(
            task_id=task.id,
            state=TaskState.CACHED,
            value=value,
            seconds=time.perf_counter() - started,
            detail=dict(record.meta),
        )

    @staticmethod
    def _record_cache(
        task: Task, outcome: TaskOutcome, options: RunOptions, journal
    ) -> None:
        """File a freshly-executed task's outputs into the artifact store.

        ``cache_meta`` returning ``None`` vetoes caching (e.g. a run
        whose validations failed must not be replayed on later runs).
        Storage failures never fail the task itself.
        """
        store = options.artifact_store
        payload = task.payload
        if (
            store is None
            or outcome.state is not TaskState.OK
            or outcome.restored
            or not isinstance(payload, CacheAwarePayload)
        ):
            return
        try:
            meta = payload.cache_meta(outcome.value)
            if meta is None:
                return
            key = payload.cache_key()
            stored = store.store(
                key,
                task.id,
                payload.cache_outputs(outcome.value),
                payload.cache_root(),
                meta=meta,
            )
        except Exception:
            return
        if journal is not None:
            journal.event(
                "cache",
                task=task.id,
                key=key,
                hit=False,
                bytes_stored=stored.bytes_stored,
                bytes_deduped=stored.bytes_deduped,
            )

    @staticmethod
    def _try_restore(
        task: Task, options: RunOptions, journal
    ) -> TaskOutcome | None:
        """Restore the task from run state, if a usable checkpoint exists."""
        store = options.run_state
        if store is None or not task.fingerprint:
            return None
        record = store.lookup(task.fingerprint)
        if record is None:
            return None
        detail = record.get("detail")
        try:
            value = (
                task.restore(detail if isinstance(detail, dict) else {})
                if task.restore is not None
                else None
            )
        except Exception:
            # A checkpoint that cannot be rebuilt (deleted results file,
            # schema drift) silently falls back to re-execution.
            return None
        if journal is not None:
            journal.event(
                "task_restored",
                task=task.id,
                fingerprint=task.fingerprint,
                attempts=record.get("attempts", 1),
            )
        return TaskOutcome(
            task_id=task.id,
            state=TaskState.OK,
            value=value,
            seconds=0.0,
            attempts=int(record.get("attempts", 1) or 1),
            restored=True,
            detail=detail if isinstance(detail, dict) else None,
        )

    @staticmethod
    def _record_state(
        task: Task, outcome: TaskOutcome, options: RunOptions
    ) -> None:
        """Checkpoint one finished outcome into the run-state store."""
        store = options.run_state
        if (
            store is None
            or not task.fingerprint
            or outcome.restored
            or outcome.state is TaskState.CACHED
        ):
            return
        detail = None
        cacheable = True
        if outcome.state is TaskState.OK and task.checkpoint is not None:
            try:
                detail = task.checkpoint(outcome.value)
            except Exception:
                detail, cacheable = None, False
            else:
                if detail is None:
                    # The checkpoint callback vetoed caching (e.g. a CI
                    # job that ran but failed its steps).
                    cacheable = False
            outcome.detail = detail
        store.record(
            task.id,
            task.fingerprint,
            outcome.state.value,
            seconds=outcome.seconds,
            attempts=outcome.attempts,
            detail=detail,
            error=(
                f"{type(outcome.error).__name__}: {outcome.error}"
                if outcome.error is not None
                else ""
            ),
            cacheable=cacheable,
        )

    @staticmethod
    def _propagate_failure(
        graph: TaskGraph,
        ready: ReadySet,
        result: GraphResult,
        failed_id: str,
    ) -> None:
        """Mark every not-yet-finished transitive dependent as SKIPPED."""
        doomed = {
            tid
            for tid in graph.downstream(failed_id)
            if tid not in result.outcomes
        }
        ready.discard(doomed)
        for tid in sorted(doomed):
            result.outcomes[tid] = TaskOutcome(
                task_id=tid, state=TaskState.SKIPPED, blamed_on=failed_id
            )


class SerialScheduler(Scheduler):
    """Runs ready tasks one at a time, in insertion order."""

    backend = "serial"

    def _execute(self, graph, result, tracer, parent, options):
        ready = ReadySet(graph)
        queue = ready.take_ready()
        while queue:
            if options.cancel is not None:
                # Between tasks is the safe stop point: everything that
                # finished has checkpointed, nothing is mid-write.
                options.cancel.raise_if_cancelled()
            task_id = queue.pop(0)
            outcome = self._run_task(
                graph.task(task_id), result, tracer, parent, options
            )
            result.outcomes[task_id] = outcome
            if outcome.state is TaskState.FAILED:
                self._propagate_failure(graph, ready, result, task_id)
                # Requeue whatever independent work the skip freed up.
                queue.extend(t for t in ready.take_ready() if t not in queue)
            else:
                # OK and DEGRADED both count as completion: dependents
                # of an optional task still run (graceful degradation).
                queue.extend(ready.complete(task_id))
        if not ready.exhausted:  # pragma: no cover - validate() prevents this
            raise EngineError(f"unrunnable tasks left over: {ready.pending()}")


class ThreadedScheduler(Scheduler):
    """Runs independent tasks concurrently on a thread pool."""

    backend = "threaded"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def _execute(self, graph, result, tracer, parent, options):
        if len(graph) == 0:
            return
        ready = ReadySet(graph)
        cancel = options.cancel
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            running: dict[Future, str] = {}

            def submit(task_ids: list[str]) -> None:
                if cancel is not None and cancel.cancelled:
                    # Draining: in-flight tasks finish and checkpoint,
                    # nothing new starts (unstarted tasks have no
                    # run-state record, so --resume re-runs them).
                    return
                for tid in task_ids:
                    future = pool.submit(
                        self._run_task, graph.task(tid), result, tracer,
                        parent, options,
                    )
                    running[future] = tid

            submit(ready.take_ready())
            try:
                while running:
                    done, _ = wait(running, return_when=FIRST_COMPLETED)
                    for future in done:
                        task_id = running.pop(future)
                        outcome = future.result()
                        result.outcomes[task_id] = outcome
                        if outcome.state is TaskState.FAILED:
                            self._propagate_failure(graph, ready, result, task_id)
                            submit(ready.take_ready())
                        else:
                            submit(ready.complete(task_id))
            except BaseException:
                # An aborted task re-raised through future.result() (or
                # the caller was interrupted in wait()): stop handing out
                # work, let in-flight tasks drain (they checkpoint their
                # own outcomes), and propagate the interrupt.
                for future in running:
                    future.cancel()
                raise
        if cancel is not None:
            cancel.raise_if_cancelled()
        if not ready.exhausted and not any(
            o.state is TaskState.ABORTED for o in result.outcomes.values()
        ):  # pragma: no cover - validate() prevents this
            raise EngineError(f"unrunnable tasks left over: {ready.pending()}")


def resolve_backend(
    backend: str = "auto", jobs: int = 1
) -> tuple[Scheduler, int, str | None]:
    """Pick a scheduler for ``--backend BACKEND -j JOBS``.

    Returns ``(scheduler, effective_workers, warning)``; *warning* is a
    human-readable line (or ``None``) the CLI prints and callers may
    journal.  Policy:

    * ``auto`` — threaded when ``jobs > 1``, serial otherwise (the
      historical ``-j`` behavior).
    * ``serial`` — one worker, ``jobs`` ignored.
    * ``threaded`` — ``jobs`` workers; asking for more workers than CPU
      cores warns but does **not** clamp, because threads time-share the
      GIL anyway and I/O-bound payloads legitimately oversubscribe.
    * ``process`` — ``jobs`` worker *processes*, clamped to
      ``os.cpu_count()`` with a warning: extra processes cost real
      memory and context switches and can never add throughput.
    """
    if jobs < 1:
        raise EngineError(f"jobs must be >= 1, got {jobs}")
    if backend not in BACKENDS:
        raise EngineError(
            f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
        )
    if backend == "auto":
        backend = "threaded" if jobs > 1 else "serial"
    if backend == "serial":
        return SerialScheduler(), 1, None
    cpus = os.cpu_count() or 1
    if backend == "threaded":
        warning = None
        if jobs > cpus:
            warning = (
                f"-j {jobs} exceeds the {cpus} available CPU core(s); "
                f"threads time-share the GIL, expect no extra throughput "
                f"for CPU-bound tasks"
            )
        return ThreadedScheduler(max_workers=jobs), jobs, warning
    from repro.engine.procsched import ProcessScheduler

    workers, warning = jobs, None
    if jobs > cpus:
        workers = cpus
        warning = (
            f"-j {jobs} exceeds the {cpus} available CPU core(s); "
            f"clamping the process pool to {workers} worker(s)"
        )
    return ProcessScheduler(max_workers=workers), workers, warning
