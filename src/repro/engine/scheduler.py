"""Schedulers: execute a :class:`~repro.engine.graph.TaskGraph`.

Two interchangeable backends run the same graph:

* :class:`SerialScheduler` — one task at a time, in deterministic
  (insertion, dependency-respecting) order.  The debugging backend: a
  failure's traceback is exactly where it happened and journals read
  top-to-bottom.
* :class:`ThreadedScheduler` — a ``concurrent.futures`` thread pool of
  ``max_workers``; every task whose dependencies are satisfied runs
  concurrently with its peers.  Because the simulated workloads are
  deterministic functions of their seeds, both backends produce
  bit-identical experiment results — only wall-clock and journal event
  interleaving differ.

Semantics shared by both backends:

* **Tracing** — every task executes inside a ``task/<id>`` span.  The
  span's parent is the span that was active on the *calling* thread when
  :meth:`Scheduler.run` was entered, so a parallel run still journals as
  one tree and ``popper trace`` renders a correct critical path.  The
  caller's ambient tracer is re-activated on worker threads, so payload
  code that calls :func:`~repro.monitor.tracing.current_tracer` lands its
  spans in the right journal even under concurrency.
* **Failure propagation** — a task that raises is recorded as FAILED
  with its exception; every transitive dependent is recorded as SKIPPED
  (with the failed task blamed); tasks on independent branches keep
  running.  :meth:`~repro.engine.graph.GraphResult.raise_first_error`
  re-raises for callers that want fail-stop behavior.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait

from repro.common.errors import EngineError
from repro.engine.graph import (
    GraphResult,
    ReadySet,
    Task,
    TaskContext,
    TaskGraph,
    TaskOutcome,
    TaskState,
)
from repro.monitor.tracing import Span, Tracer, activate, current_tracer

__all__ = ["Scheduler", "SerialScheduler", "ThreadedScheduler"]


class Scheduler:
    """Common machinery; subclasses choose the execution strategy."""

    #: Human-readable backend name (lands in span attributes and benches).
    backend = "abstract"

    def run(self, graph: TaskGraph, tracer: Tracer | None = None) -> GraphResult:
        """Execute every task; never raises for payload failures.

        *tracer* defaults to the calling thread's ambient tracer; pass
        one explicitly to journal task spans into a specific run.
        """
        graph.validate()
        eff_tracer = tracer if tracer is not None else current_tracer()
        parent = eff_tracer.current()
        started = time.perf_counter()
        result = GraphResult()
        self._execute(graph, result, eff_tracer, parent)
        result.wall_seconds = time.perf_counter() - started
        return result

    # -- strategy hook -----------------------------------------------------------
    def _execute(
        self,
        graph: TaskGraph,
        result: GraphResult,
        tracer: Tracer,
        parent: Span | None,
    ) -> None:
        raise NotImplementedError

    # -- shared pieces -----------------------------------------------------------
    def _run_task(
        self,
        task: Task,
        result: GraphResult,
        tracer: Tracer,
        parent: Span | None,
    ) -> TaskOutcome:
        """Run one payload inside its ``task/<id>`` span.

        Called on whatever thread executes the task; re-activates the
        caller's tracer there so ambient instrumentation nests correctly.
        """
        ctx = TaskContext(
            task_id=task.id,
            results={
                dep: result.outcomes[dep].value for dep in task.dependencies
            },
        )
        started = time.perf_counter()
        try:
            with activate(tracer):
                with tracer.span(
                    f"task/{task.id}", parent=parent, scheduler=self.backend
                ):
                    value = task.payload(ctx)
            return TaskOutcome(
                task_id=task.id,
                state=TaskState.OK,
                value=value,
                seconds=time.perf_counter() - started,
            )
        except Exception as exc:
            return TaskOutcome(
                task_id=task.id,
                state=TaskState.FAILED,
                error=exc,
                seconds=time.perf_counter() - started,
            )

    @staticmethod
    def _propagate_failure(
        graph: TaskGraph,
        ready: ReadySet,
        result: GraphResult,
        failed_id: str,
    ) -> None:
        """Mark every not-yet-finished transitive dependent as SKIPPED."""
        doomed = {
            tid
            for tid in graph.downstream(failed_id)
            if tid not in result.outcomes
        }
        ready.discard(doomed)
        for tid in sorted(doomed):
            result.outcomes[tid] = TaskOutcome(
                task_id=tid, state=TaskState.SKIPPED, blamed_on=failed_id
            )


class SerialScheduler(Scheduler):
    """Runs ready tasks one at a time, in insertion order."""

    backend = "serial"

    def _execute(self, graph, result, tracer, parent):
        ready = ReadySet(graph)
        queue = ready.take_ready()
        while queue:
            task_id = queue.pop(0)
            outcome = self._run_task(graph.task(task_id), result, tracer, parent)
            result.outcomes[task_id] = outcome
            if outcome.state is TaskState.FAILED:
                self._propagate_failure(graph, ready, result, task_id)
                # Requeue whatever independent work the skip freed up.
                queue.extend(t for t in ready.take_ready() if t not in queue)
            else:
                queue.extend(ready.complete(task_id))
        if not ready.exhausted:  # pragma: no cover - validate() prevents this
            raise EngineError(f"unrunnable tasks left over: {ready.pending()}")


class ThreadedScheduler(Scheduler):
    """Runs independent tasks concurrently on a thread pool."""

    backend = "threaded"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def _execute(self, graph, result, tracer, parent):
        if len(graph) == 0:
            return
        ready = ReadySet(graph)
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            running: dict[Future, str] = {}

            def submit(task_ids: list[str]) -> None:
                for tid in task_ids:
                    future = pool.submit(
                        self._run_task, graph.task(tid), result, tracer, parent
                    )
                    running[future] = tid

            submit(ready.take_ready())
            while running:
                done, _ = wait(running, return_when=FIRST_COMPLETED)
                for future in done:
                    task_id = running.pop(future)
                    outcome = future.result()
                    result.outcomes[task_id] = outcome
                    if outcome.state is TaskState.FAILED:
                        self._propagate_failure(graph, ready, result, task_id)
                        submit(ready.take_ready())
                    else:
                        submit(ready.complete(task_id))
        if not ready.exhausted:  # pragma: no cover - validate() prevents this
            raise EngineError(f"unrunnable tasks left over: {ready.pending()}")
