"""The process-parallel scheduler: true multi-core graph execution.

``ThreadedScheduler`` overlaps I/O but not computation — the experiment
payloads are pure-Python and GIL-bound, which is why ``BENCH_engine.json``
historically showed ``-j 4`` *slower* than serial.  ``ProcessScheduler``
runs the same :class:`~repro.engine.graph.TaskGraph` contract on a pool
of worker *processes*, so independent tasks use independent cores.

Design:

* **Pickle-safety audit, then fallback.** Payloads must cross a process
  boundary.  Before spawning anything the scheduler audits every task
  (:func:`audit_pickle_safety`); closures and lambdas fail the audit and
  the run demotes itself to the configured in-process fallback
  (threaded by default), journaling a ``scheduler_fallback`` event —
  or raises :class:`~repro.common.errors.UnpicklablePayloadError` when
  ``fallback=None``.  A task whose *dependency values* turn out
  unpicklable at dispatch time runs inline in the parent instead.
* **Work-stealing over topological levels.** All ready tasks — from
  whichever topological levels are currently unlocked — share one job
  queue; an idle worker pulls the next ready task regardless of level,
  so uneven stage durations never leave cores idle behind a level
  barrier.
* **Parent-side cache and checkpoint.** The parent performs the
  artifact-store lookup (CACHED short-circuit *before* dispatch), the
  run-state restore, and — when a worker reports success — the cache
  filing and checkpoint append, so stores need no cross-process
  coordination beyond their existing inter-process locks.
* **Worker-side resilience.** Retry policies, per-task deadlines and
  fault plans ship with each job and execute inside the worker, exactly
  as the in-process backends run them (the shared
  :meth:`~repro.engine.scheduler.Scheduler._run_task` machinery runs in
  the worker).  Fault-plan counters ship as per-job snapshots; every
  attempt of a task runs inside one worker, so the deterministic
  per-task fault sequences are preserved.
* **Journal shards, merged deterministically.** Each worker journals
  its task spans into a private JSONL shard.  At join the parent merges
  the shards into the run's real journal *per task in graph insertion
  order* (so the merged journal does not depend on which worker ran
  what), remapping shard-local span ids via
  :meth:`~repro.monitor.tracing.Tracer.reserve_span_ids` and
  re-parenting shard roots under the calling span — ``popper trace`` /
  ``popper log`` see one tree.
* **Cooperative shutdown and crash containment.** A set
  :class:`~repro.engine.shutdown.CancelToken` stops new dispatch;
  in-flight experiments drain and checkpoint, then
  :class:`~repro.engine.shutdown.RunCancelled` raises as usual.  A
  worker that dies without reporting (hard crash, ``kill -9``) fails
  only its in-flight task with
  :class:`~repro.common.errors.WorkerCrashError`; a replacement worker
  is spawned and the rest of the graph keeps running.

Values and errors returned by workers are round-trip-checked before
shipping: an unpicklable task value fails the task with
:class:`UnpicklablePayloadError` (dependents cannot receive it), and an
unpicklable exception degrades to an :class:`EngineError` carrying the
original type name and message.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import shutil
import tempfile
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.common.errors import (
    EngineError,
    UnpicklablePayloadError,
    WorkerCrashError,
)
from repro.engine.cache import MemoizedPayload
from repro.engine.faults import FaultPlan
from repro.engine.graph import (
    GraphResult,
    ReadySet,
    Task,
    TaskGraph,
    TaskOutcome,
    TaskState,
)
from repro.engine.resilience import RetryPolicy
from repro.engine.scheduler import (
    RunOptions,
    Scheduler,
    SerialScheduler,
    ThreadedScheduler,
)
from repro.monitor.journal import RunJournal, load_journal, replay_events
from repro.monitor.tracing import SPAN_METRIC, Span, Tracer

__all__ = ["ProcessScheduler", "audit_pickle_safety"]


def _executable(payload: Any) -> Any:
    """The part of a payload that must cross the process boundary.

    A :class:`MemoizedPayload` ships only its inner callable — the cache
    protocol (key/outputs/meta/restore closures) runs parent-side, where
    the artifact store lives.
    """
    if isinstance(payload, MemoizedPayload):
        return payload.fn
    return payload


def audit_pickle_safety(graph: TaskGraph) -> dict[str, str]:
    """task id -> reason, for every payload that cannot be dispatched."""
    problems: dict[str, str] = {}
    for task in graph:
        try:
            pickle.dumps(_executable(task.payload))
        except Exception as exc:
            problems[task.id] = f"{type(exc).__name__}: {exc}"
    return problems


@dataclass
class _Job:
    """One dispatched task: everything a worker needs to run it."""

    task_id: str
    payload: Any
    results: dict[str, Any]
    states: dict[str, TaskState]
    retry: RetryPolicy | None
    timeout_s: float | None
    optional: bool
    faults: FaultPlan | None


class _WorkerRunner(Scheduler):
    """Runs one task inside a worker process via the shared machinery.

    Reusing :meth:`Scheduler._run_task` gives worker-side execution the
    exact span / attempt / retry / deadline / fault semantics of the
    in-process backends.  Cache and run-state stores are absent in the
    worker (both halves of that protocol run parent-side).
    """

    backend = "process"


def _sanitize(record: dict, optional: bool) -> bytes:
    """Pickle a done-record, degrading unshippable values/errors.

    The round trip runs worker-side so a bad record can never poison the
    result queue (``mp.Queue`` pickles in a background thread whose
    errors are silently swallowed — a lost message would deadlock the
    parent).
    """
    try:
        blob = pickle.dumps(("done", record))
        pickle.loads(blob)
        return blob
    except Exception:
        pass
    try:
        pickle.loads(pickle.dumps(record["value"]))
    except Exception as exc:
        record = dict(
            record,
            state=(TaskState.DEGRADED if optional else TaskState.FAILED).value,
            value=None,
            error=UnpicklablePayloadError(
                f"task {record['task']!r} returned a value that cannot "
                f"cross the process boundary ({type(exc).__name__}: {exc})"
            ),
        )
    try:
        pickle.loads(pickle.dumps(record["error"]))
    except Exception:
        error = record["error"]
        record = dict(
            record, error=EngineError(f"{type(error).__name__}: {error}")
        )
    return pickle.dumps(("done", record))


def _run_job(
    runner: _WorkerRunner, job: _Job, tracer: Tracer, worker: int
) -> dict:
    """Execute one job; returns the (not yet sanitized) done-record."""
    task = Task(
        id=job.task_id,
        payload=job.payload,
        dependencies=tuple(job.states),
        retry=job.retry,
        timeout_s=job.timeout_s,
        optional=job.optional,
    )
    result = GraphResult()
    for dep, state in job.states.items():
        result.outcomes[dep] = TaskOutcome(
            task_id=dep, state=state, value=job.results.get(dep)
        )
    journal = tracer.journal
    first_seq = len(journal) if journal is not None else 0
    started = time.perf_counter()
    try:
        outcome = runner._run_task(
            task, result, tracer, None, RunOptions(faults=job.faults)
        )
    except BaseException as exc:
        # _run_task already recorded + journaled the ABORTED outcome.
        outcome = result.outcomes.get(job.task_id) or TaskOutcome(
            task_id=job.task_id,
            state=TaskState.ABORTED,
            error=exc,
            seconds=time.perf_counter() - started,
        )
    last_seq = len(journal) if journal is not None else 0
    return {
        "task": job.task_id,
        "state": outcome.state.value,
        "value": outcome.value,
        "error": outcome.error,
        "seconds": outcome.seconds,
        "attempts": outcome.attempts,
        "worker": worker,
        "span_range": (first_seq, last_seq) if journal is not None else None,
    }


def _worker_main(
    index: int, jobs_q, results_q, shard_path: str | None, marker_path: str
) -> None:
    """Worker loop: pull job blobs until the ``None`` sentinel arrives.

    Before each payload runs, the task id is written *synchronously* to
    this worker's marker file.  A queue message would not survive a hard
    crash (``os._exit`` kills ``mp.Queue``'s feeder thread before it
    flushes), but the marker file does — it is how the parent attributes
    an unreported task to a dead worker.
    """
    journal = RunJournal(shard_path) if shard_path else None
    tracer = Tracer(journal=journal)
    runner = _WorkerRunner()
    marker = Path(marker_path)
    try:
        while True:
            blob = jobs_q.get()
            if blob is None:
                break
            job: _Job = pickle.loads(blob)
            marker.write_text(job.task_id, encoding="utf-8")
            record = _run_job(runner, job, tracer, index)
            results_q.put(_sanitize(record, job.optional))
            marker.write_text("", encoding="utf-8")
    finally:
        if journal is not None:
            journal.close()


class ProcessScheduler(Scheduler):
    """Runs independent tasks concurrently on a process pool."""

    backend = "process"

    #: How long to wait on the result queue before checking for dead
    #: workers and cancellation (seconds).
    POLL_S = 0.1

    def __init__(
        self,
        max_workers: int | None = None,
        fallback: str | None = "threaded",
        start_method: str | None = None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {max_workers}")
        if fallback not in (None, "serial", "threaded"):
            raise EngineError(
                f"fallback must be 'serial', 'threaded' or None, got {fallback!r}"
            )
        self.max_workers = max_workers
        self.fallback = fallback
        self.start_method = start_method

    # -- plumbing ----------------------------------------------------------------
    def _context(self):
        import multiprocessing as mp

        if self.start_method is not None:
            return mp.get_context(self.start_method)
        methods = mp.get_all_start_methods()
        # fork is cheapest and inherits the installed crash plan; spawn
        # is the portable fallback.
        return mp.get_context("fork" if "fork" in methods else "spawn")

    def _fallback_scheduler(self) -> Scheduler:
        if self.fallback == "serial":
            return SerialScheduler()
        return ThreadedScheduler(max_workers=self.max_workers)

    # -- execution ---------------------------------------------------------------
    def _execute(self, graph, result, tracer, parent, options):
        if len(graph) == 0:
            return
        journal = tracer.journal
        problems = audit_pickle_safety(graph)
        if problems:
            detail = "; ".join(
                f"{tid}: {reason}" for tid, reason in sorted(problems.items())
            )
            if self.fallback is None:
                raise UnpicklablePayloadError(
                    f"{len(problems)} task payload(s) cannot cross a "
                    f"process boundary: {detail}"
                )
            demoted = self._fallback_scheduler()
            if journal is not None:
                journal.event(
                    "scheduler_fallback",
                    requested="process",
                    using=demoted.backend,
                    reason="unpicklable payloads",
                    tasks=sorted(problems),
                )
            warnings.warn(
                f"process backend: {len(problems)} payload(s) are not "
                f"pickle-safe ({detail}); falling back to the "
                f"{demoted.backend} scheduler",
                stacklevel=3,
            )
            return demoted._execute(graph, result, tracer, parent, options)
        self._run_pool(graph, result, tracer, parent, options)

    def _run_pool(self, graph, result, tracer, parent, options):
        ctx = self._context()
        journal = tracer.journal
        cancel = options.cancel
        parent_id = parent.span_id if parent is not None else None
        ready = ReadySet(graph)
        jobs_q = ctx.Queue()
        results_q = ctx.Queue()
        workers: list = []
        reaped: set[int] = set()
        dead_seen: set[int] = set()
        shard_paths: dict[int, Path] = {}
        marker_paths: dict[int, Path] = {}
        scratch = Path(tempfile.mkdtemp(prefix="popper-procsched-"))
        inflight: set[str] = set()
        done_records: dict[str, dict] = {}
        abort_error: BaseException | None = None

        def draining() -> bool:
            return abort_error is not None or (
                cancel is not None and cancel.cancelled
            )

        def spawn_worker() -> None:
            index = len(workers)
            shard = None
            if journal is not None:
                shard = scratch / f"shard-{index}.jsonl"
                shard_paths[index] = shard
            marker = scratch / f"running-{index}"
            marker_paths[index] = marker
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    index,
                    jobs_q,
                    results_q,
                    str(shard) if shard else None,
                    str(marker),
                ),
                daemon=True,
                name=f"popper-worker-{index}",
            )
            proc.start()
            workers.append(proc)

        def advance(task_id: str, outcome: TaskOutcome) -> list[str]:
            """Ready-set bookkeeping after one finished outcome."""
            if outcome.state is TaskState.FAILED:
                self._propagate_failure(graph, ready, result, task_id)
                return ready.take_ready()
            return ready.complete(task_id)

        def dispatch(task_ids: list[str]) -> None:
            pending = list(task_ids)
            while pending:
                nonlocal abort_error
                tid = pending.pop(0)
                if draining():
                    # Drain: hand out nothing new.  Undispatched tasks
                    # keep no run-state record, so --resume re-runs them.
                    continue
                task = graph.task(tid)
                short = self._try_cache(task, options, journal)
                if short is None:
                    short = self._try_restore(task, options, journal)
                if short is not None:
                    # CACHED / restored: completed without dispatching.
                    result.outcomes[tid] = short
                    self._record_state(task, short, options)
                    pending.extend(advance(tid, short))
                    continue
                job = _Job(
                    task_id=tid,
                    payload=_executable(task.payload),
                    results={
                        dep: result.outcomes[dep].value
                        for dep in task.dependencies
                        if result.outcomes[dep].state
                        in (TaskState.OK, TaskState.CACHED)
                    },
                    states={
                        dep: result.outcomes[dep].state
                        for dep in task.dependencies
                    },
                    retry=task.retry if task.retry is not None else options.retry,
                    timeout_s=(
                        task.timeout_s
                        if task.timeout_s is not None
                        else options.timeout_s
                    ),
                    optional=task.optional,
                    faults=options.faults,
                )
                try:
                    blob = pickle.dumps(job)
                except Exception as exc:
                    # A dependency value that cannot cross the boundary:
                    # run this one task in the parent instead.
                    if journal is not None:
                        journal.event(
                            "scheduler_fallback",
                            requested="process",
                            using="inline",
                            reason=f"{type(exc).__name__}: {exc}",
                            tasks=[tid],
                        )
                    try:
                        outcome = self._run_task(
                            task, result, tracer, parent, options
                        )
                    except BaseException as aborted:
                        abort_error = aborted
                        continue
                    result.outcomes[tid] = outcome
                    pending.extend(advance(tid, outcome))
                    continue
                jobs_q.put(blob)
                inflight.add(tid)

        def on_done(record: dict) -> None:
            nonlocal abort_error
            tid = record["task"]
            if tid not in inflight:
                # Already written off (e.g. its worker was presumed dead
                # and the record surfaced late): first verdict stands.
                return
            inflight.discard(tid)
            done_records[tid] = record
            outcome = TaskOutcome(
                task_id=tid,
                state=TaskState(record["state"]),
                value=record["value"],
                error=record["error"],
                seconds=float(record["seconds"]),
                attempts=int(record["attempts"]),
            )
            result.outcomes[tid] = outcome
            task = graph.task(tid)
            if outcome.state is TaskState.ABORTED:
                # The worker journaled task_aborted into its shard; the
                # parent checkpoints the outcome and starts draining.
                self._record_state(task, outcome, options)
                if abort_error is None:
                    abort_error = (
                        outcome.error
                        if isinstance(outcome.error, BaseException)
                        else EngineError(f"task {tid!r} aborted")
                    )
                return
            self._record_cache(task, outcome, options, journal)
            self._record_state(task, outcome, options)
            dispatch(advance(tid, outcome))

        def fail_inflight(tid: str, reason: str) -> None:
            inflight.discard(tid)
            task = graph.task(tid)
            error = WorkerCrashError(
                f"{reason} without reporting task {tid!r}"
            )
            outcome = TaskOutcome(
                task_id=tid,
                state=TaskState.DEGRADED if task.optional else TaskState.FAILED,
                error=error,
            )
            result.outcomes[tid] = outcome
            self._record_state(task, outcome, options)
            dispatch(advance(tid, outcome))

        def reap_dead_workers() -> None:
            for index, proc in enumerate(workers):
                if index in reaped or proc.exitcode is None:
                    continue
                if index not in dead_seen:
                    # Grace poll: anything the dying worker managed to
                    # flush into the result pipe gets read first, so a
                    # task is only written off once its record is
                    # provably absent.
                    dead_seen.add(index)
                    continue
                reaped.add(index)
                marker = marker_paths.get(index)
                tid = ""
                if marker is not None and marker.is_file():
                    tid = marker.read_text(encoding="utf-8").strip()
                if tid and tid in inflight:
                    fail_inflight(
                        tid,
                        f"worker process {index} died "
                        f"(exit code {proc.exitcode})",
                    )
                if inflight and not draining():
                    # Keep the pool at strength for the remaining graph.
                    spawn_worker()
            if inflight and all(p.exitcode is not None for p in workers):
                # No worker left to ever report these (e.g. a die-off
                # while draining): fail them rather than spin forever.
                for tid in sorted(inflight):
                    fail_inflight(tid, "every worker process died")

        def merge_shards() -> None:
            """Replay every worker's journal shard into the run journal.

            Merged per task in graph insertion order, so the combined
            journal is independent of which worker ran which task; span
            ids are remapped into the parent tracer's id space and shard
            roots are re-parented under the calling span.
            """
            if journal is None:
                return
            shard_events: dict[int, list[dict]] = {}
            for index, path in shard_paths.items():
                if not path.is_file() or path.stat().st_size == 0:
                    continue
                try:
                    shard_events[index] = load_journal(path)[0]
                except Exception:  # a torn shard loses at most one task's spans
                    continue
            slices: list[tuple[int, list[dict]]] = []
            for tid in graph.ids():
                record = done_records.get(tid)
                if not record or not record.get("span_range"):
                    continue
                lo, hi = record["span_range"]
                events = [
                    e
                    for e in shard_events.get(record["worker"], [])
                    if lo < e.get("seq", 0) <= hi
                ]
                if events:
                    slices.append((record["worker"], events))
            keys: list[tuple[int, int]] = []
            seen: set[tuple[int, int]] = set()
            for index, events in slices:
                for event in events:
                    sid = event.get("span_id")
                    if isinstance(sid, int) and (index, sid) not in seen:
                        seen.add((index, sid))
                        keys.append((index, sid))
            base = tracer.reserve_span_ids(len(keys))
            id_map = {key: base + i for i, key in enumerate(keys)}
            # One batched group-commit writer for the whole replay: the
            # merge appends thousands of events and should pay one write
            # per window, not one write+flush per replayed line.
            with journal.batched():
                for index, events in slices:
                    local = {
                        sid: gid for (w, sid), gid in id_map.items() if w == index
                    }
                    replay_events(
                        journal,
                        events,
                        span_id_map=local,
                        default_parent_id=parent_id,
                        worker=index,
                    )
                    self._graft_spans(tracer, events, local, parent_id)

        try:
            for _ in range(min(self.max_workers, len(graph))):
                spawn_worker()
            dispatch(ready.take_ready())
            while inflight:
                try:
                    message = pickle.loads(results_q.get(timeout=self.POLL_S))
                except queue_mod.Empty:
                    reap_dead_workers()
                    continue
                on_done(message[1])
        finally:
            for _ in workers:
                jobs_q.put(None)
            for proc in workers:
                proc.join(timeout=5.0)
            for proc in workers:
                if proc.exitcode is None:  # pragma: no cover - wedged worker
                    proc.terminate()
                    proc.join(timeout=5.0)
            jobs_q.cancel_join_thread()
            results_q.cancel_join_thread()
            try:
                merge_shards()
            finally:
                shutil.rmtree(scratch, ignore_errors=True)

        if abort_error is not None:
            raise abort_error
        if cancel is not None:
            cancel.raise_if_cancelled()
        if not ready.exhausted:  # pragma: no cover - validate() prevents this
            raise EngineError(f"unrunnable tasks left over: {ready.pending()}")

    @staticmethod
    def _graft_spans(
        tracer: Tracer,
        events: list[dict],
        id_map: dict[int, int],
        parent_id: int | None,
    ) -> None:
        """Rebuild finished Span objects from one shard slice.

        In-memory consumers (``tracer.span_tree()``, metric exports) see
        the same tree the merged journal describes.
        """
        starts: dict[int, dict] = {}
        for event in events:
            kind = event.get("event")
            if kind == "span_start":
                starts[event.get("span_id")] = event
            elif kind == "span_end":
                start = starts.pop(event.get("span_id"), None)
                sid = id_map.get(event.get("span_id"))
                if start is None or sid is None:
                    continue
                begun = float(start.get("ts", 0.0))
                span = Span(
                    name=str(event.get("name", "?")),
                    span_id=sid,
                    parent_id=id_map.get(start.get("parent_id"), parent_id),
                    start=begun,
                    end=begun + float(event.get("duration_s", 0.0)),
                    status=str(event.get("status", "ok")),
                    error=str(event.get("error", "")),
                    attributes=dict(event.get("attributes") or {}),
                )
                tracer.graft_span(span)
                if tracer.metrics is not None:
                    tracer.metrics.record(
                        SPAN_METRIC,
                        span.duration,
                        labels={"span": span.name, "status": span.status},
                    )
