"""Retry and deadline policies: how the engine survives transients.

The "Challenges of Practical Reproducibility" report (Keahey et al.,
2025) identifies infrastructure transients — a flaky host, a container
start race, a hung stage — as the dominant practical obstacle to
re-executing published experiments.  This module gives the engine the
two classic countermeasures:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter.  Jitter is derived from
  :func:`repro.common.rng.derive_rng` seeded by (seed, task id,
  attempt), so a re-executed run sleeps the exact same intervals and the
  whole evaluation stays bit-reproducible even through its failure
  handling.  Only errors in the :class:`~repro.common.errors.TransientError`
  branch are retried by default; permanent errors fail fast.
* :func:`call_with_timeout` — per-task deadline enforcement.  The
  payload runs on a watchdog daemon thread; blowing the deadline raises
  :class:`~repro.common.errors.TaskTimeoutError` (itself transient, so a
  hung attempt can be retried).

Both are consumed by :mod:`repro.engine.scheduler`; callers set them
per-task (:class:`~repro.engine.graph.Task` fields) or per-run
(:class:`~repro.engine.scheduler.RunOptions`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import EngineError, TaskTimeoutError, TransientError
from repro.common.rng import derive_rng

__all__ = ["RetryPolicy", "NO_RETRY", "call_with_timeout"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means at
    most two retries.  Attempt *n* (that failed retryably) sleeps
    ``backoff_s * multiplier**(n-1)``, capped at ``max_backoff_s`` and
    stretched by up to ``jitter`` fraction — the jitter is drawn from a
    generator seeded by (seed, task id, attempt), so reruns are
    bit-identical.  ``retry_on`` is the exception branch considered
    retryable; the default is exactly the
    :class:`~repro.common.errors.TransientError` branch.

    ``max_delay_s`` is the hard ceiling on the *returned* delay.  It
    differs from ``max_backoff_s`` in two ways: the jitter stretch is
    applied after the ``max_backoff_s`` cap (so a jittered delay can
    exceed it by up to the jitter fraction), and for very large attempt
    counts the uncapped exponent itself overflows a float.  Callers
    that loop indefinitely over one policy — the serve queue requeues a
    job on every lease expiry — set ``max_delay_s`` to bound the sleep
    no matter the attempt number; ``None`` (the default) preserves the
    historical jitter-above-cap behaviour.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.1
    seed: int = 42
    retry_on: tuple[type[BaseException], ...] = (TransientError,)
    max_delay_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise EngineError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0 or self.multiplier < 0 or self.max_backoff_s < 0:
            raise EngineError("backoff parameters must be non-negative")
        if self.jitter < 0:
            raise EngineError(f"jitter must be non-negative, got {self.jitter}")
        if self.max_delay_s is not None and self.max_delay_s < 0:
            raise EngineError(
                f"max_delay_s must be non-negative, got {self.max_delay_s}"
            )

    def retryable(self, error: BaseException) -> bool:
        """Whether *error* is worth another attempt under this policy."""
        return isinstance(error, self.retry_on)

    def delay_s(self, task_id: str, attempt: int) -> float:
        """Seconds to sleep after failed *attempt* (1-based) of *task_id*.

        Deterministic: the same (seed, task, attempt) always yields the
        same delay, which is what keeps retried runs bit-identical.
        """
        try:
            grown = self.backoff_s * self.multiplier ** (attempt - 1)
        except OverflowError:
            # 2.0 ** ~1025 overflows a float; the cap would win anyway.
            grown = float("inf")
        base = min(grown, self.max_backoff_s)
        if base <= 0:
            return 0.0
        if self.jitter <= 0:
            delay = base
        else:
            rng = derive_rng(self.seed, "retry", task_id, attempt)
            delay = base * (1.0 + self.jitter * float(rng.random()))
        if self.max_delay_s is not None:
            delay = min(delay, self.max_delay_s)
        return delay


#: The fail-stop policy: one attempt, no backoff (the engine's default).
NO_RETRY = RetryPolicy(max_attempts=1)


def call_with_timeout(
    fn: Callable[[], Any], timeout_s: float | None, label: str = "task"
) -> Any:
    """Run ``fn()`` with a deadline; raise :class:`TaskTimeoutError` past it.

    With ``timeout_s=None`` the call runs inline.  Otherwise the call
    runs on a daemon watchdog thread and the caller waits up to
    ``timeout_s``; a blown deadline abandons the thread (Python cannot
    kill it) and raises.  Exceptions from ``fn`` — including
    ``BaseException`` — propagate unchanged when the call finishes in
    time.
    """
    if timeout_s is None:
        return fn()
    if timeout_s <= 0:
        raise EngineError(f"timeout must be positive, got {timeout_s}")
    box: dict[str, Any] = {}

    def target() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # re-raised on the calling thread
            box["error"] = exc

    thread = threading.Thread(target=target, name=f"deadline/{label}", daemon=True)
    started = time.perf_counter()
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise TaskTimeoutError(
            f"{label} exceeded its {timeout_s}s deadline "
            f"(ran {time.perf_counter() - started:.3f}s)"
        )
    if "error" in box:
        raise box["error"]
    return box.get("value")
