"""Cross-run memoization: the engine side of the artifact store.

A payload that implements :class:`CacheAwarePayload` tells the scheduler
how to skip itself: what its cache key is, which files it produces,
where they live, and how to rebuild its Python value from the recorded
metadata once those files are back on disk.  Before executing such a
task the scheduler consults the run's
:class:`~repro.store.ArtifactStore`; a fingerprint hit materializes the
outputs from the content pool (hardlink or copy) and completes the task
as :attr:`~repro.engine.graph.TaskState.CACHED`, journaling a ``cache``
event with the bytes it did not have to recompute.  A miss executes the
payload normally and then files the produced outputs, so the *next* run
hits.

This is what turns ``--resume`` from same-run checkpointing into
cross-run memoization: the run-state file still short-circuits within
one interrupted sweep, while the artifact index short-circuits across
fresh runs, branches and checkouts — as long as the fingerprint (task
identity + parameter hash) matches, the stored artifact stands in for
the re-execution.

:class:`MemoizedPayload` is the concrete wrapper most call sites use; a
payload may also implement the protocol itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Protocol, runtime_checkable

from repro.common.errors import EngineError

__all__ = ["CacheAwarePayload", "MemoizedPayload"]


@runtime_checkable
class CacheAwarePayload(Protocol):
    """What a payload must answer for the scheduler to memoize it.

    The scheduler calls, in order:

    * on the *hit* path: :meth:`cache_key` → index lookup →
      materialization of the recorded outputs under :meth:`cache_root`
      → :meth:`cache_restore` to rebuild the task's value;
    * on the *miss* path: the payload executes normally, then
      :meth:`cache_meta` (``None`` vetoes caching — e.g. a run whose
      validations failed) and :meth:`cache_outputs` name what to file.
    """

    def __call__(self, ctx: Any) -> Any: ...

    def cache_key(self) -> str:
        """The task fingerprint this payload memoizes under."""
        ...

    def cache_root(self) -> Path:
        """Directory output paths are recorded relative to."""
        ...

    def cache_outputs(self, value: Any) -> Mapping[str, Path]:
        """Logical name → produced file, evaluated after execution."""
        ...

    def cache_meta(self, value: Any) -> dict | None:
        """JSON metadata persisted with the record; ``None`` = don't cache."""
        ...

    def cache_restore(self, meta: dict) -> Any:
        """Rebuild the task's value after outputs are materialized."""
        ...


@dataclass
class MemoizedPayload:
    """A plain payload plus the answers the cache protocol needs.

    ``outputs`` maps the task's value to the files it produced (these
    are what get content-addressed); ``restore`` rebuilds the value from
    the recorded metadata on a hit (defaulting to the metadata itself);
    ``meta`` extracts the metadata to persist (defaulting to ``{}``;
    return ``None`` to veto caching for this particular value).
    """

    fn: Callable[[Any], Any]
    key: str
    root: Path
    outputs: Callable[[Any], Mapping[str, Path]]
    meta: Callable[[Any], dict | None] = field(default=lambda value: {})
    restore: Callable[[dict], Any] | None = None
    #: Materialize via hardlink instead of copy (read-only consumers).
    link: bool = False

    def __post_init__(self) -> None:
        if not self.key:
            raise EngineError("MemoizedPayload needs a non-empty cache key")
        self.root = Path(self.root)

    def __call__(self, ctx: Any) -> Any:
        return self.fn(ctx)

    def cache_key(self) -> str:
        return self.key

    def cache_root(self) -> Path:
        return self.root

    def cache_outputs(self, value: Any) -> Mapping[str, Path]:
        return dict(self.outputs(value))

    def cache_meta(self, value: Any) -> dict | None:
        return self.meta(value)

    def cache_restore(self, meta: dict) -> Any:
        if self.restore is None:
            return dict(meta)
        return self.restore(meta)
