"""Deterministic fault injection: chaos-testing the execution stack.

A :class:`FaultPlan` wraps task execution with deliberate failures so
the whole resilience layer — retry policies, timeouts, degraded states,
checkpoint/resume — can be exercised end to end (``popper run
--inject-faults SPEC``).  Determinism is the point: the same spec and
seed produce the same faults on every run, so a chaos test is itself a
reproducible experiment.

The spec grammar is a comma-separated list of clauses::

    flaky:<glob>:<n>     first n attempts of matching tasks raise a
                         TransientInjectedFault, then they succeed
    fail:<glob>          matching tasks always raise InjectedFault
                         (permanent: never retried)
    delay:<glob>:<s>     sleep s seconds before matching tasks run
                         (trips per-task deadlines)
    rate:<glob>:<p>      each attempt of a matching task fails with
                         probability p, drawn from a seeded stream

``<glob>`` is an ``fnmatch`` pattern over task ids (``run``, ``exp-*``,
``host/*``).  Counters are per-plan and per-task, guarded by a lock so
the threaded scheduler sees the same deterministic sequence as the
serial one.

For host-level chaos, :class:`repro.orchestration.connection.FlakyConnection`
wraps a live connection behind N unreachable attempts; see
``docs/robustness.md``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.common.errors import (
    EngineError,
    InjectedFault,
    TransientInjectedFault,
)
from repro.common.rng import derive_rng

__all__ = ["FaultSpec", "FaultPlan"]

_MODES = ("flaky", "fail", "delay", "rate")


@dataclass(frozen=True)
class FaultSpec:
    """One parsed clause of a fault plan."""

    mode: str
    target: str
    arg: float = 0.0

    def matches(self, task_id: str) -> bool:
        return fnmatchcase(task_id, self.target)


def _parse_clause(clause: str) -> FaultSpec:
    parts = clause.split(":")
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise EngineError(
            f"bad fault clause {clause!r}; expected mode:target[:arg]"
        )
    mode, target = parts[0], parts[1]
    if mode not in _MODES:
        raise EngineError(
            f"unknown fault mode {mode!r}; known: {', '.join(_MODES)}"
        )
    if mode == "fail":
        if len(parts) > 2:
            raise EngineError(f"fault clause {clause!r}: 'fail' takes no arg")
        return FaultSpec(mode=mode, target=target)
    if len(parts) != 3:
        raise EngineError(f"fault clause {clause!r}: {mode!r} needs an arg")
    try:
        arg = float(parts[2])
    except ValueError:
        raise EngineError(
            f"fault clause {clause!r}: bad numeric arg {parts[2]!r}"
        ) from None
    if not math.isfinite(arg):
        raise EngineError(f"fault clause {clause!r}: arg must be finite")
    if arg < 0:
        raise EngineError(f"fault clause {clause!r}: arg must be >= 0")
    if mode == "rate" and arg > 1:
        raise EngineError(f"fault clause {clause!r}: rate must be <= 1")
    return FaultSpec(mode=mode, target=target, arg=arg)


class FaultPlan:
    """A seeded set of fault specs, applied before each task attempt.

    The scheduler calls :meth:`before` at the start of every attempt of
    every task; matching clauses fire in spec order.  All bookkeeping
    (attempt counters, probability streams) is deterministic under the
    plan's seed and thread-safe.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...], seed: int = 42) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._counts: dict[tuple[int, str], int] = {}

    @classmethod
    def parse(cls, text: str, seed: int = 42) -> "FaultPlan":
        """Parse a spec string (see module docstring for the grammar)."""
        clauses = [c.strip() for c in str(text).split(",") if c.strip()]
        if not clauses:
            raise EngineError(f"empty fault spec: {text!r}")
        return cls([_parse_clause(c) for c in clauses], seed=seed)

    def describe(self) -> str:
        return ",".join(
            f"{s.mode}:{s.target}" + (f":{s.arg:g}" if s.mode != "fail" else "")
            for s in self.specs
        )

    def __getstate__(self) -> dict:
        # The lock cannot cross a process boundary; counters ship as a
        # snapshot.  Each task runs all of its attempts inside a single
        # worker, and counters are keyed per task, so per-job snapshots
        # observe the same deterministic sequence a shared plan would.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def _bump(self, index: int, task_id: str) -> int:
        with self._lock:
            key = (index, task_id)
            self._counts[key] = self._counts.get(key, 0) + 1
            return self._counts[key]

    def before(self, task_id: str) -> None:
        """Apply every matching clause to one attempt of *task_id*.

        Raises the injected exception (or sleeps, for ``delay``); a task
        no clause matches is untouched.
        """
        for index, spec in enumerate(self.specs):
            if not spec.matches(task_id):
                continue
            count = self._bump(index, task_id)
            if spec.mode == "delay":
                time.sleep(spec.arg)
            elif spec.mode == "fail":
                raise InjectedFault(
                    f"injected permanent fault for task {task_id!r}"
                )
            elif spec.mode == "flaky":
                if count <= int(spec.arg):
                    raise TransientInjectedFault(
                        f"injected transient fault for task {task_id!r} "
                        f"(attempt {count} of {int(spec.arg)} doomed)"
                    )
            elif spec.mode == "rate":
                rng = derive_rng(self.seed, "fault", spec.target, task_id, count)
                if float(rng.random()) < spec.arg:
                    raise TransientInjectedFault(
                        f"injected random fault for task {task_id!r} "
                        f"(attempt {count}, p={spec.arg:g})"
                    )
