"""The DAG-based execution engine shared by every execution layer.

Pipeline stages, ``popper run --all`` sweeps, CI matrix jobs and
playbook host fan-out all declare their work as a
:class:`~repro.engine.graph.TaskGraph` and hand it to a
:class:`~repro.engine.scheduler.Scheduler` —
:class:`~repro.engine.scheduler.SerialScheduler` for deterministic
debugging, :class:`~repro.engine.scheduler.ThreadedScheduler` for
I/O-overlapping parallelism, or
:class:`~repro.engine.procsched.ProcessScheduler` for true multi-core
execution of pickle-safe payloads
(:func:`~repro.engine.scheduler.resolve_backend` picks one from
``--backend``/``-j``).  See ``docs/engine.md``.

The resilience layer (see ``docs/robustness.md``) rides on top:
:class:`~repro.engine.resilience.RetryPolicy` and per-task deadlines,
checkpoint/resume through a
:class:`~repro.engine.runstate.RunStateStore`, and deterministic chaos
testing through a :class:`~repro.engine.faults.FaultPlan`, all bundled
into the scheduler's :class:`~repro.engine.scheduler.RunOptions`.
Signal-safe shutdown (same doc) routes SIGINT/SIGTERM through a
:class:`~repro.engine.shutdown.CancelToken` on ``RunOptions.cancel``:
in-flight tasks drain and checkpoint, then the run raises
:class:`~repro.engine.shutdown.RunCancelled`.

Cross-run memoization (see ``docs/caching.md``) rides on the same
bundle: a payload implementing
:class:`~repro.engine.cache.CacheAwarePayload` (usually via
:class:`~repro.engine.cache.MemoizedPayload`) is consulted against
``RunOptions.artifact_store`` before executing; a hit materializes the
stored outputs and completes the task as
:attr:`~repro.engine.graph.TaskState.CACHED`.
"""

from repro.engine.cache import CacheAwarePayload, MemoizedPayload
from repro.engine.faults import FaultPlan, FaultSpec
from repro.engine.graph import (
    GraphResult,
    ReadySet,
    Task,
    TaskContext,
    TaskGraph,
    TaskOutcome,
    TaskState,
)
from repro.engine.resilience import NO_RETRY, RetryPolicy, call_with_timeout
from repro.engine.runstate import (
    RUN_STATE_FILE,
    RunStateStore,
    task_fingerprint,
)
from repro.engine.procsched import ProcessScheduler, audit_pickle_safety
from repro.engine.scheduler import (
    BACKENDS,
    RunOptions,
    Scheduler,
    SerialScheduler,
    ThreadedScheduler,
    resolve_backend,
)
from repro.engine.shutdown import (
    EXIT_SIGINT,
    EXIT_SIGTERM,
    CancelToken,
    GracefulShutdown,
    RunCancelled,
)

__all__ = [
    "GraphResult",
    "ReadySet",
    "Task",
    "TaskContext",
    "TaskGraph",
    "TaskOutcome",
    "TaskState",
    "BACKENDS",
    "RunOptions",
    "Scheduler",
    "SerialScheduler",
    "ThreadedScheduler",
    "ProcessScheduler",
    "audit_pickle_safety",
    "resolve_backend",
    "RetryPolicy",
    "NO_RETRY",
    "call_with_timeout",
    "FaultPlan",
    "FaultSpec",
    "CacheAwarePayload",
    "MemoizedPayload",
    "RUN_STATE_FILE",
    "RunStateStore",
    "task_fingerprint",
    "EXIT_SIGINT",
    "EXIT_SIGTERM",
    "CancelToken",
    "GracefulShutdown",
    "RunCancelled",
]
