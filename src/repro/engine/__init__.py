"""The DAG-based execution engine shared by every execution layer.

Pipeline stages, ``popper run --all`` sweeps, CI matrix jobs and
playbook host fan-out all declare their work as a
:class:`~repro.engine.graph.TaskGraph` and hand it to a
:class:`~repro.engine.scheduler.Scheduler` —
:class:`~repro.engine.scheduler.SerialScheduler` for deterministic
debugging or :class:`~repro.engine.scheduler.ThreadedScheduler` for
parallel execution.  See ``docs/engine.md``.
"""

from repro.engine.graph import (
    GraphResult,
    ReadySet,
    Task,
    TaskContext,
    TaskGraph,
    TaskOutcome,
    TaskState,
)
from repro.engine.scheduler import Scheduler, SerialScheduler, ThreadedScheduler

__all__ = [
    "GraphResult",
    "ReadySet",
    "Task",
    "TaskContext",
    "TaskGraph",
    "TaskOutcome",
    "TaskState",
    "Scheduler",
    "SerialScheduler",
    "ThreadedScheduler",
]
