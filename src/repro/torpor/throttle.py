"""Performance recreation by CPU throttling.

Torpor's second trick: given a *fast* target machine and the variability
profile against an *old* base machine, run the old experiment on the new
machine inside a CPU-quota'd container so its performance matches the
original platform.  The quota for a CPU-bound workload is simply the
inverse of the CPU-class speedup; memory-bound workloads cannot be fully
recreated by CPU quota alone, which the API surfaces via
:func:`recreation_error`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PlatformError
from repro.torpor.variability import VariabilityProfile

__all__ = ["Throttle", "throttle_for", "recreation_error"]


@dataclass(frozen=True)
class Throttle:
    """A CPU quota in (0, 1]: the fraction of cycles the workload may use."""

    cpu_quota: float

    def __post_init__(self) -> None:
        if not 0.0 < self.cpu_quota <= 1.0:
            raise PlatformError(f"cpu quota out of (0, 1]: {self.cpu_quota}")

    def apply(self, runtime_s: float, cpu_fraction: float = 1.0) -> float:
        """Observed runtime under the quota.

        Only the CPU-bound share of the runtime stretches; memory/storage
        phases proceed at native speed.
        """
        if not 0.0 <= cpu_fraction <= 1.0:
            raise PlatformError(f"cpu fraction out of range: {cpu_fraction}")
        cpu_part = runtime_s * cpu_fraction / self.cpu_quota
        other = runtime_s * (1.0 - cpu_fraction)
        return cpu_part + other


def throttle_for(profile: VariabilityProfile, klass: str = "cpu") -> Throttle:
    """The quota that recreates the base machine for *klass*-bound work.

    Uses the midpoint of the class speedup range; a speedup below 1
    (target slower than base) needs no throttling.
    """
    r = profile.range_for(klass)
    midpoint = (r.low + r.high) / 2.0
    if midpoint <= 1.0:
        return Throttle(cpu_quota=1.0)
    return Throttle(cpu_quota=1.0 / midpoint)


def recreation_error(
    profile: VariabilityProfile,
    class_mix: dict[str, float],
    throttle: Throttle,
) -> float:
    """Relative error of recreating a mixed workload with a CPU quota.

    Computes the workload's ideal runtime ratio (base/target per class)
    against the ratio the throttle actually produces; returns
    ``|achieved - 1|`` where 1.0 means a perfect recreation of base-machine
    runtime.
    """
    total = sum(class_mix.values())
    if abs(total - 1.0) > 1e-6:
        raise PlatformError(f"class mix must sum to 1, got {total}")
    # Target runtime fractions, per class, for one second of base runtime.
    achieved = 0.0
    for klass, fraction in class_mix.items():
        if fraction == 0:
            continue
        r = profile.range_for(klass)
        speedup = (r.low + r.high) / 2.0
        native = fraction / speedup  # seconds on target, unthrottled
        if klass in ("cpu", "fp", "branch"):
            achieved += native / throttle.cpu_quota
        else:
            achieved += native
    return abs(achieved - 1.0)
