"""Torpor: workload- and architecture-independent variability profiles.

Torpor characterizes a platform with the baseliner battery, derives the
per-class speedup *range* of a target platform with respect to a base
platform, and uses that range to predict how an arbitrary application's
performance will move between the two — without ever running the
application on the target (the paper's
``jimenez_characterizing_2016`` technique).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import PlatformError
from repro.baseliner.fingerprint import SpeedupProfile
from repro.baseliner.stressors import STRESSORS

__all__ = ["VariabilityRange", "VariabilityProfile", "predict_speedup"]


@dataclass(frozen=True)
class VariabilityRange:
    """Speedup interval of one resource class on the target platform."""

    klass: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise PlatformError(f"inverted range for {self.klass}")

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def widened(self, fraction: float = 0.05) -> "VariabilityRange":
        """The range widened symmetrically (safety margin for prediction)."""
        span = self.high - self.low
        pad = max(span, self.low * fraction) * fraction + self.low * fraction
        return VariabilityRange(
            klass=self.klass, low=self.low - pad, high=self.high + pad
        )


@dataclass(frozen=True)
class VariabilityProfile:
    """Per-class speedup ranges of target vs base platform."""

    base: str
    target: str
    ranges: tuple[VariabilityRange, ...]

    @classmethod
    def from_speedups(cls, speedups: SpeedupProfile) -> "VariabilityProfile":
        classes = sorted({s.klass for s in STRESSORS.values()})
        ranges = []
        for klass in classes:
            values = [
                value
                for name, value in speedups.speedups
                if STRESSORS[name].klass == klass
            ]
            if not values:
                continue
            ranges.append(
                VariabilityRange(klass=klass, low=min(values), high=max(values))
            )
        return cls(base=speedups.base, target=speedups.target, ranges=tuple(ranges))

    def range_for(self, klass: str) -> VariabilityRange:
        for r in self.ranges:
            if r.klass == klass:
                return r
        raise PlatformError(f"no variability range for class {klass!r}")

    def classes(self) -> list[str]:
        return [r.klass for r in self.ranges]


def predict_speedup(
    profile: VariabilityProfile, class_mix: dict[str, float]
) -> VariabilityRange:
    """Predicted speedup interval for an app with the given time mix.

    *class_mix* gives the fraction of the app's base-platform runtime
    attributable to each resource class (must sum to 1).  The prediction
    composes per-class ranges harmonically: runtime fractions divide by
    class speedups, so the app speedup is ``1 / sum(f_i / s_i)``.
    """
    total = sum(class_mix.values())
    if not np.isclose(total, 1.0, atol=1e-6):
        raise PlatformError(f"class mix must sum to 1, got {total}")
    if any(f < 0 for f in class_mix.values()):
        raise PlatformError("class-mix fractions must be non-negative")
    low_denominator = 0.0
    high_denominator = 0.0
    for klass, fraction in class_mix.items():
        if fraction == 0:
            continue
        r = profile.range_for(klass)
        low_denominator += fraction / r.low    # slowest case
        high_denominator += fraction / r.high  # fastest case
    if low_denominator == 0:
        raise PlatformError("class mix selected no classes")
    return VariabilityRange(
        klass="app",
        low=1.0 / low_denominator,
        high=1.0 / high_denominator,
    )
