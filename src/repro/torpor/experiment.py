"""The end-to-end Torpor use case (ASPLOS §5.1 / Fig. torpor-variability).

Runs the baseliner battery on a base node (the authors' "10 year old
Xeon") and on a target node (a CloudLab machine), compares fingerprints,
and emits both the per-stressor speedup table and the bucketed histogram
series that regenerate the paper's variability-profile figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import SeedSequenceFactory
from repro.common.tables import MetricsTable
from repro.monitor.tracing import current_tracer
from repro.baseliner.fingerprint import (
    BaselineProfile,
    SpeedupProfile,
    compare,
    run_battery,
)
from repro.platform.sites import Site, default_sites
from repro.torpor.variability import VariabilityProfile

__all__ = ["TorporResult", "run_torpor_experiment"]


@dataclass(frozen=True)
class TorporResult:
    """Everything the Torpor figure and validations need."""

    base_profile: BaselineProfile
    target_profile: BaselineProfile
    speedups: SpeedupProfile
    variability: VariabilityProfile

    def speedup_table(self) -> MetricsTable:
        """Per-stressor rows (the figure's underlying data)."""
        return self.speedups.to_table()

    def histogram_table(self, bin_width: float = 0.1) -> MetricsTable:
        """Bucketed histogram rows (the figure itself)."""
        table = MetricsTable(["bucket_low", "bucket_high", "stressors"])
        for lo, hi, count in self.speedups.histogram(bin_width):
            table.append({"bucket_low": lo, "bucket_high": hi, "stressors": count})
        return table


def run_torpor_experiment(
    base_site: Site | None = None,
    target_site: Site | None = None,
    seed: int = 42,
    runs: int = 3,
) -> TorporResult:
    """Run the full experiment.

    Defaults to the paper's setup: the lab's 2006 Xeon as base, a
    CloudLab c220g1 node as target.
    """
    seeds = SeedSequenceFactory(seed)
    if base_site is None or target_site is None:
        sites = default_sites(seed)
        base_site = base_site or sites["lab"]
        target_site = target_site or sites["cloudlab-wisc"]
    tracer = current_tracer()
    with base_site.allocate(1) as base_alloc, target_site.allocate(1) as target_alloc:
        with tracer.span("torpor/battery", role="base", site=base_site.name):
            base_profile = run_battery(base_alloc[0], seeds, runs=runs)
        with tracer.span("torpor/battery", role="target", site=target_site.name):
            target_profile = run_battery(target_alloc[0], seeds, runs=runs)
    with tracer.span("torpor/compare"):
        speedups = compare(base_profile, target_profile)
    return TorporResult(
        base_profile=base_profile,
        target_profile=target_profile,
        speedups=speedups,
        variability=VariabilityProfile.from_speedups(speedups),
    )
