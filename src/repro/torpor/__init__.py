"""Torpor: cross-platform performance variability characterization,
prediction and recreation (ASPLOS use case §5.1).
"""

from repro.torpor.experiment import TorporResult, run_torpor_experiment
from repro.torpor.throttle import Throttle, recreation_error, throttle_for
from repro.torpor.variability import (
    VariabilityProfile,
    VariabilityRange,
    predict_speedup,
)

__all__ = [
    "TorporResult",
    "run_torpor_experiment",
    "VariabilityProfile",
    "VariabilityRange",
    "predict_speedup",
    "Throttle",
    "throttle_for",
    "recreation_error",
]
