"""``popper serve``: a crash-tolerant job-queue service core.

The service layer turns the batch toolchain into a long-lived daemon
without weakening any of its durability contracts:

* :mod:`repro.serve.queue` — the persistent lease-based job queue
  (journal-as-truth, crash-safe publish orderings, backoff + dead
  letter, tenant fairness, bounded admission);
* :mod:`repro.serve.workers` — the supervised worker pool (marker-file
  crash attribution, grace-poll reaping, respawn);
* :mod:`repro.serve.daemon` — :class:`PopperServer`, the tick-driven
  scheduler wiring queue, pool, artifact cache and API together;
* :mod:`repro.serve.api` — the local HTTP/JSON surface with a clean
  4xx contract for everything the fuzz grammar throws at it;
* :mod:`repro.serve.smoke` — the ``--serve-smoke`` CI self-check:
  submit, cache-serve, ``kill -9`` a worker mid-job, recover, drain.

Design notes and the recovery walk-throughs live in ``docs/serve.md``.
"""

from repro.serve.api import MAX_BODY_BYTES, TENANT_RE, make_server
from repro.serve.daemon import PopperServer
from repro.serve.queue import QUEUE_DIR, REQUEUE_POLICY, JobQueue, QueuedJob
from repro.serve.smoke import serve_smoke
from repro.serve.workers import ServeJob, WorkerPool

__all__ = [
    "MAX_BODY_BYTES",
    "TENANT_RE",
    "make_server",
    "PopperServer",
    "QUEUE_DIR",
    "REQUEUE_POLICY",
    "JobQueue",
    "QueuedJob",
    "serve_smoke",
    "ServeJob",
    "WorkerPool",
]
