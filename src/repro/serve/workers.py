"""The supervised worker pool behind ``popper serve``.

A thin re-application of the :class:`~repro.engine.ProcessScheduler`
machinery to a long-lived service: a fixed pool of worker *processes*
pulling pickled job payloads off a shared queue, with the same two
crash-containment devices —

* **marker-file attribution** — before a payload runs, the worker
  writes the job id *synchronously* to its private marker file.  An
  ``mp.Queue`` message would not survive a hard crash (``kill -9``
  murders the feeder thread before it flushes), but the marker does:
  it is how the supervisor attributes an unreported job to a dead
  worker and fails (i.e. requeues) exactly that job.
* **grace-poll reaping** — a worker observed dead is given one more
  poll before attribution, so a result that was already in the pipe
  when the process died still gets drained rather than double-run.

Dead workers are respawned (unless the pool is draining), so a crashing
payload degrades one job, never the service.  The payload itself —
:class:`ServeJob` — is plain picklable data mirroring
:class:`~repro.core.sweep.SweepExperimentJob`: the worker reopens the
repository from its path and runs the ordinary
:class:`~repro.core.pipeline.ExperimentPipeline` with the shared
artifact store (all inter-process safety comes from ``RepoLock`` and
the store's own locking, proven by the process backend).  Results cross
back as plain dicts of JSON scalars, so the result queue can never be
poisoned by an unpicklable value.
"""

from __future__ import annotations

import pickle
import queue as queue_mod
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ServeError

__all__ = ["ServeJob", "WorkerPool"]


@dataclass
class ServeJob:
    """One queued run request, as the picklable worker payload."""

    job_id: str
    repo_root: str
    experiment: str
    use_cache: bool = True

    def __call__(self) -> dict:
        # Imported here so a forked worker never re-imports at module
        # scope and the payload stays cheap to pickle.
        from repro.core.pipeline import ExperimentPipeline
        from repro.core.repo import PopperRepository

        repo = PopperRepository.open(self.repo_root)
        pipeline = ExperimentPipeline(
            repo,
            self.experiment,
            artifact_store=repo.artifact_store if self.use_cache else None,
            run_meta={"backend": "serve", "job": self.job_id},
        )
        result = pipeline.run(strict=False, resume=False)
        return {
            "rows": len(result.results),
            "validated": bool(result.validated),
            "figures": {
                name: str(path) for name, path in result.figures.items()
            },
        }


def _worker_main(index: int, jobs_q, results_q, marker_path: str) -> None:
    """Worker loop: pull job blobs until the ``None`` sentinel arrives."""
    marker = Path(marker_path)
    while True:
        blob = jobs_q.get()
        if blob is None:
            break
        job: ServeJob = pickle.loads(blob)
        # Synchronous write *before* running: crash attribution.
        marker.write_text(job.job_id, encoding="utf-8")
        started = time.perf_counter()
        try:
            meta = job()
            record = {
                "job": job.job_id,
                "ok": True,
                "meta": meta,
                "seconds": time.perf_counter() - started,
                "worker": index,
            }
        except Exception as exc:
            # BaseException (SimulatedCrash, RunCancelled) deliberately
            # propagates: a crashing worker is the supervisor's problem.
            record = {
                "job": job.job_id,
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "seconds": time.perf_counter() - started,
                "worker": index,
            }
        results_q.put(pickle.dumps(record))
        marker.write_text("", encoding="utf-8")


class WorkerPool:
    """A supervised pool of job-running processes."""

    def __init__(self, size: int = 2, start_method: str | None = None) -> None:
        if size < 1:
            raise ServeError(f"worker pool size must be >= 1, got {size}")
        self.size = int(size)
        self.start_method = start_method
        self.workers: list = []
        self._marker_paths: dict[int, Path] = {}
        self._dead_seen: set[int] = set()
        self._reaped: set[int] = set()
        self._ctx = None
        self._jobs_q = None
        self._results_q = None
        self._scratch: Path | None = None

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        import multiprocessing as mp

        if self._ctx is not None:
            raise ServeError("worker pool already started")
        if self.start_method is not None:
            self._ctx = mp.get_context(self.start_method)
        else:
            methods = mp.get_all_start_methods()
            self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._jobs_q = self._ctx.Queue()
        self._results_q = self._ctx.Queue()
        self._scratch = Path(tempfile.mkdtemp(prefix="popper-serve-"))
        for _ in range(self.size):
            self._spawn()

    def _spawn(self) -> None:
        index = len(self.workers)
        marker = self._scratch / f"running-{index}"
        self._marker_paths[index] = marker
        proc = self._ctx.Process(
            target=_worker_main,
            args=(index, self._jobs_q, self._results_q, str(marker)),
            daemon=True,
            name=f"popper-serve-worker-{index}",
        )
        proc.start()
        self.workers.append(proc)

    def worker_pids(self) -> list[int]:
        """Live worker pids (chaos tests SIGKILL these)."""
        return [p.pid for p in self.workers if p.is_alive() and p.pid]

    def alive_count(self) -> int:
        return sum(1 for p in self.workers if p.is_alive())

    def current_jobs(self) -> dict[int, str]:
        """Marker-file view of what each live worker is running now.

        The smoke check and the chaos tests use this to aim a
        ``kill -9`` at a worker that has *definitely* started a job
        (the marker write precedes the run, synchronously).
        """
        running: dict[int, str] = {}
        for index, proc in enumerate(self.workers):
            if not proc.is_alive():
                continue
            marker = self._marker_paths.get(index)
            if marker is None or not marker.is_file():
                continue
            try:
                job_id = marker.read_text(encoding="utf-8").strip()
            except OSError:
                continue
            if job_id:
                running[index] = job_id
        return running

    # -- dispatch / results ------------------------------------------------------
    def dispatch(self, job: ServeJob) -> None:
        if self._jobs_q is None:
            raise ServeError("worker pool not started")
        self._jobs_q.put(pickle.dumps(job))

    def poll(self, timeout_s: float = 0.05) -> list[dict]:
        """Drain finished-job records (waits up to *timeout_s* for one)."""
        if self._results_q is None:
            return []
        records: list[dict] = []
        deadline = time.monotonic() + max(timeout_s, 0.0)
        while True:
            wait = deadline - time.monotonic()
            try:
                if wait > 0:
                    blob = self._results_q.get(timeout=wait)
                else:
                    blob = self._results_q.get_nowait()
            except queue_mod.Empty:
                break
            records.append(pickle.loads(blob))
            deadline = time.monotonic()  # drain the rest without waiting
        return records

    def reap(self, respawn: bool = True) -> list[str]:
        """Attribute dead workers' in-flight jobs; respawn replacements.

        Returns the job ids that died unreported (possibly empty — a
        worker killed between jobs has an empty marker).  Each dead
        worker gets one grace poll before attribution so an already-
        queued result is not double-counted.
        """
        victims: list[str] = []
        for index, proc in enumerate(self.workers):
            if proc.is_alive() or index in self._reaped:
                continue
            if index not in self._dead_seen:
                self._dead_seen.add(index)  # grace: attribute next call
                continue
            self._reaped.add(index)
            marker = self._marker_paths.get(index)
            job_id = ""
            if marker is not None and marker.is_file():
                try:
                    job_id = marker.read_text(encoding="utf-8").strip()
                except OSError:
                    job_id = ""
            if job_id:
                victims.append(job_id)
            if respawn:
                self._spawn()
        return victims

    # -- shutdown ----------------------------------------------------------------
    def drain(self, timeout_s: float = 10.0) -> None:
        """Stop the pool: sentinel every worker, join, sweep scratch."""
        if self._ctx is None:
            return
        for proc in self.workers:
            if proc.is_alive():
                self._jobs_q.put(None)
        deadline = time.monotonic() + timeout_s
        for proc in self.workers:
            proc.join(max(deadline - time.monotonic(), 0.1))
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        # mp.Queue feeder threads must unblock before interpreter exit.
        for q in (self._jobs_q, self._results_q):
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
        self._ctx = None
        self._jobs_q = None
        self._results_q = None
        self.workers = []
