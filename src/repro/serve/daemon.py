"""The ``popper serve`` daemon: queue + worker pool + HTTP API, wired.

:class:`PopperServer` is the service core.  One instance owns

* a :class:`~repro.serve.queue.JobQueue` rooted at ``.pvcs/queue/``
  (crash recovery happens in its constructor — a restarted daemon
  re-admits every job the dead one held leases on),
* a :class:`~repro.serve.workers.WorkerPool` of supervised processes,
* a :func:`~repro.serve.api.make_server` HTTP front end.

The scheduler is a single **tick** — poll finished work, reap dead
workers, expire leases, dispatch ready jobs — driven either by the
daemon's own loop thread (:meth:`start` / :meth:`run_until`, the CLI
path) or manually by tests and the smoke check, which call
:meth:`tick` directly for deterministic chaos injection.

Cache interop is the recovery keystone: the daemon computes the *same*
whole-experiment memoization key the CLI sweep uses
(``task_fingerprint("sweep/<name>", vars-hash)``), so

* a submission whose result is already pooled — by an earlier job *or*
  by a plain ``popper run`` — is served from cache at admission,
  bypassing the queue bound entirely (saturation degrades to
  cache-only service, not an outage);
* a job re-leased after a crash between result-publish steps
  (``queue.publish``) short-circuits at dispatch, making the re-run
  idempotent and byte-identical;
* results produced under ``popper serve`` are visible to later
  ``popper run`` invocations, and vice versa.

Graceful drain: :meth:`drain` stops admission (503), lets leased jobs
finish within a bounded window, checkpoints the queue journal, stops
the pool and the HTTP server.  The CLI maps SIGINT/SIGTERM onto it via
:class:`~repro.engine.shutdown.GracefulShutdown` and exits 130/143.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.common.errors import BadJobError, DrainingError, ServeError
from repro.common.hashing import sha256_text
from repro.engine import task_fingerprint
from repro.engine.resilience import RetryPolicy
from repro.serve.api import make_server
from repro.serve.queue import QUEUE_DIR, JobQueue, QueuedJob
from repro.serve.workers import ServeJob, WorkerPool

__all__ = ["PopperServer"]


class PopperServer:
    """The job-queue service core behind ``popper serve``."""

    def __init__(
        self,
        repo,
        workers: int = 2,
        max_queue: int = 16,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = 15.0,
        retry: RetryPolicy | None = None,
        clock=time.time,
        durable: bool = True,
    ) -> None:
        if workers < 1:
            raise ServeError(f"--workers must be >= 1, got {workers}")
        self.repo = repo
        self.clock = clock
        self.queue = JobQueue(
            Path(repo.vcs.meta) / QUEUE_DIR,
            max_depth=max_queue,
            lease_s=lease_s,
            retry=retry,
            clock=clock,
            durable=durable,
        )
        self.pool = WorkerPool(size=workers)
        self.host = host
        self.port = port
        self.httpd = None
        self.draining = False
        self.started = None
        self._inflight: set[str] = set()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- cache interop -----------------------------------------------------------
    def _sweep_key(self, experiment: str) -> str:
        # Identical to the CLI sweep's memoization key: serve and
        # ``popper run`` share one cache namespace, which is what makes
        # re-runs after a publish crash byte-identical.
        vars_path = self.repo.experiment_dir(experiment) / "vars.yml"
        text = (
            vars_path.read_text(encoding="utf-8")
            if vars_path.is_file()
            else ""
        )
        return task_fingerprint(
            f"sweep/{experiment}", {"vars": sha256_text(text)}
        )

    def _try_cache(self, experiment: str) -> dict | None:
        """Materialize a pooled result for *experiment*; ``None`` on miss."""
        store = self.repo.artifact_store
        if store is None:
            return None
        try:
            record = store.lookup(self._sweep_key(experiment))
            if record is None:
                return None
            store.materialize(record, self.repo.root)
            return dict(record.meta)
        except Exception:
            return None  # a sick cache is a miss, never an outage

    def _file_into_cache(self, experiment: str, meta: dict) -> None:
        """Pool a worker's validated outputs under the sweep key.

        Parent-side, like the process scheduler: the worker already
        wrote the files; the daemon records them so the *next* request
        (or a re-leased copy of this one) is a cache hit.
        """
        store = self.repo.artifact_store
        if store is None or not meta.get("validated"):
            return
        exp_dir = self.repo.experiment_dir(experiment)
        outputs = {
            "results": exp_dir / "results.csv",
            "report": exp_dir / "validation_report.txt",
        }
        for name, path in dict(meta.get("figures") or {}).items():
            outputs[f"figure-{name}"] = Path(path)
        for extra in ("figure.svg", "baseline.json"):
            if (exp_dir / extra).is_file():
                outputs[extra] = exp_dir / extra
        try:
            store.store(
                self._sweep_key(experiment),
                f"serve/{experiment}",
                outputs,
                self.repo.root,
                meta={"rows": int(meta.get("rows", 0)), "validated": True},
            )
        except Exception:
            pass  # cache filing is best-effort; the result file is truth

    # -- admission ---------------------------------------------------------------
    def submit(self, experiment: str, tenant: str = "default") -> QueuedJob:
        """Admit one run request (HTTP ``POST /v1/jobs`` lands here).

        Order matters: drain check, existence check, then the cache
        short-circuit *before* the depth bound — a saturated daemon
        still serves warm results (degraded, not down).
        """
        if self.draining:
            raise DrainingError("daemon is draining; not accepting jobs")
        if experiment not in self.repo.experiments():
            raise BadJobError(f"unknown experiment: {experiment}")
        cached_meta = self._try_cache(experiment)
        if cached_meta is not None:
            return self.queue.submit(
                experiment, tenant=tenant, cached_meta=cached_meta
            )
        return self.queue.submit(experiment, tenant=tenant)

    # -- the scheduler tick ------------------------------------------------------
    def tick(self, poll_s: float = 0.05) -> int:
        """One supervision round; returns the number of jobs settled.

        Settle finished work first (freeing lease + pool slots), then
        attribute dead workers' jobs, then expire stale leases, then
        dispatch — so a single tick makes maximal progress and the loop
        degenerates to cheap polls when idle.
        """
        settled = 0
        for record in self.pool.poll(timeout_s=poll_s):
            settled += self._settle(record)
        for job_id in self.pool.reap(respawn=not self.draining):
            job = self.queue.jobs.get(job_id)
            if job is not None and job.state == "leased":
                self.queue.fail(job_id, "worker died mid-job")
            self._inflight.discard(job_id)
            settled += 1
        for job in self.queue.expire_leases():
            self._inflight.discard(job.id)
        self._heartbeat_inflight()
        if not self.draining:
            self._dispatch_ready()
        return settled

    def _settle(self, record: dict) -> int:
        job_id = str(record.get("job", ""))
        self._inflight.discard(job_id)
        job = self.queue.jobs.get(job_id)
        if job is None or job.state == "done":
            return 0  # duplicate delivery after a re-lease; already settled
        if record.get("ok"):
            meta = dict(record.get("meta") or {})
            # File into the pool *before* journalling done: a crash at
            # queue.publish then re-runs this job as a cache hit.
            self._file_into_cache(job.experiment, meta)
            self.queue.complete(
                job_id,
                meta={
                    "rows": int(meta.get("rows", 0)),
                    "validated": bool(meta.get("validated", False)),
                },
                seconds=float(record.get("seconds", 0.0)),
            )
        else:
            self.queue.fail(job_id, str(record.get("error", "worker error")))
        return 1

    def _heartbeat_inflight(self) -> None:
        # Renew leases past their half-life so a slow (but alive) run is
        # never expired out from under its worker.
        now = self.clock()
        for job_id in list(self._inflight):
            job = self.queue.jobs.get(job_id)
            if (
                job is not None
                and job.state == "leased"
                and job.deadline is not None
                and job.deadline - now < self.queue.lease_s / 2
            ):
                self.queue.heartbeat(job_id)

    def _dispatch_ready(self) -> None:
        while len(self._inflight) < self.pool.size:
            job = self.queue.claim()
            if job is None:
                return
            # Dispatch-time cache short-circuit: a job re-leased after a
            # queue.publish crash finds the outputs its first run pooled.
            cached_meta = self._try_cache(job.experiment)
            if cached_meta is not None:
                self.queue.complete(job.id, meta=cached_meta, cached=True)
                continue
            self._inflight.add(job.id)
            self.pool.dispatch(
                ServeJob(
                    job_id=job.id,
                    repo_root=str(self.repo.root),
                    experiment=job.experiment,
                )
            )

    # -- introspection (the API's read surface) ----------------------------------
    def health(self) -> dict:
        return {
            "status": "ok",
            "draining": self.draining,
            "workers": self.pool.size,
            "workers_alive": self.pool.alive_count(),
            "uptime_s": (
                self.clock() - self.started if self.started is not None else 0.0
            ),
        }

    def ready(self) -> tuple[bool, dict]:
        depth = self.queue.depth()
        ready = not self.draining and depth < self.queue.max_depth
        return ready, {
            "ready": ready,
            "draining": self.draining,
            "depth": depth,
            "max_depth": self.queue.max_depth,
        }

    def stats(self) -> dict:
        stats = self.queue.stats()
        stats["workers"] = {
            "size": self.pool.size,
            "alive": self.pool.alive_count(),
            "inflight": len(self._inflight),
        }
        return stats

    def cache_stats(self) -> dict:
        store = self.repo.artifact_store
        return store.stats() if store is not None else {}

    # -- lifecycle ---------------------------------------------------------------
    def start(self, api: bool = True, loop: bool = True) -> None:
        """Spawn the pool and, optionally, the API + scheduler threads.

        Tests and the smoke check pass ``loop=False`` and drive
        :meth:`tick` themselves — deterministic supervision rounds with
        no background thread racing the chaos injection.
        """
        self.started = self.clock()
        self.pool.start()
        if api:
            self.httpd = make_server(self, self.host, self.port)
            self.port = self.httpd.server_address[1]
            thread = threading.Thread(
                target=self.httpd.serve_forever,
                name="popper-serve-http",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if loop:
            thread = threading.Thread(
                target=self._loop, name="popper-serve-tick", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.tick()
            except Exception:
                # The loop must survive anything a tick throws (a sick
                # store, a poisoned record): the next round retries.
                # BaseException — a SimulatedCrash — still kills it,
                # exactly like a real crash would.
                time.sleep(0.05)

    def run_until(self, cancel, poll_s: float = 0.2) -> None:
        """Block until *cancel* fires (the CLI foreground path)."""
        while not cancel.cancelled:
            time.sleep(poll_s)

    def drain(self, timeout_s: float = 30.0) -> None:
        """Graceful shutdown: stop admission, finish leased work, stop.

        Safe to call twice (the CLI's ``finally`` does).
        """
        self.draining = True
        self._stop.set()
        for thread in self._threads:
            if thread.name == "popper-serve-tick":
                thread.join(timeout_s)
        deadline = time.monotonic() + timeout_s
        while (self._inflight or self.queue.leased()) and (
            time.monotonic() < deadline
        ):
            self.tick(poll_s=0.1)
        if self.httpd is not None:
            self.httpd.shutdown()
            self.httpd.server_close()
            self.httpd = None
        self.pool.drain()
        self.queue.checkpoint()
        self.queue.close()
        self._threads = []

    def __enter__(self) -> "PopperServer":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()
