"""The local HTTP/JSON API of ``popper serve`` (stdlib ``http.server``).

Routes (all responses are JSON)::

    GET  /healthz            liveness: 200 while the daemon runs
    GET  /readyz             readiness: 200 accepting, 503 draining or
                             saturated (load balancers stop sending)
    POST /v1/jobs            submit {"experiment": ..., "tenant": ...}
                             -> 202 accepted / 200 cache-served
    GET  /v1/jobs            recent jobs (newest first, capped)
    GET  /v1/jobs/<id>       one job's state-machine view
    GET  /v1/stats           queue + pool counters
    GET  /v1/cache/stats     the shared artifact pool's accounting

Robustness-first request handling: the fuzz grammar in
:mod:`repro.fuzz.mutators` (``generate_serve_payload``) throws malformed
JSON, oversized bodies and bogus tenant ids at this surface, and the
contract is a *clean* 4xx JSON error for every one of them — never a
traceback, never a 500 for client-controlled input:

* missing ``Content-Length``  -> 411
* body over ``MAX_BODY_BYTES`` -> 413 (read is bounded; a lying header
  cannot buffer more than the cap)
* undecodable / non-object JSON, bad field types, bogus tenant -> 400
* well-formed but unknown experiment -> 422
* queue at its bound -> 429 with ``Retry-After``
* draining -> 503

Unexpected server-side failures do return 500, with a generic body (no
internals leak).  The server is a ``ThreadingHTTPServer``; every
mutation goes through the :class:`~repro.serve.queue.JobQueue`'s lock.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.common.errors import (
    BadJobError,
    DrainingError,
    QueueFullError,
    ReproError,
    UnknownJobError,
)

__all__ = ["MAX_BODY_BYTES", "TENANT_RE", "make_server"]

#: Admission bound on request bodies (a submission is a few dozen bytes).
MAX_BODY_BYTES = 64 * 1024

#: Tenant ids: short, printable, path-safe (they land in journal fields).
TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: How many jobs ``GET /v1/jobs`` returns (newest first).
_LIST_CAP = 200


class _ApiError(Exception):
    """Internal: carries an HTTP status to the response writer."""

    def __init__(self, status: int, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def parse_submission(raw: bytes) -> tuple[str, str]:
    """Validate a job-submission body; returns ``(experiment, tenant)``.

    Raises :class:`_ApiError` with a 4xx status for every malformed
    shape the adversarial grammar generates.
    """
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _ApiError(400, f"body is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise _ApiError(400, "body must be a JSON object")
    experiment = doc.get("experiment")
    if not isinstance(experiment, str) or not experiment.strip():
        raise _ApiError(400, "'experiment' must be a non-empty string")
    tenant = doc.get("tenant", "default")
    if not isinstance(tenant, str) or not TENANT_RE.fullmatch(tenant):
        raise _ApiError(
            400,
            "'tenant' must match [A-Za-z0-9][A-Za-z0-9_.-]{0,63}",
        )
    return experiment.strip(), tenant


def make_server(daemon, host: str = "127.0.0.1", port: int = 0):
    """A :class:`ThreadingHTTPServer` bound to *daemon*'s service layer."""

    class Handler(BaseHTTPRequestHandler):
        # One connection per request: no keep-alive state to corrupt.
        server_version = "popper-serve"

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # the journal is the record; stderr stays quiet

        # -- plumbing ---------------------------------------------------------
        def _send(self, status: int, payload: dict, retry_after=None) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                self.send_header("Retry-After", f"{retry_after:.0f}")
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> bytes:
            length = self.headers.get("Content-Length")
            if length is None:
                raise _ApiError(411, "Content-Length required")
            try:
                length = int(length)
            except ValueError:
                raise _ApiError(400, "Content-Length is not an integer")
            if length < 0:
                raise _ApiError(400, "Content-Length is negative")
            if length > MAX_BODY_BYTES:
                raise _ApiError(
                    413, f"body exceeds the {MAX_BODY_BYTES}-byte bound"
                )
            # Bounded read: a lying header cannot make us buffer more.
            return self.rfile.read(length)

        def _dispatch(self, handler) -> None:
            try:
                status, payload, retry_after = handler()
            except _ApiError as exc:
                status, payload, retry_after = (
                    exc.status,
                    {"error": str(exc)},
                    exc.retry_after,
                )
            except QueueFullError as exc:
                status, payload, retry_after = 429, {"error": str(exc)}, 1.0
            except DrainingError as exc:
                status, payload, retry_after = 503, {"error": str(exc)}, 5.0
            except UnknownJobError as exc:
                status, payload, retry_after = 404, {"error": str(exc)}, None
            except BadJobError as exc:
                status, payload, retry_after = 422, {"error": str(exc)}, None
            except ReproError as exc:
                # A substrate error on client input is still the client's
                # 4xx, reported cleanly (the contract the fuzz grammar
                # checks); it is never a traceback.
                status, payload, retry_after = 400, {"error": str(exc)}, None
            except Exception:
                status, payload, retry_after = (
                    500,
                    {"error": "internal server error"},
                    None,
                )
            try:
                self._send(status, payload, retry_after)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing to clean up

        # -- routes -----------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            def handler():
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                if path == "/healthz":
                    return 200, daemon.health(), None
                if path == "/readyz":
                    ready, payload = daemon.ready()
                    return (200 if ready else 503), payload, None
                if path == "/v1/jobs":
                    jobs = sorted(
                        daemon.queue.jobs.values(),
                        key=lambda j: j.id,
                        reverse=True,
                    )[:_LIST_CAP]
                    return 200, {"jobs": [j.to_json() for j in jobs]}, None
                if path.startswith("/v1/jobs/"):
                    job_id = path[len("/v1/jobs/") :]
                    return 200, daemon.queue.get(job_id).to_json(), None
                if path == "/v1/stats":
                    return 200, daemon.stats(), None
                if path == "/v1/cache/stats":
                    return 200, daemon.cache_stats(), None
                raise _ApiError(404, f"no such resource: {path}")

            self._dispatch(handler)

        def do_POST(self) -> None:  # noqa: N802 - stdlib casing
            def handler():
                path = self.path.split("?", 1)[0].rstrip("/")
                if path == "/v1/jobs":
                    experiment, tenant = parse_submission(self._read_body())
                    job = daemon.submit(experiment, tenant=tenant)
                    status = 200 if job.state == "done" else 202
                    return status, job.to_json(), None
                raise _ApiError(404, f"no such resource: {path}")

            self._dispatch(handler)

    server = ThreadingHTTPServer((host, port), Handler)
    server.daemon_threads = True
    return server
