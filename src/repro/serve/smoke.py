"""The ``--serve-smoke`` self-check: prove the service core recovers.

CI jobs run ``popper run --all --serve-smoke`` to exercise the daemon
end-to-end in a scratch repository, in seconds:

1. bring up a one-worker :class:`~repro.serve.PopperServer` with its
   HTTP API live; ``/healthz`` must answer;
2. adversarial requests — garbage JSON, a bogus tenant, an unknown
   experiment, an unknown job — must each get a clean 4xx, never a 500;
3. a cold submission must run to ``done`` validated; resubmitting the
   same experiment must be served from the artifact cache (HTTP 200,
   no worker involved);
4. ``kill -9`` the worker while it is mid-job on a second experiment:
   the supervisor must attribute the loss via the marker file, requeue
   under the backoff budget, respawn, and the job must still complete
   (attempts >= 2) with validations passing;
5. a graceful drain must leave no leased jobs behind and a queue
   journal that replays to the same terminal states, and ``popper
   doctor`` must find nothing it cannot repair.

The daemon is driven by explicit :meth:`~repro.serve.PopperServer.tick`
calls (``loop=False``), so each recovery step is deterministic rather
than raced against a background thread.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.common import minyaml
from repro.common.errors import ServeError
from repro.core.repo import PopperRepository
from repro.serve.daemon import PopperServer
from repro.serve.queue import QUEUE_DIR, JobQueue

__all__ = ["serve_smoke"]


def _http(method: str, url: str, body: bytes | None = None) -> tuple[int, dict]:
    request = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        payload = exc.read()
        try:
            doc = json.loads(payload or b"{}")
        except json.JSONDecodeError:
            raise ServeError(
                f"serve smoke: {method} {url} -> {exc.code} with a "
                f"non-JSON body ({payload[:80]!r})"
            ) from exc
        return exc.code, doc


def _tick_until(daemon: PopperServer, pred, what: str, timeout_s: float = 30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        daemon.tick(poll_s=0.05)
        value = pred()
        if value:
            return value
    raise ServeError(f"serve smoke: timed out waiting for {what}")


def _wait_running(daemon: PopperServer, job_id: str, timeout_s: float = 30.0):
    """Block until a worker's marker file names *job_id*; return its pid.

    Ticking while waiting would race the observation: a tick both
    dispatches and settles, so a fast job can start *and* finish inside
    one ``poll_s`` window and the marker is never seen.  Instead tick
    only until the job is leased (a parent-side state change that cannot
    be missed), then spin on the marker without ticking — nothing can
    settle the job while the scheduler is not being driven, so the
    marker stays up for the whole run.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if daemon.queue.get(job_id).state == "leased":
            break
        daemon.tick(poll_s=0.05)
    while time.monotonic() < deadline:
        for index, running in daemon.pool.current_jobs().items():
            if running == job_id:
                return daemon.pool.workers[index].pid
        time.sleep(0.001)
    raise ServeError(
        f"serve smoke: timed out waiting for a worker to start {job_id}"
    )


def serve_smoke(root: str | Path | None = None) -> str:
    """Run the scratch-daemon recovery check; return a one-line summary.

    Raises :class:`ServeError` when the API misbehaves on adversarial
    input, a submission fails to complete, the cache short-circuit
    misses, the killed worker's job is lost, or drain/doctor leave
    debris behind.
    """
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as scratch:
        base = Path(root) if root is not None else Path(scratch)
        repo = PopperRepository.init(base / "repo")
        # beta gets *different* vars than alpha on purpose: identical
        # inputs would let beta's stages hit alpha's cached artifacts
        # and finish in milliseconds — too fast to aim a kill at.
        for name, runs in (("alpha", 2), ("beta", 3)):
            repo.add_experiment("torpor", name)
            vars_path = repo.experiment_dir(name) / "vars.yml"
            doc = minyaml.load_file(vars_path)
            doc["runs"] = runs  # keep each worker-side pipeline run cheap
            minyaml.dump_file(doc, vars_path)

        daemon = PopperServer(repo, workers=1, max_queue=8, lease_s=30.0)
        try:
            daemon.start(api=True, loop=False)
            api = f"http://127.0.0.1:{daemon.port}"

            status, _ = _http("GET", f"{api}/healthz")
            if status != 200:
                raise ServeError(f"serve smoke: /healthz answered {status}")

            # Adversarial inputs: clean 4xx, never a traceback or 500.
            adversarial = [
                ("garbage JSON", b"{not json", 400),
                ("non-object body", b'["alpha"]', 400),
                ("bogus tenant", b'{"experiment":"alpha","tenant":"../x"}', 400),
                ("unknown experiment", b'{"experiment":"nope"}', 422),
            ]
            for label, body, want in adversarial:
                status, doc = _http("POST", f"{api}/v1/jobs", body)
                if status != want or "error" not in doc:
                    raise ServeError(
                        f"serve smoke: {label} answered {status} "
                        f"(wanted {want} with an error body)"
                    )
            status, _ = _http("GET", f"{api}/v1/jobs/job-999999")
            if status != 404:
                raise ServeError(
                    f"serve smoke: unknown job answered {status}, wanted 404"
                )

            # Cold run: accepted, executed by the worker, validated.
            status, doc = _http(
                "POST", f"{api}/v1/jobs", b'{"experiment":"alpha"}'
            )
            if status != 202:
                raise ServeError(
                    f"serve smoke: cold submit answered {status}, wanted 202"
                )
            cold_id = doc["id"]
            cold = _tick_until(
                daemon,
                lambda: (
                    daemon.queue.get(cold_id)
                    if daemon.queue.get(cold_id).state in ("done", "dead")
                    else None
                ),
                f"cold job {cold_id}",
            )
            if cold.state != "done" or not cold.meta.get("validated"):
                raise ServeError(
                    f"serve smoke: cold job ended {cold.state} "
                    f"(meta: {cold.meta}, error: {cold.error!r})"
                )

            # Warm run: same experiment, served from the artifact pool
            # at admission — HTTP 200, no queue slot, no worker.
            status, doc = _http(
                "POST", f"{api}/v1/jobs", b'{"experiment":"alpha"}'
            )
            if status != 200 or not doc.get("cached"):
                raise ServeError(
                    "serve smoke: warm resubmit was not cache-served "
                    f"(status {status}, cached={doc.get('cached')})"
                )

            # Chaos: SIGKILL the worker mid-job; the job must survive.
            victim = daemon.submit("beta")
            pid = _wait_running(daemon, victim.id)
            os.kill(pid, signal.SIGKILL)
            recovered = _tick_until(
                daemon,
                lambda: (
                    daemon.queue.get(victim.id)
                    if daemon.queue.get(victim.id).state in ("done", "dead")
                    else None
                ),
                f"job {victim.id} to recover from the killed worker",
            )
            if recovered.state != "done" or not recovered.meta.get("validated"):
                raise ServeError(
                    f"serve smoke: killed worker's job ended "
                    f"{recovered.state} (error: {recovered.error!r})"
                )
            if recovered.attempts < 2:
                raise ServeError(
                    "serve smoke: job completed without a second lease — "
                    "the kill missed the run window"
                )

            stats = daemon.stats()
        finally:
            daemon.drain()

        if daemon.queue.leased():
            raise ServeError("serve smoke: drain left leased jobs behind")

        # The journal must replay to the same terminal states...
        with JobQueue(Path(repo.vcs.meta) / QUEUE_DIR) as replayed:
            states = {j.id: j.state for j in replayed.jobs.values()}
        undone = {j: s for j, s in states.items() if s != "done"}
        if undone:
            raise ServeError(
                f"serve smoke: journal replay shows unfinished jobs: {undone}"
            )
        # ...and the doctor must find nothing it cannot repair.
        from repro.store.doctor import diagnose, repair

        report = repair(diagnose(repo.root, tmp_age_s=0.0))
        if report.unrepaired:
            raise ServeError(
                "serve smoke: doctor left "
                f"{len(report.unrepaired)} finding(s) unrepaired"
            )

    return (
        f"serve smoke ok: {len(states)} job(s) all done "
        f"({stats['cache_served']} cache-served), adversarial input "
        "cleanly rejected, worker kill -9 recovered "
        f"(attempts={recovered.attempts}), drain + doctor clean"
    )
