"""The persistent lease-based job queue under ``.pvcs/queue/``.

``popper serve`` must not lose an accepted job — not to a daemon crash,
not to a worker crash, not to a kill signal.  The queue therefore keeps
*no* authoritative state in memory: every transition is an append to a
durable JSONL journal (``.pvcs/queue/journal.jsonl``, written through a
:class:`~repro.common.groupcommit.GroupCommitWriter`), and constructing
a :class:`JobQueue` replays that journal to rebuild the state machine::

    submitted ──> queued ──> leased ──> done
                    ^           │
                    │ requeue   │ failure / lease expiry / crash
                    └───────────┤   (capped-exponential backoff,
                                │    bounded attempt budget)
                                └──> dead   (budget exhausted)

Crash-safe publish ordering (the two ``queue.*`` crashpoints):

* **claim** — the lease marker (``leases/<job>.json``, fsynced atomic
  write naming the holder pid and deadline) lands *before* the
  ``job_leased`` journal record.  A crash between the two
  (``queue.claim``) leaves a marker for a job the journal still calls
  queued: recovery trusts the journal and re-leases; the orphan marker
  is stale debris ``popper doctor`` unlinks (dead holder pid).
* **complete** — the result file (``results/<job>.json``) lands durably
  *before* the ``job_done`` record.  A crash between (``queue.publish``)
  leaves a result for a job the journal still calls leased: the lease
  expires, the job re-runs — idempotently, because the worker's outputs
  were already filed in the artifact cache — and the atomic result
  rewrite is byte-identical.

In both orderings the journal is the single source of truth and every
side file is reconstructible, which is what makes the recovery story a
table lookup instead of a heuristic.

Admission control: ``submit`` raises
:class:`~repro.common.errors.QueueFullError` once ``queued + leased``
reaches ``max_depth`` (the daemon maps it to HTTP 429 and journals a
``job_shed`` event), *except* for cache-served submissions
(``cached_meta``), which complete instantly without occupying a worker
or a queue slot — saturation degrades to cache-only service instead of
an outage.  ``claim`` is tenant-fair: among ready jobs it prefers the
tenant currently holding the fewest leases (FIFO within a tenant), and
never leases two jobs for the same experiment at once (their outputs
share a directory).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.common.crash import crashpoint
from repro.common.errors import (
    QueueFullError,
    ServeError,
    UnknownJobError,
)
from repro.common.fsutil import atomic_write, ensure_dir
from repro.engine.resilience import RetryPolicy
from repro.monitor.journal import RunJournal, load_journal

__all__ = ["QueuedJob", "JobQueue", "REQUEUE_POLICY", "QUEUE_DIR"]

#: Queue state directory name under ``.pvcs/``.
QUEUE_DIR = "queue"

#: The default requeue-backoff budget: four leases per job, exponential
#: backoff with deterministic jitter, and — because lease expiry can
#: requeue the same job indefinitely under repeated daemon crashes — a
#: hard ``max_delay_s`` ceiling on every sleep (the resilience layer's
#: post-jitter cap exists precisely for this caller).
REQUEUE_POLICY = RetryPolicy(
    max_attempts=4,
    backoff_s=0.05,
    multiplier=2.0,
    max_backoff_s=1.0,
    jitter=0.1,
    max_delay_s=1.0,
)

#: Job states (journal events are transitions between them).
_STATES = ("queued", "leased", "done", "dead")


@dataclass
class QueuedJob:
    """One submitted run request and where it is in the state machine."""

    id: str
    experiment: str
    tenant: str = "default"
    state: str = "queued"
    #: Lease count so far (a job's first lease is attempt 1).
    attempts: int = 0
    submitted: float = 0.0
    #: Earliest claim time after a requeue (backoff).
    not_before: float = 0.0
    #: Lease expiry (``None`` unless leased).
    deadline: float | None = None
    cached: bool = False
    seconds: float = 0.0
    error: str = ""
    meta: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "id": self.id,
            "experiment": self.experiment,
            "tenant": self.tenant,
            "state": self.state,
            "attempts": self.attempts,
            "submitted": self.submitted,
            "cached": self.cached,
            "seconds": self.seconds,
            "error": self.error,
            "meta": dict(self.meta),
        }


class JobQueue:
    """Durable job queue: journal-backed state, lease files, backoff.

    Thread-safe: the HTTP handler threads submit and query while the
    daemon's scheduler thread claims, heartbeats and completes.
    """

    def __init__(
        self,
        root: str | Path,
        max_depth: int = 16,
        lease_s: float = 15.0,
        retry: RetryPolicy | None = None,
        clock: Callable[[], float] = time.time,
        durable: bool = True,
    ) -> None:
        if max_depth < 1:
            raise ServeError(f"max_depth must be >= 1, got {max_depth}")
        if lease_s <= 0:
            raise ServeError(f"lease_s must be positive, got {lease_s}")
        self.root = ensure_dir(root)
        self.leases_dir = ensure_dir(self.root / "leases")
        self.results_dir = ensure_dir(self.root / "results")
        self.max_depth = int(max_depth)
        self.lease_s = float(lease_s)
        self.retry = retry or REQUEUE_POLICY
        self._clock = clock
        self._lock = threading.RLock()
        self.jobs: dict[str, QueuedJob] = {}
        self.shed_count = 0
        self._serial = 0
        last_seq = self._recover_state()
        self._journal = RunJournal(
            self.root / "journal.jsonl",
            fresh=False,
            clock=clock,
            durable=durable,
            crash_label="queue.append",
            start_seq=last_seq,
        )
        # Jobs the previous daemon held leases on are re-admitted under
        # the normal requeue budget (journalled, so the recovery itself
        # is crash-safe), and their now-meaningless lease markers drop.
        with self._lock:
            for job in sorted(self.jobs.values(), key=lambda j: j.id):
                if job.state == "leased":
                    self._requeue_locked(job, reason="recovered")
                elif job.state in ("done", "dead"):
                    self._lease_path(job.id).unlink(missing_ok=True)

    # -- recovery ----------------------------------------------------------------
    def _recover_state(self) -> int:
        """Replay the journal into ``self.jobs``; returns the last seq."""
        path = self.root / "journal.jsonl"
        if not path.is_file():
            return 0
        events, _torn = load_journal(path)
        last_seq = 0
        for event in events:
            last_seq = max(last_seq, int(event.get("seq", 0)))
            self._apply(event)
        return last_seq

    def _apply(self, event: dict) -> None:
        """One journal record -> one state-machine transition.

        Unknown kinds are ignored (the journal format is an open set;
        an older daemon must be able to replay a newer one's journal).
        """
        kind = event.get("event")
        job_id = str(event.get("job", ""))
        if kind == "job_submitted":
            job = QueuedJob(
                id=job_id,
                experiment=str(event.get("experiment", "")),
                tenant=str(event.get("tenant", "default")),
                submitted=float(event.get("ts", 0.0)),
            )
            self.jobs[job.id] = job
            self._serial = max(self._serial, _serial_of(job.id) + 1)
            return
        job = self.jobs.get(job_id)
        if kind == "job_shed":
            self.shed_count += 1
            return
        if job is None:
            return
        if kind == "job_leased":
            job.state = "leased"
            job.attempts = int(event.get("attempt", job.attempts + 1))
            job.deadline = float(event.get("deadline", 0.0))
        elif kind == "job_heartbeat":
            job.deadline = float(event.get("deadline", job.deadline or 0.0))
        elif kind == "job_done":
            job.state = "done"
            job.deadline = None
            job.cached = bool(event.get("cached", False))
            job.seconds = float(event.get("seconds", 0.0))
            job.meta = {
                k: v
                for k, v in event.items()
                if k not in ("seq", "ts", "event", "job", "cached", "seconds")
            }
        elif kind == "job_failed":
            job.error = str(event.get("error", ""))
        elif kind == "job_requeued":
            job.state = "queued"
            job.deadline = None
            job.not_before = float(event.get("not_before", 0.0))
        elif kind == "job_dead":
            job.state = "dead"
            job.deadline = None
            job.error = str(event.get("error", job.error))

    # -- paths -------------------------------------------------------------------
    def _lease_path(self, job_id: str) -> Path:
        return self.leases_dir / f"{job_id}.json"

    def _result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    # -- admission ---------------------------------------------------------------
    def depth(self) -> int:
        """Jobs occupying the queue: queued + leased."""
        with self._lock:
            return sum(
                1 for j in self.jobs.values() if j.state in ("queued", "leased")
            )

    def submit(
        self,
        experiment: str,
        tenant: str = "default",
        cached_meta: dict | None = None,
    ) -> QueuedJob:
        """Admit one job (or shed it when the queue is at its bound).

        With ``cached_meta`` the submission is cache-served: the job is
        journalled straight to ``done`` (result file included) without
        consuming a queue slot — the saturation-degradation path.
        """
        with self._lock:
            if cached_meta is None and self.depth() >= self.max_depth:
                self.shed_count += 1
                self._journal.event(
                    "job_shed",
                    tenant=tenant,
                    experiment=experiment,
                    depth=self.depth(),
                )
                raise QueueFullError(
                    f"queue at its {self.max_depth}-job bound; "
                    "retry after a drain"
                )
            job = QueuedJob(
                id=f"job-{self._serial:06d}",
                experiment=experiment,
                tenant=tenant,
                submitted=self._clock(),
            )
            self._serial += 1
            self.jobs[job.id] = job
            self._journal.event(
                "job_submitted",
                job=job.id,
                experiment=experiment,
                tenant=tenant,
            )
            if cached_meta is not None:
                self._publish_locked(job, dict(cached_meta), 0.0, cached=True)
            return job

    # -- leasing -----------------------------------------------------------------
    def claim(self) -> QueuedJob | None:
        """Lease the next ready job (tenant-fair), or ``None``.

        Ready means queued, past its backoff, and no sibling job for
        the same experiment currently leased (their outputs share the
        experiment directory).  Fairness: fewest-held-leases tenant
        first, then FIFO.
        """
        with self._lock:
            now = self._clock()
            leased = [j for j in self.jobs.values() if j.state == "leased"]
            busy_experiments = {j.experiment for j in leased}
            held: dict[str, int] = {}
            for j in leased:
                held[j.tenant] = held.get(j.tenant, 0) + 1
            ready = [
                j
                for j in self.jobs.values()
                if j.state == "queued"
                and j.not_before <= now
                and j.experiment not in busy_experiments
            ]
            if not ready:
                return None
            job = min(
                ready, key=lambda j: (held.get(j.tenant, 0), j.submitted, j.id)
            )
            job.state = "leased"
            job.attempts += 1
            job.deadline = now + self.lease_s
            # Publish ordering: lease marker first (durable), then the
            # journal record.  See the module docstring for why a crash
            # between the two (queue.claim) is recoverable.
            atomic_write(
                self._lease_path(job.id),
                json.dumps(
                    {
                        "job": job.id,
                        "experiment": job.experiment,
                        "pid": os.getpid(),
                        "host": socket.gethostname(),
                        "attempt": job.attempts,
                        "deadline": job.deadline,
                    },
                    sort_keys=True,
                ).encode("utf-8"),
                durable=True,
            )
            crashpoint("queue.claim")
            self._journal.event(
                "job_leased",
                job=job.id,
                attempt=job.attempts,
                deadline=job.deadline,
            )
            return job

    def heartbeat(self, job_id: str) -> None:
        """Extend a leased job's deadline (the holder is still alive)."""
        with self._lock:
            job = self._require(job_id)
            if job.state != "leased":
                return
            job.deadline = self._clock() + self.lease_s
            atomic_write(
                self._lease_path(job.id),
                json.dumps(
                    {
                        "job": job.id,
                        "experiment": job.experiment,
                        "pid": os.getpid(),
                        "host": socket.gethostname(),
                        "attempt": job.attempts,
                        "deadline": job.deadline,
                    },
                    sort_keys=True,
                ).encode("utf-8"),
                durable=False,
            )
            self._journal.event(
                "job_heartbeat", job=job.id, deadline=job.deadline
            )

    def expire_leases(self) -> list[QueuedJob]:
        """Requeue every leased job whose deadline passed; returns them."""
        with self._lock:
            now = self._clock()
            expired = [
                j
                for j in self.jobs.values()
                if j.state == "leased"
                and j.deadline is not None
                and j.deadline < now
            ]
            for job in sorted(expired, key=lambda j: j.id):
                self._requeue_locked(job, reason="lease-expired")
            return expired

    # -- completion --------------------------------------------------------------
    def complete(
        self,
        job_id: str,
        meta: dict | None = None,
        seconds: float = 0.0,
        cached: bool = False,
    ) -> QueuedJob:
        """Publish a leased job's result (idempotent on re-delivery)."""
        with self._lock:
            job = self._require(job_id)
            if job.state == "done":
                return job  # duplicate report after a re-lease race
            if job.state != "leased":
                raise ServeError(
                    f"cannot complete job {job_id} in state {job.state!r}"
                )
            self._publish_locked(job, dict(meta or {}), seconds, cached=cached)
            return job

    def _publish_locked(
        self, job: QueuedJob, meta: dict, seconds: float, cached: bool
    ) -> None:
        # Publish ordering: result file first (durable), then the
        # journal record.  A crash between the two (queue.publish)
        # re-runs the job idempotently; see the module docstring.
        atomic_write(
            self._result_path(job.id),
            json.dumps(
                {
                    "job": job.id,
                    "experiment": job.experiment,
                    "cached": cached,
                    "seconds": seconds,
                    "meta": meta,
                },
                sort_keys=True,
            ).encode("utf-8"),
            durable=True,
        )
        crashpoint("queue.publish")
        self._journal.event(
            "job_done", job=job.id, cached=cached, seconds=seconds, **meta
        )
        job.state = "done"
        job.deadline = None
        job.cached = cached
        job.seconds = seconds
        job.meta = meta
        self._lease_path(job.id).unlink(missing_ok=True)

    def fail(self, job_id: str, error: str) -> QueuedJob:
        """Report a leased job's attempt failed; requeue or dead-letter."""
        with self._lock:
            job = self._require(job_id)
            if job.state != "leased":
                return job  # late report after expiry already requeued it
            job.error = str(error)
            self._journal.event(
                "job_failed", job=job.id, attempt=job.attempts, error=job.error
            )
            self._requeue_locked(job, reason="failed")
            return job

    def _requeue_locked(self, job: QueuedJob, reason: str) -> None:
        self._lease_path(job.id).unlink(missing_ok=True)
        if job.attempts >= self.retry.max_attempts:
            job.state = "dead"
            job.deadline = None
            job.error = job.error or reason
            self._journal.event(
                "job_dead", job=job.id, attempts=job.attempts, error=job.error
            )
            return
        delay = self.retry.delay_s(job.id, max(job.attempts, 1))
        job.state = "queued"
        job.deadline = None
        job.not_before = self._clock() + delay
        self._journal.event(
            "job_requeued",
            job=job.id,
            attempt=job.attempts,
            not_before=job.not_before,
            delay_s=delay,
            reason=reason,
        )

    # -- queries -----------------------------------------------------------------
    def _require(self, job_id: str) -> QueuedJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no such job: {job_id}")
        return job

    def get(self, job_id: str) -> QueuedJob:
        with self._lock:
            return self._require(job_id)

    def leased(self) -> list[QueuedJob]:
        with self._lock:
            return sorted(
                (j for j in self.jobs.values() if j.state == "leased"),
                key=lambda j: j.id,
            )

    def stats(self) -> dict:
        with self._lock:
            by_state = {state: 0 for state in _STATES}
            tenants: set[str] = set()
            cached = 0
            for job in self.jobs.values():
                by_state[job.state] += 1
                tenants.add(job.tenant)
                cached += int(job.cached)
            return {
                "depth": by_state["queued"] + by_state["leased"],
                "max_depth": self.max_depth,
                "states": by_state,
                "cache_served": cached,
                "shed": self.shed_count,
                "tenants": len(tenants),
            }

    # -- lifecycle ---------------------------------------------------------------
    def checkpoint(self) -> None:
        """Commit the journal's open group-commit window to disk."""
        self._journal.flush()

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _serial_of(job_id: str) -> int:
    try:
        return int(job_id.rsplit("-", 1)[-1])
    except ValueError:
        return 0
