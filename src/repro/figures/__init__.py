"""Figure rendering (the Gnuplot/visualization substitution): ASCII and
dependency-free SVG charts from metrics tables.
"""

from repro.figures.charts import (
    FigureError,
    Series,
    bar_chart_ascii,
    bar_chart_svg,
    line_chart_ascii,
    line_chart_svg,
    series_from_table,
)

__all__ = [
    "Series",
    "FigureError",
    "series_from_table",
    "line_chart_ascii",
    "line_chart_svg",
    "bar_chart_ascii",
    "bar_chart_svg",
]
