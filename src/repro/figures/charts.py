"""Figure rendering: ASCII and SVG charts from metrics tables.

The last step of every Popper experiment turns results into figures.
This module renders the two chart shapes the paper's figures use —
line charts (scalability curves) and bar charts (the Torpor histogram) —
as both terminal-friendly ASCII and standalone SVG documents, with no
plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ReproError
from repro.common.tables import MetricsTable

__all__ = ["Series", "line_chart_ascii", "line_chart_svg", "bar_chart_ascii", "bar_chart_svg", "series_from_table"]


class FigureError(ReproError):
    """Bad chart inputs."""


@dataclass(frozen=True)
class Series:
    """One named line of (x, y) points."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise FigureError(f"series {self.label!r}: x/y length mismatch")
        if not self.x:
            raise FigureError(f"series {self.label!r}: empty")


def series_from_table(
    table: MetricsTable, x: str, y: str, group: str | None = None
) -> list[Series]:
    """Split a results table into chart series (one per *group* value)."""
    if group is None:
        ordered = table.sort_by(x)
        return [
            Series(label=y, x=tuple(ordered.numeric(x)), y=tuple(ordered.numeric(y)))
        ]
    out = []
    for value in table.distinct(group):
        sub = table.where_equals(**{group: value}).sort_by(x)
        out.append(
            Series(
                label=str(value),
                x=tuple(sub.numeric(x)),
                y=tuple(sub.numeric(y)),
            )
        )
    return out


# ---------------------------------------------------------------------------
# ASCII
# ---------------------------------------------------------------------------

def line_chart_ascii(
    series: list[Series], width: int = 60, height: int = 16, title: str = ""
) -> str:
    """Plot series on a character grid (markers: a, b, c, ...)."""
    if not series:
        raise FigureError("no series to plot")
    xs = np.concatenate([s.x for s in series])
    ys = np.concatenate([s.y for s in series])
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for i, s in enumerate(series):
        marker = chr(ord("a") + i % 26)
        for px, py in zip(s.x, s.y):
            col = int(round((px - x_lo) / x_span * (width - 1)))
            row = int(round((py - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:10.3g} +" + "-" * width)
    lines.append(" " * 12 + f"{x_lo:<10.3g}{'':^{max(width - 20, 0)}}{x_hi:>10.3g}")
    legend = "  ".join(
        f"{chr(ord('a') + i % 26)}={s.label}" for i, s in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines) + "\n"


def bar_chart_ascii(
    labels: list[str], values: list[float], width: int = 40, title: str = ""
) -> str:
    """Horizontal bar chart (the histogram figure)."""
    if len(labels) != len(values) or not labels:
        raise FigureError("labels/values mismatch or empty")
    peak = max(values) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{str(label):>{label_width}} | {bar} {value:g}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# SVG
# ---------------------------------------------------------------------------

_PALETTE = ("#1b6ca8", "#d1495b", "#66a182", "#edae49", "#8d5a97", "#3a3a3a")

_SVG_HEAD = (
    '<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" '
    'viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="11">'
)


def _scale(values: np.ndarray, lo: float, hi: float, out_lo: float, out_hi: float):
    span = (hi - lo) or 1.0
    return out_lo + (values - lo) / span * (out_hi - out_lo)


def line_chart_svg(
    series: list[Series],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 520,
    height: int = 320,
) -> str:
    """Render series as a standalone SVG line chart."""
    if not series:
        raise FigureError("no series to plot")
    margin = 48
    xs = np.concatenate([s.x for s in series])
    ys = np.concatenate([s.y for s in series])
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(min(ys.min(), 0.0)), float(ys.max())
    parts = [_SVG_HEAD.format(w=width, h=height)]
    parts.append(
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="white"/>'
    )
    if title:
        parts.append(
            f'<text x="{width / 2}" y="18" text-anchor="middle" '
            f'font-size="14">{title}</text>'
        )
    # axes
    parts.append(
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - 12}" '
        f'y2="{height - margin}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{margin}" y1="{height - margin}" x2="{margin}" y2="24" '
        'stroke="black"/>'
    )
    if x_label:
        parts.append(
            f'<text x="{width / 2}" y="{height - 8}" text-anchor="middle">'
            f"{x_label}</text>"
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{height / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {height / 2})">{y_label}</text>'
        )
    # ticks
    for fraction in (0.0, 0.5, 1.0):
        x_val = x_lo + fraction * (x_hi - x_lo)
        px = margin + fraction * (width - 12 - margin)
        parts.append(
            f'<text x="{px:.1f}" y="{height - margin + 14}" '
            f'text-anchor="middle">{x_val:g}</text>'
        )
        y_val = y_lo + fraction * (y_hi - y_lo)
        py = (height - margin) - fraction * (height - margin - 24)
        parts.append(
            f'<text x="{margin - 6}" y="{py + 4:.1f}" '
            f'text-anchor="end">{y_val:.3g}</text>'
        )
    for i, s in enumerate(series):
        color = _PALETTE[i % len(_PALETTE)]
        px = _scale(np.asarray(s.x), x_lo, x_hi, margin, width - 12)
        py = _scale(np.asarray(s.y), y_lo, y_hi, height - margin, 24)
        points = " ".join(f"{a:.1f},{b:.1f}" for a, b in zip(px, py))
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="2" '
            f'points="{points}"/>'
        )
        for a, b in zip(px, py):
            parts.append(f'<circle cx="{a:.1f}" cy="{b:.1f}" r="3" fill="{color}"/>')
        parts.append(
            f'<text x="{width - 140}" y="{30 + 14 * i}" fill="{color}">'
            f"{s.label}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def bar_chart_svg(
    labels: list[str],
    values: list[float],
    title: str = "",
    width: int = 520,
    height: int = 320,
) -> str:
    """Render a vertical-bar SVG chart (histograms)."""
    if len(labels) != len(values) or not labels:
        raise FigureError("labels/values mismatch or empty")
    margin = 42
    peak = max(values) or 1.0
    slot = (width - margin - 12) / len(values)
    bar_width = slot * 0.8
    parts = [_SVG_HEAD.format(w=width, h=height)]
    parts.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    if title:
        parts.append(
            f'<text x="{width / 2}" y="18" text-anchor="middle" '
            f'font-size="14">{title}</text>'
        )
    parts.append(
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - 12}" '
        f'y2="{height - margin}" stroke="black"/>'
    )
    for i, (label, value) in enumerate(zip(labels, values)):
        bar_height = (height - margin - 28) * value / peak
        x = margin + i * slot + slot * 0.1
        y = height - margin - bar_height
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width:.1f}" '
            f'height="{bar_height:.1f}" fill="{_PALETTE[0]}"/>'
        )
        parts.append(
            f'<text x="{x + bar_width / 2:.1f}" y="{height - margin + 13}" '
            f'text-anchor="middle" font-size="9">{label}</text>'
        )
        if value:
            parts.append(
                f'<text x="{x + bar_width / 2:.1f}" y="{y - 4:.1f}" '
                f'text-anchor="middle" font-size="9">{value:g}</text>'
            )
    parts.append("</svg>")
    return "".join(parts)
