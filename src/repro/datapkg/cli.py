"""The ``dpm`` command-line tool (paper Listing 4: ``dpm install
datapackages/air-temperature``).

Subcommands: ``publish``, ``install``, ``verify``, ``list``.  The
registry location comes from ``--registry`` or the ``DPM_REGISTRY``
environment variable.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.common.errors import DataPackageError, IntegrityError
from repro.datapkg.manager import PackageRegistry, verify_tree

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dpm", description="Data-package manager for Popper experiments."
    )
    parser.add_argument(
        "--registry",
        default=os.environ.get("DPM_REGISTRY", ""),
        help="registry directory (or set DPM_REGISTRY)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    publish = sub.add_parser("publish", help="publish a directory as a package")
    publish.add_argument("source")
    publish.add_argument("spec", help="name@version")
    publish.add_argument("--title", default="")

    install = sub.add_parser("install", help="install a package with verification")
    install.add_argument("spec", help="name or name@version")
    install.add_argument("--into", default="datasets", help="target directory")

    verify = sub.add_parser("verify", help="verify an installed package tree")
    verify.add_argument("directory")

    list_cmd = sub.add_parser("list", help="list packages (or one package's versions)")
    list_cmd.add_argument("name", nargs="?")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "verify":
            descriptor = verify_tree(args.directory)
            print(f"ok: {descriptor.spec} ({len(descriptor.resources)} resources)")
            return 0
        if not args.registry:
            print("dpm: no registry (use --registry or DPM_REGISTRY)", file=sys.stderr)
            return 2
        registry = PackageRegistry(args.registry)
        if args.command == "publish":
            from repro.datapkg.descriptor import parse_spec

            name, version = parse_spec(args.spec)
            if version is None:
                print("dpm publish: spec must include a version", file=sys.stderr)
                return 2
            descriptor = registry.publish(
                args.source, name, version, title=args.title
            )
            print(f"published {descriptor.spec} ({descriptor.total_bytes} bytes)")
            return 0
        if args.command == "install":
            descriptor = registry.install(args.spec, args.into)
            print(
                f"installed {descriptor.spec} into {args.into}/{descriptor.name} "
                "(hashes verified)"
            )
            return 0
        if args.command == "list":
            if args.name:
                for version in registry.versions(args.name):
                    print(f"{args.name}@{version}")
            else:
                for name in registry.packages():
                    print(name)
            return 0
    except IntegrityError as exc:
        print(f"dpm: INTEGRITY FAILURE: {exc}", file=sys.stderr)
        return 1
    except DataPackageError as exc:
        print(f"dpm: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
