"""Dataset-management substrate (the datapackages/git-LFS substitution):
descriptors with content hashes, a directory-backed registry, and
integrity-verified installs.
"""

from repro.datapkg.descriptor import Descriptor, Resource, parse_spec
from repro.datapkg.manager import DESCRIPTOR_NAME, PackageRegistry, install, verify_tree

__all__ = [
    "Descriptor",
    "Resource",
    "parse_spec",
    "PackageRegistry",
    "install",
    "verify_tree",
    "DESCRIPTOR_NAME",
]
