"""The data-package manager (``dpm``): publish, install, verify.

A registry is a directory tree ``<root>/<name>/<version>/`` holding the
package descriptors, backed by a content-addressed pool under
``<root>/.store/``: a resource's sha256 *is* its object id, so
publishing the same file into ten versions stores its bytes once
(dedup), and every publish re-hashes the payload on ingest — a file
that changes between hashing and filing is refused at publish time, not
discovered at install time.  ``install`` materializes resources from
the pool into an experiment's ``datasets/`` folder and verifies every
hash — a corrupted or tampered dataset is refused, never silently
analyzed.  Registries created before the pool existed (version
directories holding flat resource copies) remain installable.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.common.errors import DataPackageError, IntegrityError
from repro.common.hashing import sha256_file
from repro.datapkg.descriptor import Descriptor, Resource, parse_spec, version_key
from repro.store import ContentStore

__all__ = ["PackageRegistry", "install", "verify_tree"]

DESCRIPTOR_NAME = "datapackage.json"

#: Registry-internal content pool directory (not a package name).
STORE_DIR = ".store"


class PackageRegistry:
    """A directory-backed dataset registry."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.store = ContentStore(
            self.root / STORE_DIR / "objects",
            quarantine_dir=self.root / STORE_DIR / "quarantine",
        )

    # -- publish ---------------------------------------------------------------
    def publish(
        self,
        source_dir: str | Path,
        name: str,
        version: str,
        title: str = "",
        sources: tuple[str, ...] = (),
        license: str = "",
    ) -> Descriptor:
        """Package every file under *source_dir* as ``name@version``."""
        source = Path(source_dir)
        if not source.is_dir():
            raise DataPackageError(f"source is not a directory: {source}")
        files = sorted(p for p in source.rglob("*") if p.is_file())
        if not files:
            raise DataPackageError(f"nothing to publish in {source}")
        resources = tuple(
            Resource.from_file(path, path.relative_to(source).as_posix())
            for path in files
        )
        descriptor = Descriptor(
            name=name,
            version=version,
            resources=resources,
            title=title,
            sources=sources,
            license=license,
        )
        target = self.root / name / version
        if target.exists():
            raise DataPackageError(f"{descriptor.spec} already published")
        target.mkdir(parents=True)
        for resource in resources:
            # Ingest into the content pool: identical payloads (across
            # resources, versions or packages) are stored once.  The
            # pool re-hashes on ingest, so a payload that changed since
            # the descriptor hashed it is caught *now*.
            ingest = self.store.put_file(source / resource.path)
            if ingest.oid != resource.sha256:
                raise IntegrityError(
                    f"{descriptor.spec}: {resource.path} changed while "
                    f"publishing (descriptor {resource.sha256[:12]}, "
                    f"ingested {ingest.oid[:12]})"
                )
        (target / DESCRIPTOR_NAME).write_text(descriptor.to_json(), encoding="utf-8")
        return descriptor

    # -- query -------------------------------------------------------------------
    def packages(self) -> list[str]:
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and not p.name.startswith(".")
        )

    def versions(self, name: str) -> list[str]:
        base = self.root / name
        if not base.is_dir():
            raise DataPackageError(f"unknown package: {name!r}")
        return sorted(
            (p.name for p in base.iterdir() if p.is_dir()), key=version_key
        )

    def resolve(self, spec: str) -> Descriptor:
        """Resolve ``name`` (latest) or ``name@version`` to its descriptor."""
        name, version = parse_spec(spec)
        if version is None:
            versions = self.versions(name)
            if not versions:
                raise DataPackageError(f"package {name!r} has no versions")
            version = versions[-1]
        path = self.root / name / version / DESCRIPTOR_NAME
        if not path.is_file():
            raise DataPackageError(f"not in registry: {name}@{version}")
        return Descriptor.from_json(path.read_text(encoding="utf-8"))

    # -- install --------------------------------------------------------------------
    def install(self, spec: str, target_dir: str | Path) -> Descriptor:
        """Materialize a package into *target_dir*; verify every resource.

        Resources come out of the content pool (integrity-checked on
        read); packages published before the pool existed fall back to
        copying the flat files from the version directory.
        """
        descriptor = self.resolve(spec)
        source = self.root / descriptor.name / descriptor.version
        target = Path(target_dir) / descriptor.name
        if target.exists():
            raise DataPackageError(f"install target exists: {target}")
        target.mkdir(parents=True)
        for resource in descriptor.resources:
            dest = target / resource.path
            dest.parent.mkdir(parents=True, exist_ok=True)
            if self.store.contains(resource.sha256):
                self.store.materialize(resource.sha256, dest)
            else:
                legacy = source / resource.path
                if not legacy.is_file():
                    raise IntegrityError(
                        f"{descriptor.spec}: resource {resource.path} is in "
                        "neither the content pool nor the version directory"
                    )
                shutil.copyfile(legacy, dest)
        (target / DESCRIPTOR_NAME).write_text(descriptor.to_json(), encoding="utf-8")
        verify_tree(target)
        return descriptor


def verify_tree(package_dir: str | Path) -> Descriptor:
    """Check every resource of an installed package against its descriptor."""
    package_dir = Path(package_dir)
    descriptor_path = package_dir / DESCRIPTOR_NAME
    if not descriptor_path.is_file():
        raise DataPackageError(f"no {DESCRIPTOR_NAME} in {package_dir}")
    descriptor = Descriptor.from_json(descriptor_path.read_text(encoding="utf-8"))
    for resource in descriptor.resources:
        path = package_dir / resource.path
        if not path.is_file():
            raise IntegrityError(f"{descriptor.spec}: missing {resource.path}")
        actual = sha256_file(path)
        if actual != resource.sha256:
            raise IntegrityError(
                f"{descriptor.spec}: {resource.path} hash mismatch "
                f"(expected {resource.sha256[:12]}, got {actual[:12]})"
            )
    return descriptor


def install(registry: PackageRegistry, spec: str, target_dir: str | Path) -> Descriptor:
    """Module-level convenience mirroring ``dpm install``."""
    return registry.install(spec, target_dir)
