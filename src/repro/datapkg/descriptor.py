"""Data-package descriptors (``datapackage.json``).

A descriptor names a dataset, its version, and every resource (file) it
contains together with a SHA-256 integrity hash and byte size.  Popper
experiments reference datasets *by identifier* (``name@version``) instead
of vendoring them into the paper repository; the descriptor is what makes
that reference verifiable.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import DataPackageError
from repro.common.hashing import sha256_file

__all__ = ["Resource", "Descriptor", "parse_spec"]

_NAME = re.compile(r"^[a-z0-9][a-z0-9._-]*$")
_VERSION = re.compile(r"^\d+(\.\d+){0,2}$")


def parse_spec(spec: str) -> tuple[str, str | None]:
    """Split ``"name@version"`` (version optional) into parts."""
    name, _, version = spec.partition("@")
    if not _NAME.match(name):
        raise DataPackageError(f"bad package name: {name!r}")
    if version and not _VERSION.match(version):
        raise DataPackageError(f"bad package version: {version!r}")
    return name, version or None


def version_key(version: str) -> tuple[int, ...]:
    """Sort key for dotted versions (``"1.10" > "1.9"``)."""
    return tuple(int(part) for part in version.split("."))


@dataclass(frozen=True)
class Resource:
    """One file inside a data package."""

    name: str
    path: str
    sha256: str
    bytes: int
    format: str = ""

    @classmethod
    def from_file(cls, file_path: Path, rel_path: str) -> "Resource":
        return cls(
            name=Path(rel_path).stem,
            path=rel_path,
            sha256=sha256_file(file_path),
            bytes=file_path.stat().st_size,
            format=Path(rel_path).suffix.lstrip("."),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "hash": f"sha256:{self.sha256}",
            "bytes": self.bytes,
            "format": self.format,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Resource":
        digest = doc.get("hash", "")
        if not digest.startswith("sha256:"):
            raise DataPackageError(f"resource {doc.get('name')}: unsupported hash")
        return cls(
            name=doc["name"],
            path=doc["path"],
            sha256=digest[len("sha256:"):],
            bytes=int(doc["bytes"]),
            format=doc.get("format", ""),
        )


@dataclass(frozen=True)
class Descriptor:
    """A complete data-package descriptor."""

    name: str
    version: str
    resources: tuple[Resource, ...]
    title: str = ""
    sources: tuple[str, ...] = ()
    license: str = ""

    def __post_init__(self) -> None:
        if not _NAME.match(self.name):
            raise DataPackageError(f"bad package name: {self.name!r}")
        if not _VERSION.match(self.version):
            raise DataPackageError(f"bad package version: {self.version!r}")
        paths = [r.path for r in self.resources]
        if len(set(paths)) != len(paths):
            raise DataPackageError(f"duplicate resource paths in {self.name}")

    @property
    def spec(self) -> str:
        return f"{self.name}@{self.version}"

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes for r in self.resources)

    def resource(self, name: str) -> Resource:
        for res in self.resources:
            if res.name == name:
                return res
        raise DataPackageError(f"{self.spec}: no resource named {name!r}")

    # -- serialization ------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "version": self.version,
                "title": self.title,
                "sources": list(self.sources),
                "license": self.license,
                "resources": [r.to_dict() for r in self.resources],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Descriptor":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DataPackageError(f"bad descriptor JSON: {exc}") from exc
        try:
            return cls(
                name=doc["name"],
                version=doc["version"],
                resources=tuple(Resource.from_dict(r) for r in doc["resources"]),
                title=doc.get("title", ""),
                sources=tuple(doc.get("sources", ())),
                license=doc.get("license", ""),
            )
        except KeyError as exc:
            raise DataPackageError(f"descriptor missing key: {exc}") from exc
