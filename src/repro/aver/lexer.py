"""Tokenizer for the Aver assertion language.

Aver statements look like::

    when workload=* and machine=* expect sublinear(nodes, time)
    expect time < 100 and count() >= 10
    when nodes=4 expect avg(throughput) > 2.5 * avg(baseline)

Tokens: keywords (``when``, ``expect``, ``and``, ``or``, ``not``),
identifiers, numbers, quoted strings, ``*`` (wildcard/multiplication —
disambiguated by the parser), comparison operators, arithmetic operators,
parentheses and commas.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from repro.common.errors import AverSyntaxError

__all__ = ["TokenKind", "Token", "tokenize", "KEYWORDS"]


class TokenKind(str, Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"           # comparison: = == != < <= > >=
    ARITH = "arith"     # + - / %
    STAR = "star"       # '*': wildcard or multiplication
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    END = "end"


KEYWORDS = {"when", "expect", "and", "or", "not", "true", "false"}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.text!r}@{self.position})"


_SPEC = [
    (TokenKind.NUMBER, re.compile(r"\d+\.\d+([eE][-+]?\d+)?|\d+([eE][-+]?\d+)?")),
    (TokenKind.OP, re.compile(r"==|!=|<=|>=|=|<|>")),
    (TokenKind.ARITH, re.compile(r"[-+/%]")),
    (TokenKind.STAR, re.compile(r"\*")),
    (TokenKind.LPAREN, re.compile(r"\(")),
    (TokenKind.RPAREN, re.compile(r"\)")),
    (TokenKind.COMMA, re.compile(r",")),
    (TokenKind.STRING, re.compile(r"'[^']*'|\"[^\"]*\"")),
    (TokenKind.IDENT, re.compile(r"[A-Za-z_][A-Za-z_0-9.]*")),
]

_WS = re.compile(r"\s+")


def tokenize(source: str) -> list[Token]:
    """Convert source text to a token list ending with an END token."""
    tokens: list[Token] = []
    pos = 0
    length = len(source)
    while pos < length:
        ws = _WS.match(source, pos)
        if ws:
            pos = ws.end()
            continue
        for kind, pattern in _SPEC:
            match = pattern.match(source, pos)
            if match:
                text = match.group(0)
                if kind == TokenKind.IDENT and text.lower() in KEYWORDS:
                    tokens.append(Token(TokenKind.KEYWORD, text.lower(), pos))
                else:
                    tokens.append(Token(kind, text, pos))
                pos = match.end()
                break
        else:
            raise AverSyntaxError(
                f"unexpected character {source[pos]!r}", position=pos
            )
    tokens.append(Token(TokenKind.END, "", length))
    return tokens
