"""Evaluating Aver statements against experiment results.

Semantics:

* ``when`` clauses with concrete values **filter** the results table.
* ``when column=*`` clauses **quantify**: the expectation must hold inside
  every distinct-value group of that column (the Cartesian product across
  several wildcard columns).  This is what
  ``when workload=* and machine=*`` in the paper's Listing 3 means.
* Inside a group, a :class:`~repro.aver.ast.Column` evaluates to the
  column's vector; comparisons between vectors/scalars are evaluated
  row-wise and then **universally quantified** ("every row satisfies").
* Aggregates and trend validators reduce vectors before comparison.

The entry point is :func:`check`, returning a :class:`ValidationResult`
per statement with per-group detail — the report a Popper pipeline stores
next to ``results.csv``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.aver.ast import (
    Arith,
    Boolean,
    BoolOp,
    Column,
    Compare,
    Expr,
    FuncCall,
    Not,
    Number,
    Statement,
    String,
)
from repro.aver.functions import FUNCTIONS
from repro.aver.parser import parse_statement
from repro.common.errors import AverEvalError
from repro.common.tables import MetricsTable

__all__ = [
    "ContextFunction",
    "GroupResult",
    "ValidationResult",
    "evaluate_statement",
    "check",
    "check_all",
]


@dataclass(frozen=True)
class GroupResult:
    """Verdict for one wildcard-group binding."""

    binding: tuple[tuple[str, Any], ...]
    passed: bool
    detail: str = ""

    def describe(self) -> str:
        if not self.binding:
            scope = "<all rows>"
        else:
            scope = ", ".join(f"{k}={v}" for k, v in self.binding)
        status = "PASS" if self.passed else "FAIL"
        extra = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {scope}{extra}"


@dataclass(frozen=True)
class ValidationResult:
    """Verdict for one statement across all its groups."""

    statement: Statement
    groups: tuple[GroupResult, ...]

    @property
    def passed(self) -> bool:
        return all(g.passed for g in self.groups)

    def describe(self) -> str:
        head = f"{'PASS' if self.passed else 'FAIL'}: {self.statement.source}"
        lines = [head] + ["  " + g.describe() for g in self.groups]
        return "\n".join(lines)


#: A contextual function: called with ``(name, unevaluated_args, evaluator)``
#: so it can inspect the raw AST (e.g. read a Column's *name* for a history
#: lookup) and still evaluate arguments against the current group.
ContextFunction = Callable[[str, tuple, "_Evaluator"], Any]


class _Evaluator:
    """Evaluates one expression against one group of rows.

    *context* maps function names to :data:`ContextFunction`\\ s bound to
    run state (e.g. ``no_regression`` bound to a profile history by
    :class:`repro.check.context.RegressionContext`); they shadow the
    stateless :data:`~repro.aver.functions.FUNCTIONS` builtins.
    """

    def __init__(
        self,
        group: MetricsTable,
        context: Mapping[str, ContextFunction] | None = None,
    ) -> None:
        self.group = group
        self.context = dict(context or {})

    def eval(self, node: Expr) -> Any:
        method = getattr(self, f"_eval_{type(node).__name__.lower()}", None)
        if method is None:  # pragma: no cover - exhaustive over AST
            raise AverEvalError(f"cannot evaluate node {node!r}")
        return method(node)

    # -- leaves ---------------------------------------------------------------
    def _eval_number(self, node: Number) -> float:
        return node.value

    def _eval_string(self, node: String) -> str:
        return node.value

    def _eval_boolean(self, node: Boolean) -> bool:
        return node.value

    def _eval_column(self, node: Column) -> Any:
        if node.name not in self.group.columns:
            raise AverEvalError(
                f"no column {node.name!r} in results "
                f"(have {self.group.columns})"
            )
        values = self.group.column(node.name)
        if all(isinstance(v, (int, float, bool)) or v is None for v in values):
            return self.group.numeric(node.name)
        return values  # string column: list of values

    # -- function calls -----------------------------------------------------------
    def _eval_funccall(self, node: FuncCall) -> Any:
        if node.name == "count" and not node.args:
            return float(len(self.group))
        if node.name in self.context:
            return self.context[node.name](node.name, node.args, self)
        fn = FUNCTIONS.get(node.name)
        if fn is None:
            raise AverEvalError(
                f"unknown function {node.name!r} "
                f"(known: {sorted(FUNCTIONS)})"
            )
        args = [self.eval(arg) for arg in node.args]
        return fn(node.name, args)

    # -- arithmetic ------------------------------------------------------------------
    def _eval_arith(self, node: Arith) -> Any:
        left = self.eval(node.left)
        right = self.eval(node.right)
        for side, value in (("left", left), ("right", right)):
            if isinstance(value, (str, list)):
                raise AverEvalError(
                    f"arithmetic on non-numeric {side} operand of {node.op!r}"
                )
        try:
            with np.errstate(divide="ignore", invalid="ignore"):
                if node.op == "+":
                    return left + right
                if node.op == "-":
                    return left - right
                if node.op == "*":
                    return left * right
                if node.op == "/":
                    return left / right
                if node.op == "%":
                    return left % right
        except ZeroDivisionError as exc:
            raise AverEvalError("division by zero") from exc
        raise AverEvalError(f"unknown arithmetic operator {node.op!r}")

    # -- comparisons --------------------------------------------------------------------
    def _eval_compare(self, node: Compare) -> bool:
        left = self.eval(node.left)
        right = self.eval(node.right)
        op = "==" if node.op == "=" else node.op
        # String comparison (column of strings vs literal, or two strings).
        if isinstance(left, list) or isinstance(right, list) or isinstance(
            left, str
        ) or isinstance(right, str):
            if op not in ("==", "!="):
                raise AverEvalError(
                    f"ordering comparison {op!r} on non-numeric values"
                )
            lvals = left if isinstance(left, list) else [left]
            rvals = right if isinstance(right, list) else [right]
            if len(lvals) != len(rvals) and 1 not in (len(lvals), len(rvals)):
                raise AverEvalError("comparison of unequal-length columns")
            if len(lvals) == 1:
                lvals = lvals * len(rvals)
            if len(rvals) == 1:
                rvals = rvals * len(lvals)
            results = [
                (a == b) if op == "==" else (a != b)
                for a, b in zip(lvals, rvals)
            ]
            return all(results)
        larr = np.asarray(left, dtype=np.float64)
        rarr = np.asarray(right, dtype=np.float64)
        if larr.ndim and rarr.ndim and larr.size != rarr.size:
            raise AverEvalError(
                f"comparison of unequal-length vectors ({larr.size} vs {rarr.size})"
            )
        if np.any(~np.isfinite(larr)) or np.any(~np.isfinite(rarr)):
            raise AverEvalError("comparison over NaN/inf values")
        ops = {
            "==": np.equal,
            "!=": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }
        result = ops[op](larr, rarr)
        return bool(np.all(result))

    # -- boolean -----------------------------------------------------------------------------
    def _eval_boolop(self, node: BoolOp) -> bool:
        left = self._as_bool(self.eval(node.left), node.op)
        if node.op == "and":
            return left and self._as_bool(self.eval(node.right), node.op)
        if node.op == "or":
            return left or self._as_bool(self.eval(node.right), node.op)
        raise AverEvalError(f"unknown boolean operator {node.op!r}")

    def _eval_not(self, node: Not) -> bool:
        return not self._as_bool(self.eval(node.operand), "not")

    @staticmethod
    def _as_bool(value: Any, context: str) -> bool:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        raise AverEvalError(
            f"operand of {context!r} is not boolean (got {type(value).__name__}); "
            "use a comparison or validator function"
        )


def _groups_for(
    statement: Statement, table: MetricsTable
) -> list[tuple[tuple[tuple[str, Any], ...], MetricsTable]]:
    filtered = table
    for clause in statement.filter_clauses:
        if clause.column not in table.columns:
            raise AverEvalError(
                f"when-clause column {clause.column!r} not in results"
            )
        filtered = filtered.where_equals(**{clause.column: clause.value})
    if len(filtered) == 0:
        raise AverEvalError("when-clauses matched no rows")
    wildcards = statement.wildcard_columns
    for column in wildcards:
        if column not in table.columns:
            raise AverEvalError(
                f"when-clause column {column!r} not in results"
            )
    if not wildcards:
        return [((), filtered)]
    groups = filtered.group_by(*wildcards)
    return [
        (tuple(zip(wildcards, key)), group)
        for key, group in sorted(groups.items(), key=lambda kv: str(kv[0]))
    ]


def evaluate_statement(
    statement: Statement,
    table: MetricsTable,
    context: Mapping[str, ContextFunction] | None = None,
) -> ValidationResult:
    """Evaluate a parsed statement against a results table.

    *context* supplies run-state-bound functions (see
    :class:`_Evaluator`); stateless validations pass nothing.
    """
    if len(table) == 0:
        raise AverEvalError("results table is empty")
    group_results: list[GroupResult] = []
    groups = _groups_for(statement, table)
    if not groups:
        raise AverEvalError("when-clauses matched no rows")
    for binding, group in groups:
        if len(group) == 0:
            group_results.append(
                GroupResult(binding=binding, passed=False, detail="empty group")
            )
            continue
        try:
            verdict = _Evaluator(group, context=context).eval(statement.expectation)
        except AverEvalError as exc:
            group_results.append(
                GroupResult(binding=binding, passed=False, detail=str(exc))
            )
            continue
        if not isinstance(verdict, (bool, np.bool_)):
            group_results.append(
                GroupResult(
                    binding=binding,
                    passed=False,
                    detail="expectation did not reduce to a boolean",
                )
            )
            continue
        group_results.append(GroupResult(binding=binding, passed=bool(verdict)))
    return ValidationResult(statement=statement, groups=tuple(group_results))


def check(
    source: str,
    table: MetricsTable,
    context: Mapping[str, ContextFunction] | None = None,
) -> ValidationResult:
    """Parse and evaluate one statement."""
    return evaluate_statement(parse_statement(source), table, context=context)


def check_all(
    sources: list[str] | str,
    table: MetricsTable,
    context: Mapping[str, ContextFunction] | None = None,
) -> list[ValidationResult]:
    """Evaluate many statements (a ``validations.aver`` file's worth)."""
    from repro.aver.parser import parse_file_text

    if isinstance(sources, str):
        statements = parse_file_text(sources)
    else:
        statements = [parse_statement(s) for s in sources]
    return [evaluate_statement(s, table, context=context) for s in statements]
