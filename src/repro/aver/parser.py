"""Recursive-descent parser for Aver statements.

Grammar (each statement on its own line; ``--`` comments allowed)::

    statement   := [ 'when' when_list ] 'expect' or_expr
    when_list   := when_clause ( 'and' when_clause )*
    when_clause := IDENT '=' ( '*' | literal )
    or_expr     := and_expr ( 'or' and_expr )*
    and_expr    := not_expr ( 'and' not_expr )*
    not_expr    := 'not' not_expr | comparison
    comparison  := sum ( ('=', '==', '!=', '<', '<=', '>', '>=') sum )?
    sum         := term ( ('+' | '-') term )*
    term        := unary ( ('*' | '/' | '%') unary )*
    unary       := '-' unary | atom
    atom        := NUMBER | STRING | 'true' | 'false'
                 | IDENT '(' [ or_expr (',' or_expr)* ] ')'   -- function
                 | IDENT                                      -- column
                 | '(' or_expr ')'
"""

from __future__ import annotations

from repro.aver.ast import (
    WILDCARD,
    Arith,
    Boolean,
    BoolOp,
    Column,
    Compare,
    Expr,
    FuncCall,
    Not,
    Number,
    Statement,
    String,
    WhenClause,
)
from repro.aver.lexer import Token, TokenKind, tokenize
from repro.common.errors import AverSyntaxError

__all__ = ["parse_statement", "parse_file_text"]


class _Parser:
    def __init__(self, tokens: list[Token], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.source = source

    # -- token helpers -----------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def take(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != TokenKind.END:
            self.pos += 1
        return token

    def accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.take()
        return None

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            got = self.peek()
            want = text or kind.value
            raise AverSyntaxError(
                f"expected {want!r}, got {got.text or '<end>'!r}",
                position=got.position,
            )
        return token

    # -- grammar --------------------------------------------------------------------
    def statement(self) -> Statement:
        when: tuple[WhenClause, ...] = ()
        if self.accept(TokenKind.KEYWORD, "when"):
            when = self.when_list()
        self.expect(TokenKind.KEYWORD, "expect")
        expectation = self.or_expr()
        end = self.peek()
        if end.kind != TokenKind.END:
            raise AverSyntaxError(
                f"trailing input: {end.text!r}", position=end.position
            )
        return Statement(when=when, expectation=expectation, source=self.source)

    def when_list(self) -> tuple[WhenClause, ...]:
        clauses = [self.when_clause()]
        while True:
            save = self.pos
            if not self.accept(TokenKind.KEYWORD, "and"):
                break
            # 'and' may belong to the expectation only after 'expect';
            # inside 'when' it always chains clauses.
            try:
                clauses.append(self.when_clause())
            except AverSyntaxError:
                self.pos = save
                break
        seen = set()
        for clause in clauses:
            if clause.column in seen:
                raise AverSyntaxError(
                    f"duplicate when-column {clause.column!r}"
                )
            seen.add(clause.column)
        return tuple(clauses)

    def when_clause(self) -> WhenClause:
        ident = self.expect(TokenKind.IDENT)
        self.expect(TokenKind.OP, "=")
        token = self.peek()
        if token.kind == TokenKind.STAR:
            self.take()
            return WhenClause(column=ident.text, value=WILDCARD)
        if token.kind == TokenKind.NUMBER:
            self.take()
            value = float(token.text)
            return WhenClause(
                column=ident.text,
                value=int(value) if value.is_integer() else value,
            )
        if token.kind == TokenKind.STRING:
            self.take()
            return WhenClause(column=ident.text, value=token.text[1:-1])
        if token.kind == TokenKind.IDENT:
            self.take()
            return WhenClause(column=ident.text, value=token.text)
        if token.kind == TokenKind.KEYWORD and token.text in ("true", "false"):
            self.take()
            return WhenClause(column=ident.text, value=token.text == "true")
        raise AverSyntaxError(
            f"bad when-clause value {token.text!r}", position=token.position
        )

    def or_expr(self) -> Expr:
        left = self.and_expr()
        while self.accept(TokenKind.KEYWORD, "or"):
            left = BoolOp(op="or", left=left, right=self.and_expr())
        return left

    def and_expr(self) -> Expr:
        left = self.not_expr()
        while self.accept(TokenKind.KEYWORD, "and"):
            left = BoolOp(op="and", left=left, right=self.not_expr())
        return left

    def not_expr(self) -> Expr:
        if self.accept(TokenKind.KEYWORD, "not"):
            return Not(operand=self.not_expr())
        return self.comparison()

    def comparison(self) -> Expr:
        left = self.sum()
        token = self.peek()
        if token.kind == TokenKind.OP:
            self.take()
            right = self.sum()
            return Compare(op=token.text, left=left, right=right)
        return left

    def sum(self) -> Expr:
        left = self.term()
        while True:
            token = self.peek()
            if token.kind == TokenKind.ARITH and token.text in "+-":
                self.take()
                left = Arith(op=token.text, left=left, right=self.term())
            else:
                return left

    def term(self) -> Expr:
        left = self.unary()
        while True:
            token = self.peek()
            if token.kind == TokenKind.STAR:
                self.take()
                left = Arith(op="*", left=left, right=self.unary())
            elif token.kind == TokenKind.ARITH and token.text in "/%":
                self.take()
                left = Arith(op=token.text, left=left, right=self.unary())
            else:
                return left

    def unary(self) -> Expr:
        token = self.peek()
        if token.kind == TokenKind.ARITH and token.text == "-":
            self.take()
            return Arith(op="-", left=Number(0.0), right=self.unary())
        return self.atom()

    def atom(self) -> Expr:
        token = self.take()
        if token.kind == TokenKind.NUMBER:
            return Number(float(token.text))
        if token.kind == TokenKind.STRING:
            return String(token.text[1:-1])
        if token.kind == TokenKind.KEYWORD and token.text in ("true", "false"):
            return Boolean(token.text == "true")
        if token.kind == TokenKind.LPAREN:
            inner = self.or_expr()
            self.expect(TokenKind.RPAREN)
            return inner
        if token.kind == TokenKind.IDENT:
            if self.peek().kind == TokenKind.LPAREN:
                self.take()
                args: list[Expr] = []
                if self.peek().kind != TokenKind.RPAREN:
                    args.append(self.or_expr())
                    while self.accept(TokenKind.COMMA):
                        args.append(self.or_expr())
                self.expect(TokenKind.RPAREN)
                return FuncCall(name=token.text, args=tuple(args))
            return Column(name=token.text)
        raise AverSyntaxError(
            f"unexpected token {token.text or '<end>'!r}", position=token.position
        )


def parse_statement(source: str) -> Statement:
    """Parse one Aver statement."""
    text = source.strip()
    if not text:
        raise AverSyntaxError("empty statement")
    tokens = tokenize(text)
    return _Parser(tokens, text).statement()


def parse_file_text(text: str) -> list[Statement]:
    """Parse a ``validations.aver`` file.

    Statements may span multiple lines; a new statement starts at a line
    beginning with ``when`` or ``expect``.  ``--`` and ``#`` start comments.
    """
    chunks: list[list[str]] = []
    for raw in text.splitlines():
        line = raw.split("--", 1)[0].split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        starts_new = line.lstrip().startswith(("when ", "expect ")) or line.strip() in (
            "when",
            "expect",
        )
        if starts_new and (not chunks or _complete(chunks[-1])):
            chunks.append([line])
        elif chunks:
            chunks[-1].append(line)
        else:
            chunks.append([line])
    return [parse_statement(" ".join(chunk)) for chunk in chunks]


def _complete(chunk: list[str]) -> bool:
    """A chunk is complete if it already contains 'expect'."""
    joined = " ".join(chunk)
    return " expect " in f" {joined} " or joined.strip().startswith("expect")
