"""Builtin functions of the Aver language.

Two families:

* **Trend validators** (``sublinear``, ``superlinear``, ``linear``,
  ``monotonic_inc``, ``monotonic_dec``, ``constant``, ``within``) — take
  column vectors and return a boolean verdict about the relationship.
  Scaling verdicts fit ``y = c * x^b`` by least squares in log-log space;
  ``b`` is the scaling exponent (sublinear: ``b < 1``, matching the
  published Aver semantics where a decreasing curve is also sublinear).
* **Aggregates** (``min``, ``max``, ``avg``, ``sum``, ``count``,
  ``stddev``, ``median``, ``percentile``) — reduce a column vector to a
  scalar usable in comparisons.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.common.errors import AverEvalError

__all__ = ["FUNCTIONS", "scaling_exponent", "register_function"]

#: Tolerance band around an exponent of exactly 1 ("linear").
_LINEAR_EPS = 0.08


def _as_vector(value: Any, name: str, arg_index: int) -> np.ndarray:
    array = np.asarray(value, dtype=np.float64)
    if array.ndim == 0:
        array = array.reshape(1)
    if array.size == 0:
        raise AverEvalError(f"{name}(): argument {arg_index} is empty")
    if np.any(~np.isfinite(array)):
        raise AverEvalError(f"{name}(): argument {arg_index} has NaN/inf values")
    return array


def _as_scalar(value: Any, name: str, arg_index: int) -> float:
    array = np.asarray(value, dtype=np.float64)
    if array.ndim != 0 and array.size != 1:
        raise AverEvalError(
            f"{name}(): argument {arg_index} must be a scalar, got a vector"
        )
    return float(array.reshape(-1)[0])


def scaling_exponent(x: np.ndarray, y: np.ndarray) -> float:
    """Least-squares exponent ``b`` of ``y = c * x^b`` (log-log fit)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise AverEvalError(
            f"scaling fit needs equal-length vectors ({x.size} vs {y.size})"
        )
    if x.size < 2:
        raise AverEvalError("scaling fit needs at least 2 points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise AverEvalError("scaling fit needs positive values")
    if np.unique(x).size < 2:
        raise AverEvalError("scaling fit needs at least 2 distinct x values")
    lx, ly = np.log(x), np.log(y)
    slope, _intercept = np.polyfit(lx, ly, 1)
    return float(slope)


def _fn_sublinear(name: str, args: list[Any]) -> bool:
    _need(name, args, 2)
    x = _as_vector(args[0], name, 0)
    y = _as_vector(args[1], name, 1)
    return scaling_exponent(x, y) < 1.0 - _LINEAR_EPS


def _fn_superlinear(name: str, args: list[Any]) -> bool:
    _need(name, args, 2)
    x = _as_vector(args[0], name, 0)
    y = _as_vector(args[1], name, 1)
    return scaling_exponent(x, y) > 1.0 + _LINEAR_EPS


def _fn_linear(name: str, args: list[Any]) -> bool:
    _need(name, args, 2)
    x = _as_vector(args[0], name, 0)
    y = _as_vector(args[1], name, 1)
    return abs(scaling_exponent(x, y) - 1.0) <= _LINEAR_EPS


def _sorted_by_x(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    order = np.argsort(x, kind="stable")
    return y[order]


def _fn_monotonic_inc(name: str, args: list[Any]) -> bool:
    _need(name, args, 2)
    x = _as_vector(args[0], name, 0)
    y = _as_vector(args[1], name, 1)
    if x.size != y.size:
        raise AverEvalError(f"{name}(): vectors differ in length")
    ordered = _sorted_by_x(x, y)
    return bool(np.all(np.diff(ordered) >= -1e-12))


def _fn_monotonic_dec(name: str, args: list[Any]) -> bool:
    _need(name, args, 2)
    x = _as_vector(args[0], name, 0)
    y = _as_vector(args[1], name, 1)
    if x.size != y.size:
        raise AverEvalError(f"{name}(): vectors differ in length")
    ordered = _sorted_by_x(x, y)
    return bool(np.all(np.diff(ordered) <= 1e-12))


def _fn_constant(name: str, args: list[Any]) -> bool:
    """``constant(y [, tol])``: max relative deviation from the mean <= tol."""
    if len(args) not in (1, 2):
        raise AverEvalError(f"{name}() takes 1 or 2 arguments, got {len(args)}")
    y = _as_vector(args[0], name, 0)
    tol = _as_scalar(args[1], name, 1) if len(args) == 2 else 0.05
    mean = float(np.mean(y))
    if mean == 0.0:
        return bool(np.all(np.abs(y) <= tol))
    return bool(np.max(np.abs(y - mean)) <= abs(mean) * tol)


def _fn_within(name: str, args: list[Any]) -> bool:
    """``within(y, lo, hi)``: every value in [lo, hi]."""
    _need(name, args, 3)
    y = _as_vector(args[0], name, 0)
    lo = _as_scalar(args[1], name, 1)
    hi = _as_scalar(args[2], name, 2)
    if lo > hi:
        raise AverEvalError(f"{name}(): lo > hi")
    return bool(np.all((y >= lo) & (y <= hi)))


def _need(name: str, args: list[Any], count: int) -> None:
    if len(args) != count:
        raise AverEvalError(f"{name}() takes {count} arguments, got {len(args)}")


def _agg(fn: Callable[[np.ndarray], float]) -> Callable[[str, list[Any]], float]:
    def wrapper(name: str, args: list[Any]) -> float:
        _need(name, args, 1)
        return float(fn(_as_vector(args[0], name, 0)))

    return wrapper


def _fn_count(name: str, args: list[Any]) -> float:
    if len(args) == 0:
        raise AverEvalError(
            "count() with no arguments is resolved by the evaluator"
        )
    _need(name, args, 1)
    return float(_as_vector(args[0], name, 0).size)


def _fn_percentile(name: str, args: list[Any]) -> float:
    _need(name, args, 2)
    y = _as_vector(args[0], name, 0)
    q = _as_scalar(args[1], name, 1)
    if not 0 <= q <= 100:
        raise AverEvalError(f"{name}(): percentile must be in [0, 100]")
    return float(np.percentile(y, q))


def _fn_scaling_exp(name: str, args: list[Any]) -> float:
    """``scaling_exp(x, y)``: the fitted exponent itself, as a scalar —
    lets assertions bound it directly (``expect scaling_exp(nodes, time)
    < -0.5``)."""
    _need(name, args, 2)
    x = _as_vector(args[0], name, 0)
    y = _as_vector(args[1], name, 1)
    return scaling_exponent(x, y)


def _fn_no_regression(name: str, args: list[Any]) -> bool:
    """``no_regression(metric)``: the candidate series for *metric* shows
    no firm degradation against the commit-attached baseline profiles.

    The real implementation needs run state (a profile history and the
    current commit), so it is bound per run by
    :class:`repro.check.context.RegressionContext` and passed to the
    evaluator as a contextual function.  This registry entry exists so
    the name parses everywhere and fails with an explanation — rather
    than "unknown function" — when evaluated without that context.
    """
    raise AverEvalError(
        f"{name}() needs a regression context (commit-attached profile "
        "history); it is available when validations run through the "
        "pipeline, not in standalone evaluation"
    )


FUNCTIONS: dict[str, Callable[[str, list[Any]], Any]] = {
    "scaling_exp": _fn_scaling_exp,
    "no_regression": _fn_no_regression,
    "sublinear": _fn_sublinear,
    "superlinear": _fn_superlinear,
    "linear": _fn_linear,
    "monotonic_inc": _fn_monotonic_inc,
    "monotonic_dec": _fn_monotonic_dec,
    "constant": _fn_constant,
    "within": _fn_within,
    "min": _agg(np.min),
    "max": _agg(np.max),
    "avg": _agg(np.mean),
    "mean": _agg(np.mean),
    "sum": _agg(np.sum),
    "stddev": _agg(lambda v: np.std(v, ddof=1) if v.size > 1 else 0.0),
    "median": _agg(np.median),
    "count": _fn_count,
    "percentile": _fn_percentile,
}


def register_function(name: str, fn: Callable[[str, list[Any]], Any]) -> None:
    """Register a domain-specific validation function."""
    if name in FUNCTIONS:
        raise AverEvalError(f"function already registered: {name!r}")
    FUNCTIONS[name] = fn
