"""``aver`` command-line tool.

Usage::

    aver --input results.csv "when machine=* expect sublinear(nodes, time)"
    aver --input results.csv --file validations.aver

Exit status 0 when every assertion holds, 1 otherwise — which is what
lets a CI ``script:`` line gate a build on domain-specific validation.
"""

from __future__ import annotations

import argparse
import sys

from repro.aver.evaluator import check_all
from repro.common.errors import AverError
from repro.common.tables import MetricsTable

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aver",
        description="Validate experiment results with Aver assertions.",
    )
    parser.add_argument(
        "--input", "-i", required=True, help="results CSV file to validate"
    )
    parser.add_argument(
        "--file", "-f", help="file of Aver statements (validations.aver)"
    )
    parser.add_argument(
        "statements", nargs="*", help="inline Aver statements"
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true", help="suppress per-group detail"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    sources: list[str] = list(args.statements)
    try:
        table = MetricsTable.load_csv(args.input)
    except (OSError, ValueError) as exc:
        print(f"aver: cannot read {args.input}: {exc}", file=sys.stderr)
        return 2
    try:
        results = []
        if args.file:
            with open(args.file, "r", encoding="utf-8") as handle:
                results.extend(check_all(handle.read(), table))
        if sources:
            results.extend(check_all(sources, table))
    except AverError as exc:
        print(f"aver: {exc}", file=sys.stderr)
        return 2
    if not results:
        print("aver: no statements given", file=sys.stderr)
        return 2
    all_passed = True
    for result in results:
        all_passed &= result.passed
        if args.quiet:
            status = "PASS" if result.passed else "FAIL"
            print(f"{status}: {result.statement.source}")
        else:
            print(result.describe())
    return 0 if all_passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
