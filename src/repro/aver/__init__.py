"""The Aver validation language (the paper's domain-specific result
validation): lexer, parser, trend/aggregate functions, evaluator with
wildcard-group semantics, and a CLI for CI pipelines.
"""

from repro.aver.ast import Statement, WhenClause, WILDCARD
from repro.aver.evaluator import (
    GroupResult,
    ValidationResult,
    check,
    check_all,
    evaluate_statement,
)
from repro.aver.functions import FUNCTIONS, register_function, scaling_exponent
from repro.aver.parser import parse_file_text, parse_statement

__all__ = [
    "Statement",
    "WhenClause",
    "WILDCARD",
    "parse_statement",
    "parse_file_text",
    "check",
    "check_all",
    "evaluate_statement",
    "ValidationResult",
    "GroupResult",
    "FUNCTIONS",
    "register_function",
    "scaling_exponent",
]
