"""Abstract syntax tree for the Aver assertion language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

__all__ = [
    "Number",
    "String",
    "Boolean",
    "Column",
    "FuncCall",
    "Arith",
    "Compare",
    "BoolOp",
    "Not",
    "WhenClause",
    "WILDCARD",
    "Statement",
    "Expr",
]


class _Wildcard:
    """The ``*`` in ``when machine=*`` — "for every distinct value"."""

    def __repr__(self) -> str:
        return "*"


WILDCARD = _Wildcard()


@dataclass(frozen=True)
class Number:
    value: float


@dataclass(frozen=True)
class String:
    value: str


@dataclass(frozen=True)
class Boolean:
    value: bool


@dataclass(frozen=True)
class Column:
    """A reference to a column of the results table."""

    name: str


@dataclass(frozen=True)
class FuncCall:
    """A builtin validation/aggregate function applied to arguments."""

    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class Arith:
    """Arithmetic: ``+ - * / %`` over scalars and column vectors."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Compare:
    """Comparison producing row-wise (then universally quantified) truth."""

    op: str  # = == != < <= > >=
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class BoolOp:
    op: str  # and | or
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Not:
    operand: "Expr"


Expr = Union[Number, String, Boolean, Column, FuncCall, Arith, Compare, BoolOp, Not]


@dataclass(frozen=True)
class WhenClause:
    """One condition term: ``column=value`` or ``column=*``."""

    column: str
    value: Any  # literal or WILDCARD

    @property
    def is_wildcard(self) -> bool:
        return self.value is WILDCARD


@dataclass(frozen=True)
class Statement:
    """``[when <clauses>] expect <expression>``."""

    when: tuple[WhenClause, ...]
    expectation: Expr
    source: str = ""

    @property
    def wildcard_columns(self) -> tuple[str, ...]:
        return tuple(c.column for c in self.when if c.is_wildcard)

    @property
    def filter_clauses(self) -> tuple[WhenClause, ...]:
        return tuple(c for c in self.when if not c.is_wildcard)
