"""A labeled N-dimensional array (the xarray substitution).

The BWW use case analyzes NCEP/NCAR-Reanalysis-style gridded data with
the ``xarray`` idioms: named dimensions, coordinate arrays, label-based
selection, dimension-reducing means and group-by.  :class:`LabeledArray`
implements exactly that subset over numpy, plus an ``.npz``-based
save/load for dataset packaging.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.common.errors import ReproError

__all__ = ["LabeledArray"]


class DatasetError(ReproError):
    """Shape/dimension misuse in the labeled-array algebra."""


@dataclass(frozen=True)
class LabeledArray:
    """An N-D array with named dims and per-dim coordinate vectors."""

    name: str
    data: np.ndarray
    dims: tuple[str, ...]
    coords: dict[str, np.ndarray]
    attrs: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.data.ndim != len(self.dims):
            raise DatasetError(
                f"{self.name}: {self.data.ndim} axes but {len(self.dims)} dims"
            )
        if len(set(self.dims)) != len(self.dims):
            raise DatasetError(f"{self.name}: duplicate dims {self.dims}")
        for axis, dim in enumerate(self.dims):
            if dim not in self.coords:
                raise DatasetError(f"{self.name}: no coordinates for dim {dim!r}")
            if len(self.coords[dim]) != self.data.shape[axis]:
                raise DatasetError(
                    f"{self.name}: dim {dim!r} has {self.data.shape[axis]} "
                    f"entries but {len(self.coords[dim])} coordinates"
                )

    # -- introspection -----------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def axis_of(self, dim: str) -> int:
        try:
            return self.dims.index(dim)
        except ValueError:
            raise DatasetError(
                f"{self.name}: no dim {dim!r} (have {self.dims})"
            ) from None

    def coord(self, dim: str) -> np.ndarray:
        self.axis_of(dim)
        return self.coords[dim]

    # -- selection ----------------------------------------------------------------
    def isel(self, **indexers: int | slice | np.ndarray) -> "LabeledArray":
        """Positional selection, dropping dims indexed by a scalar."""
        index: list[Any] = [slice(None)] * self.data.ndim
        for dim, picker in indexers.items():
            index[self.axis_of(dim)] = picker
        new_data = self.data[tuple(index)]
        new_dims = []
        new_coords = {}
        for axis, dim in enumerate(self.dims):
            picker = indexers.get(dim, slice(None))
            if isinstance(picker, (int, np.integer)):
                continue  # scalar: dim dropped
            new_dims.append(dim)
            new_coords[dim] = np.atleast_1d(self.coords[dim][picker])
        return LabeledArray(
            name=self.name,
            data=new_data,
            dims=tuple(new_dims),
            coords=new_coords,
            attrs=self.attrs,
        )

    def sel(self, **selectors: Any) -> "LabeledArray":
        """Label-based selection: exact value, nearest value, or a
        ``(lo, hi)`` inclusive range tuple."""
        indexers: dict[str, Any] = {}
        for dim, selector in selectors.items():
            coords = self.coord(dim)
            if isinstance(selector, tuple) and len(selector) == 2:
                lo, hi = selector
                mask = (coords >= lo) & (coords <= hi)
                if not mask.any():
                    raise DatasetError(
                        f"{self.name}: empty range {selector} on {dim!r}"
                    )
                indexers[dim] = np.where(mask)[0]
            else:
                distances = np.abs(coords - selector)
                best = int(np.argmin(distances))
                indexers[dim] = best
        return self.isel(**indexers)

    # -- reductions -------------------------------------------------------------------
    def _reduce(self, dim: str, fn: Callable) -> "LabeledArray":
        axis = self.axis_of(dim)
        new_data = fn(self.data, axis=axis)
        new_dims = tuple(d for d in self.dims if d != dim)
        new_coords = {d: self.coords[d] for d in new_dims}
        return LabeledArray(
            name=self.name,
            data=new_data,
            dims=new_dims,
            coords=new_coords,
            attrs=self.attrs,
        )

    def mean(self, dim: str) -> "LabeledArray":
        return self._reduce(dim, np.mean)

    def std(self, dim: str) -> "LabeledArray":
        return self._reduce(dim, np.std)

    def min(self, dim: str) -> "LabeledArray":
        return self._reduce(dim, np.min)

    def max(self, dim: str) -> "LabeledArray":
        return self._reduce(dim, np.max)

    def scalar(self) -> float:
        """The value of a fully-reduced (0-D) array."""
        if self.data.ndim != 0:
            raise DatasetError(f"{self.name}: not a scalar (dims {self.dims})")
        return float(self.data)

    # -- group-by -------------------------------------------------------------------------
    def groupby(
        self, dim: str, key: Callable[[float], Any]
    ) -> dict[Any, "LabeledArray"]:
        """Partition along *dim* by ``key(coordinate)`` (e.g. season)."""
        axis = self.axis_of(dim)
        coords = self.coords[dim]
        groups: dict[Any, list[int]] = {}
        for i, value in enumerate(coords):
            groups.setdefault(key(float(value)), []).append(i)
        out: dict[Any, LabeledArray] = {}
        for label, idx in groups.items():
            out[label] = self.isel(**{dim: np.asarray(idx)})
        return out

    # -- arithmetic ------------------------------------------------------------------------
    def _binary(self, other: Any, fn: Callable, name: str) -> "LabeledArray":
        if isinstance(other, LabeledArray):
            if other.dims != self.dims or other.shape != self.shape:
                raise DatasetError(
                    f"operands not aligned: {self.dims}{self.shape} vs "
                    f"{other.dims}{other.shape}"
                )
            other_data = other.data
        else:
            other_data = other
        return LabeledArray(
            name=name,
            data=fn(self.data, other_data),
            dims=self.dims,
            coords=dict(self.coords),
            attrs=self.attrs,
        )

    def __add__(self, other: Any) -> "LabeledArray":
        return self._binary(other, np.add, self.name)

    def __sub__(self, other: Any) -> "LabeledArray":
        return self._binary(other, np.subtract, self.name)

    def __mul__(self, other: Any) -> "LabeledArray":
        return self._binary(other, np.multiply, self.name)

    # -- serialization -----------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist as ``.npz`` (data + coords) with a JSON header."""
        path = Path(path)
        header = {
            "name": self.name,
            "dims": list(self.dims),
            "attrs": self.attrs or {},
        }
        arrays = {"__data__": self.data}
        for dim, coord in self.coords.items():
            arrays[f"coord_{dim}"] = coord
        np.savez_compressed(path, header=json.dumps(header), **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "LabeledArray":
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["header"]))
            data = archive["__data__"]
            coords = {
                key[len("coord_"):]: archive[key]
                for key in archive.files
                if key.startswith("coord_")
            }
        return cls(
            name=header["name"],
            data=data,
            dims=tuple(header["dims"]),
            coords=coords,
            attrs=header.get("attrs") or None,
        )
