"""The BWW air-temperature analysis (Fig. `bww-airtemp`).

Mirrors the paper's Jupyter-notebook pipeline: load the referenced
dataset, compute the seasonal climatology, zonal means and the global
mean series, and emit the rows the figure plots (seasonal zonal-mean
temperature by latitude).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ReproError
from repro.common.tables import MetricsTable
from repro.monitor.tracing import current_tracer
from repro.weather.dataset import LabeledArray
from repro.weather.generator import season_of_day

__all__ = ["AirTempAnalysis", "analyze_air_temperature"]

SEASONS = ("DJF", "MAM", "JJA", "SON")


@dataclass(frozen=True)
class AirTempAnalysis:
    """Products of the analysis pipeline."""

    seasonal_zonal: MetricsTable      # rows: (season, lat, temperature)
    global_mean_k: float
    equator_minus_pole_k: float
    seasonal_amplitude_by_lat: MetricsTable  # rows: (lat, amplitude)

    def zonal_series(self, season: str) -> tuple[np.ndarray, np.ndarray]:
        """(latitudes, temperatures) for one season, sorted by latitude."""
        sub = self.seasonal_zonal.where_equals(season=season).sort_by("lat")
        if len(sub) == 0:
            raise ReproError(f"unknown season {season!r}")
        return sub.numeric("lat"), sub.numeric("temperature")


def analyze_air_temperature(air: LabeledArray) -> AirTempAnalysis:
    """Run the full analysis on an ``(time, lat, lon)`` temperature field."""
    for dim in ("time", "lat", "lon"):
        air.axis_of(dim)

    tracer = current_tracer()
    with tracer.span("weather/climatology", shape=list(air.data.shape)):
        zonal = air.mean("lon")  # (time, lat)
        by_season = zonal.groupby("time", season_of_day)

    seasonal_zonal = MetricsTable(["season", "lat", "temperature"])
    lats = air.coord("lat")
    season_means: dict[str, np.ndarray] = {}
    for season in SEASONS:
        if season not in by_season:
            raise ReproError(f"dataset does not cover season {season}")
        mean = by_season[season].mean("time")  # (lat,)
        season_means[season] = mean.data
        for lat, temp in zip(lats, mean.data):
            seasonal_zonal.append(
                {"season": season, "lat": float(lat), "temperature": float(temp)}
            )

    annual_zonal = zonal.mean("time")  # (lat,)
    weights = np.cos(np.deg2rad(lats))
    global_mean = float(
        np.sum(annual_zonal.data * weights) / np.sum(weights)
    )
    equator = float(annual_zonal.sel(lat=0.0).scalar())
    pole = float(
        (annual_zonal.sel(lat=90.0).scalar() + annual_zonal.sel(lat=-90.0).scalar())
        / 2.0
    )

    amplitude = MetricsTable(["lat", "amplitude"])
    stack = np.stack([season_means[s] for s in SEASONS])  # (4, lat)
    for i, lat in enumerate(lats):
        amplitude.append(
            {
                "lat": float(lat),
                "amplitude": float(stack[:, i].max() - stack[:, i].min()),
            }
        )

    return AirTempAnalysis(
        seasonal_zonal=seasonal_zonal,
        global_mean_k=global_mean,
        equator_minus_pole_k=equator - pole,
        seasonal_amplitude_by_lat=amplitude,
    )
