"""Synthetic NCEP/NCAR-Reanalysis-style air-temperature generator.

The BWW use case references the "NCEP/NCAR Reanalysis 1" air-temperature
product.  We cannot redistribute it, so this generator produces a
gridded (time, lat, lon) surface-air-temperature field with the physical
structure the analysis depends on:

* equator-to-pole gradient (warm tropics, cold poles),
* a seasonal cycle whose amplitude grows poleward and whose sign flips
  across the equator (NH summer = SH winter),
* land/ocean-ish longitudinal texture (a fixed smooth spatial field),
* day-to-day weather noise (red in time).

All of it is deterministic in the seed, so the dataset can be published
as a data package with stable hashes.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ReproError
from repro.common.rng import derive_rng
from repro.weather.dataset import LabeledArray

__all__ = ["generate_air_temperature", "season_of_day"]


def season_of_day(day_of_year: float) -> str:
    """Meteorological season (DJF/MAM/JJA/SON) of a 0-based day-of-year."""
    day = int(day_of_year) % 365
    # Dec(334+), Jan, Feb(<59)
    if day >= 334 or day < 59:
        return "DJF"
    if day < 151:
        return "MAM"
    if day < 243:
        return "JJA"
    return "SON"


def generate_air_temperature(
    seed: int = 42,
    years: int = 1,
    lat_step: float = 5.0,
    lon_step: float = 5.0,
    samples_per_day: int = 1,
) -> LabeledArray:
    """Generate the synthetic reanalysis product.

    Returns a ``LabeledArray`` named ``"air"`` with dims
    ``(time, lat, lon)``; time coordinates are fractional days since
    the start, temperatures are Kelvin.
    """
    if years < 1 or samples_per_day < 1:
        raise ReproError("years and samples_per_day must be >= 1")
    if not (0 < lat_step <= 30 and 0 < lon_step <= 30):
        raise ReproError("grid steps must be in (0, 30] degrees")
    rng = derive_rng(seed, "weather", "air-temperature")

    lats = np.arange(-90.0, 90.0 + lat_step / 2, lat_step)
    lons = np.arange(0.0, 360.0, lon_step)
    steps = int(365 * years * samples_per_day)
    times = np.arange(steps, dtype=np.float64) / samples_per_day

    lat_rad = np.deg2rad(lats)

    # Annual-mean meridional structure: ~303K at the equator, ~235K poles.
    base = 235.0 + 68.0 * np.cos(lat_rad) ** 1.6          # (lat,)

    # Seasonal cycle: amplitude grows poleward, sign flips hemispheres;
    # peak ~day 197 (mid-July) in the NH.
    amplitude = 28.0 * np.sin(np.abs(lat_rad)) ** 1.2      # (lat,)
    hemisphere = np.sign(lat_rad + 1e-12)                  # (lat,)
    phase = 2 * np.pi * (times[:, None] % 365.0 - 197.0) / 365.0  # (time, lat)
    seasonal = amplitude[None, :] * hemisphere[None, :] * np.cos(phase)

    # Fixed longitudinal texture ("continents"): smooth harmonics.
    lon_rad = np.deg2rad(lons)
    texture_rng = derive_rng(seed, "weather", "texture")
    texture = np.zeros((lats.size, lons.size))
    for k in range(1, 4):
        phase_k = texture_rng.uniform(0, 2 * np.pi)
        amp_k = 4.0 / k
        texture += amp_k * np.outer(
            np.cos(lat_rad) ** 0.5, np.cos(k * lon_rad + phase_k)
        )

    # Weather noise: AR(1) in time, independent per cell, stronger at
    # mid/high latitudes (storm tracks).
    noise_scale = 1.5 + 4.0 * np.sin(np.abs(lat_rad)) ** 2  # (lat,)
    noise = np.empty((steps, lats.size, lons.size), dtype=np.float64)
    previous = rng.standard_normal((lats.size, lons.size))
    for t in range(steps):
        shock = rng.standard_normal((lats.size, lons.size))
        previous = 0.8 * previous + 0.6 * shock
        noise[t] = previous * noise_scale[:, None]

    data = (
        base[None, :, None]
        + seasonal[:, :, None]
        + texture[None, :, :]
        + noise
    ).astype(np.float32)

    return LabeledArray(
        name="air",
        data=data,
        dims=("time", "lat", "lon"),
        coords={"time": times, "lat": lats, "lon": lons},
        attrs={
            "units": "K",
            "source": "synthetic NCEP/NCAR Reanalysis 1 surrogate",
            "seed": seed,
        },
    )
