"""The Big-Weather-Web data-science use case (ASPLOS §5.4): labeled N-D
arrays, a synthetic reanalysis generator and the air-temperature
analysis pipeline.
"""

from repro.weather.analysis import SEASONS, AirTempAnalysis, analyze_air_temperature
from repro.weather.dataset import DatasetError, LabeledArray
from repro.weather.generator import generate_air_temperature, season_of_day

__all__ = [
    "LabeledArray",
    "DatasetError",
    "generate_air_temperature",
    "season_of_day",
    "AirTempAnalysis",
    "analyze_air_temperature",
    "SEASONS",
]
