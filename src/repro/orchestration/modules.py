"""Task modules: the verbs a playbook can apply to a host.

Each module takes a connection plus rendered arguments and returns a
:class:`TaskResult` with Ansible's ``changed``/``failed``/``skipped``
semantics.  Modules are registered in :data:`MODULES`; experiments can
register domain-specific ones (GassyFS mounts, benchmark drivers) the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import OrchestrationError

__all__ = ["TaskResult", "MODULES", "register_module", "run_module"]


@dataclass
class TaskResult:
    """Outcome of one module invocation on one host."""

    changed: bool = False
    failed: bool = False
    skipped: bool = False
    msg: str = ""
    data: dict[str, Any] = field(default_factory=dict)
    #: The failure was the host being unreachable (a transient), not the
    #: module itself — eligible for retry / graceful host degradation.
    unreachable: bool = False

    @property
    def ok(self) -> bool:
        return not self.failed


ModuleFn = Callable[[Any, dict[str, Any]], TaskResult]

MODULES: dict[str, ModuleFn] = {}


def register_module(name: str, fn: ModuleFn | None = None):
    """Register a module (usable as a decorator)."""

    def inner(func: ModuleFn) -> ModuleFn:
        if name in MODULES:
            raise OrchestrationError(f"module already registered: {name!r}")
        MODULES[name] = func
        return func

    if fn is not None:
        return inner(fn)
    return inner


def run_module(name: str, connection: Any, args: dict[str, Any]) -> TaskResult:
    """Dispatch one module invocation."""
    fn = MODULES.get(name)
    if fn is None:
        raise OrchestrationError(f"unknown module: {name!r}")
    return fn(connection, args)


def _require(args: dict[str, Any], *keys: str) -> None:
    missing = [k for k in keys if k not in args]
    if missing:
        raise OrchestrationError(f"missing module arguments: {missing}")


@register_module("command")
def _mod_command(connection: Any, args: dict[str, Any]) -> TaskResult:
    """Run a command; fails on nonzero exit unless ``ignore_errors``."""
    _require(args, "cmd")
    cmd = args["cmd"]
    if isinstance(cmd, bool):
        # YAML parses bare `cmd: false` as a boolean; restore the binary name.
        cmd = "true" if cmd else "false"
    result = connection.run(str(cmd))
    failed = result.exit_code != 0
    return TaskResult(
        changed=True,
        failed=failed,
        msg=result.stderr.strip() if failed else "",
        data={
            "rc": result.exit_code,
            "stdout": result.stdout,
            "stderr": result.stderr,
        },
    )


# `shell` is an alias: our container runtime always gives shell semantics.
register_module("shell", _mod_command)


@register_module("copy")
def _mod_copy(connection: Any, args: dict[str, Any]) -> TaskResult:
    """Write ``content`` (or a local ``src`` file) to ``dest`` on the host."""
    _require(args, "dest")
    if "content" in args:
        data = str(args["content"]).encode("utf-8")
    elif "src" in args:
        from pathlib import Path

        source = Path(args["src"])
        if not source.is_file():
            return TaskResult(failed=True, msg=f"copy: src not found: {source}")
        data = source.read_bytes()
    else:
        raise OrchestrationError("copy needs 'content' or 'src'")
    if connection.file_exists(args["dest"]) and connection.fetch_file(args["dest"]) == data:
        return TaskResult(changed=False)
    connection.put_file(args["dest"], data)
    return TaskResult(changed=True)


@register_module("fetch")
def _mod_fetch(connection: Any, args: dict[str, Any]) -> TaskResult:
    """Read a remote file; the content is returned in ``data['content']``."""
    _require(args, "src")
    try:
        data = connection.fetch_file(args["src"])
    except OrchestrationError as exc:
        return TaskResult(failed=True, msg=str(exc))
    text = data.decode("utf-8", errors="replace")
    if "dest" in args:
        from pathlib import Path

        target = Path(args["dest"])
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(data)
    return TaskResult(changed=False, data={"content": text})


@register_module("package")
def _mod_package(connection: Any, args: dict[str, Any]) -> TaskResult:
    """Ensure packages are installed (idempotent)."""
    _require(args, "name")
    names = args["name"] if isinstance(args["name"], list) else [args["name"]]
    missing = [
        n for n in names if not connection.file_exists(f"/var/lib/pkg/{n}")
    ]
    if not missing:
        return TaskResult(changed=False)
    result = connection.run("pkg install " + " ".join(missing))
    if result.exit_code != 0:
        return TaskResult(failed=True, msg=result.stderr.strip())
    return TaskResult(changed=True, data={"installed": missing})


@register_module("file")
def _mod_file(connection: Any, args: dict[str, Any]) -> TaskResult:
    """Ensure a path exists (``state: touch``) or is absent."""
    _require(args, "path", "state")
    state = args["state"]
    exists = connection.file_exists(args["path"])
    if state == "touch":
        if exists:
            return TaskResult(changed=False)
        connection.put_file(args["path"], b"")
        return TaskResult(changed=True)
    if state == "absent":
        if not exists:
            return TaskResult(changed=False)
        result = connection.run(f"rm {args['path']}")
        return TaskResult(changed=True, failed=result.exit_code != 0)
    raise OrchestrationError(f"file: unknown state {state!r}")


@register_module("assert")
def _mod_assert(connection: Any, args: dict[str, Any]) -> TaskResult:
    """Fail unless every item of ``that`` evaluated truthy (pre-rendered)."""
    _require(args, "that")
    conditions = args["that"] if isinstance(args["that"], list) else [args["that"]]
    for condition in conditions:
        if not condition:
            return TaskResult(
                failed=True, msg=args.get("msg", "assertion failed")
            )
    return TaskResult(changed=False)


@register_module("set_fact")
def _mod_set_fact(connection: Any, args: dict[str, Any]) -> TaskResult:
    """Export every argument as a new host fact."""
    return TaskResult(changed=False, data=dict(args))


@register_module("debug")
def _mod_debug(connection: Any, args: dict[str, Any]) -> TaskResult:
    """Record a message in the task result."""
    return TaskResult(changed=False, msg=str(args.get("msg", "")))
