"""Minimal templating and condition evaluation for playbooks.

``render`` substitutes ``{{ expression }}`` placeholders; ``evaluate``
drives ``when:`` conditions.  Expressions support dotted/indexed variable
access, literals, comparisons, ``and``/``or``/``not``, ``in``,
``is defined`` and a ``| default(x)`` filter — the subset real Ansible
playbooks in the paper's templates rely on, implemented as a small
recursive-descent parser (never ``eval``).
"""

from __future__ import annotations

import re
from typing import Any

from repro.common.errors import OrchestrationError

__all__ = ["render", "evaluate", "UNDEFINED"]


class _Undefined:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<undefined>"


UNDEFINED = _Undefined()

_TOKEN = re.compile(
    r"""
    \s*(
        >=|<=|==|!=|>|<
      | \(|\)|\[|\]|,|\||\.
      | -?\d+\.\d+ | -?\d+
      | '[^']*' | "[^"]*"
      | [A-Za-z_][A-Za-z_0-9]*
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "in", "is", "defined", "true", "false", "none"}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise OrchestrationError(f"bad expression near {text[pos:]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _ExprParser:
    def __init__(self, tokens: list[str], variables: dict[str, Any]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.variables = variables

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise OrchestrationError("unexpected end of expression")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise OrchestrationError(f"expected {token!r}, got {got!r}")

    # expr := or_expr
    def parse(self) -> Any:
        value = self.parse_or()
        if self.peek() is not None:
            raise OrchestrationError(f"trailing tokens: {self.tokens[self.pos:]}")
        return value

    def parse_or(self) -> Any:
        left = self.parse_and()
        while self.peek() == "or":
            self.take()
            right = self.parse_and()
            left = bool(left) or bool(right)
        return left

    def parse_and(self) -> Any:
        left = self.parse_not()
        while self.peek() == "and":
            self.take()
            right = self.parse_not()
            left = bool(left) and bool(right)
        return left

    def parse_not(self) -> Any:
        if self.peek() == "not":
            self.take()
            return not bool(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Any:
        left = self.parse_pipe()
        token = self.peek()
        if token in (">=", "<=", "==", "!=", ">", "<"):
            op = self.take()
            right = self.parse_pipe()
            if isinstance(left, _Undefined) or isinstance(right, _Undefined):
                raise OrchestrationError("comparison against undefined variable")
            return {
                ">=": lambda a, b: a >= b,
                "<=": lambda a, b: a <= b,
                "==": lambda a, b: a == b,
                "!=": lambda a, b: a != b,
                ">": lambda a, b: a > b,
                "<": lambda a, b: a < b,
            }[op](left, right)
        if token == "in":
            self.take()
            right = self.parse_pipe()
            if isinstance(right, _Undefined):
                raise OrchestrationError("'in' against undefined variable")
            return left in right
        if token == "is":
            self.take()
            negated = False
            if self.peek() == "not":
                self.take()
                negated = True
            self.expect("defined")
            defined = not isinstance(left, _Undefined)
            return defined != negated
        if isinstance(left, _Undefined):
            raise OrchestrationError("reference to undefined variable")
        return left

    def parse_pipe(self) -> Any:
        value = self.parse_atom()
        while self.peek() == "|":
            self.take()
            name = self.take()
            if name == "default":
                self.expect("(")
                fallback = self.parse_or()
                self.expect(")")
                if isinstance(value, _Undefined):
                    value = fallback
            elif name == "length":
                if isinstance(value, _Undefined):
                    raise OrchestrationError("length of undefined variable")
                value = len(value)
            elif name == "int":
                if isinstance(value, _Undefined):
                    raise OrchestrationError("int of undefined variable")
                value = int(value)
            else:
                raise OrchestrationError(f"unknown filter: {name!r}")
        return value

    def parse_atom(self) -> Any:
        token = self.take()
        if token == "(":
            value = self.parse_or()
            self.expect(")")
            return value
        if token.startswith(("'", '"')):
            return token[1:-1]
        if re.fullmatch(r"-?\d+", token):
            return int(token)
        if re.fullmatch(r"-?\d+\.\d+", token):
            return float(token)
        if token == "true":
            return True
        if token == "false":
            return False
        if token == "none":
            return None
        if token in _KEYWORDS:
            raise OrchestrationError(f"misplaced keyword {token!r}")
        # variable with optional .attr / [index] trail
        value: Any = self.variables.get(token, UNDEFINED)
        while self.peek() in (".", "["):
            op = self.take()
            if isinstance(value, _Undefined):
                raise OrchestrationError(f"attribute access on undefined {token!r}")
            if op == ".":
                attr = self.take()
                if isinstance(value, dict):
                    value = value.get(attr, UNDEFINED)
                else:
                    value = getattr(value, attr, UNDEFINED)
            else:
                index = self.parse_or()
                self.expect("]")
                try:
                    value = value[index]
                except (KeyError, IndexError, TypeError):
                    value = UNDEFINED
        return value


def evaluate(expression: str, variables: dict[str, Any]) -> Any:
    """Evaluate one template expression against *variables*."""
    tokens = _tokenize(expression)
    if not tokens:
        raise OrchestrationError("empty expression")
    return _ExprParser(tokens, variables).parse()


_PLACEHOLDER = re.compile(r"\{\{(.*?)\}\}")


def render(text: str, variables: dict[str, Any]) -> str:
    """Substitute every ``{{ expr }}`` in *text*."""

    def repl(match: re.Match) -> str:
        value = evaluate(match.group(1).strip(), variables)
        if isinstance(value, _Undefined):
            raise OrchestrationError(
                f"undefined template variable in {match.group(0)!r}"
            )
        if value is True:
            return "true"
        if value is False:
            return "false"
        return str(value)

    return _PLACEHOLDER.sub(repl, text)


def render_value(value: Any, variables: dict[str, Any]) -> Any:
    """Recursively render strings inside nested structures.

    A string that is exactly one placeholder keeps its native type
    (``"{{ nodes }}"`` with ``nodes=4`` renders to the int 4, not "4").
    """
    if isinstance(value, str):
        stripped = value.strip()
        match = _PLACEHOLDER.fullmatch(stripped)
        if match:
            result = evaluate(match.group(1).strip(), variables)
            if isinstance(result, _Undefined):
                raise OrchestrationError(
                    f"undefined template variable in {value!r}"
                )
            return result
        return render(value, variables)
    if isinstance(value, dict):
        return {k: render_value(v, variables) for k, v in value.items()}
    if isinstance(value, list):
        return [render_value(v, variables) for v in value]
    return value
