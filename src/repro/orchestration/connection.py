"""Host connections: how orchestration modules reach a managed machine.

A connection is anything with ``run``/``put_file``/``fetch_file``/``facts``.
The shipping implementation is :class:`ContainerConnection` — each managed
"machine" is a container (the OS-level-virtualization worldview of the
paper) optionally bound to a simulated :class:`~repro.platform.sites.Node`
so that facts include hardware characteristics for baseline fingerprinting.
"""

from __future__ import annotations

from typing import Any

import threading

from repro.common.errors import OrchestrationError, UnreachableHostError
from repro.container.image import Image, scratch
from repro.container.runtime import BinaryRegistry, Container, ExecResult

__all__ = ["ContainerConnection", "UnreachableConnection", "FlakyConnection"]


class ContainerConnection:
    """A managed host backed by a container (plus optional platform node)."""

    def __init__(
        self,
        image: Image | None = None,
        binaries: BinaryRegistry | None = None,
        node: Any = None,
        name: str = "host",
    ) -> None:
        self.container = Container(
            image if image is not None else scratch(),
            binaries=binaries,
            name=name,
        )
        self.node = node
        self.name = name

    # -- command execution --------------------------------------------------------
    def run(self, command: str) -> ExecResult:
        return self.container.run(command)

    # -- file transfer ---------------------------------------------------------------
    def put_file(self, path: str, data: bytes) -> None:
        self.container.write_file(path, data)

    def fetch_file(self, path: str) -> bytes:
        data = self.container.read_file(path, missing_ok=True)
        if data is None:
            raise OrchestrationError(f"{self.name}: no such file: {path}")
        return data

    def file_exists(self, path: str) -> bool:
        return self.container.read_file(path, missing_ok=True) is not None

    # -- facts -------------------------------------------------------------------------
    def facts(self) -> dict[str, Any]:
        """Environment facts, the 'sanitize before you run' input."""
        facts: dict[str, Any] = {
            "hostname": self.name,
            "installed_packages": sorted(
                p.rsplit("/", 1)[-1]
                for p in self.container.list_files()
                if p.startswith("/var/lib/pkg/")
            ),
        }
        if self.node is not None:
            spec = self.node.spec
            facts.update(
                {
                    "machine": spec.name,
                    "site": self.node.site,
                    "cores": spec.cores,
                    "freq_ghz": spec.freq_ghz,
                    "mem_bw_gbs": spec.mem_bw_gbs,
                    "net_bw_gbit": spec.net_bw_gbit,
                    "storage_bw_mbs": spec.storage_bw_mbs,
                    "virtualized": spec.virt_overhead > 0,
                    "speed_factor": self.node.speed_factor,
                }
            )
        return facts


class UnreachableConnection:
    """A host that cannot be contacted (models provisioning failures).

    Raises :class:`~repro.common.errors.UnreachableHostError` — the
    transient branch — so retry policies and host degradation treat the
    failure as infrastructure, not experiment logic.
    """

    def __init__(self, name: str = "down") -> None:
        self.name = name

    def run(self, command: str) -> ExecResult:
        raise UnreachableHostError(f"{self.name}: host unreachable")

    def put_file(self, path: str, data: bytes) -> None:
        raise UnreachableHostError(f"{self.name}: host unreachable")

    def fetch_file(self, path: str) -> bytes:
        raise UnreachableHostError(f"{self.name}: host unreachable")

    def file_exists(self, path: str) -> bool:
        raise UnreachableHostError(f"{self.name}: host unreachable")

    def facts(self) -> dict[str, Any]:
        raise UnreachableHostError(f"{self.name}: host unreachable")


class FlakyConnection:
    """A connection that is unreachable for its first N operations.

    The host-level analog of the engine's ``flaky`` fault clause: any
    operation (``run``, ``facts``, file transfer) raises
    :class:`~repro.common.errors.UnreachableHostError` until
    ``fail_attempts`` operations have been tried, then every call
    delegates to *inner*.  Deterministic, so playbook retry behavior is
    testable without real network flakiness.
    """

    def __init__(self, inner: Any, fail_attempts: int = 1) -> None:
        self.inner = inner
        self.fail_attempts = int(fail_attempts)
        self.name = getattr(inner, "name", "flaky")
        self._attempts = 0
        self._lock = threading.Lock()

    def _maybe_fail(self) -> None:
        with self._lock:
            self._attempts += 1
            if self._attempts <= self.fail_attempts:
                raise UnreachableHostError(
                    f"{self.name}: host unreachable "
                    f"(attempt {self._attempts} of {self.fail_attempts} doomed)"
                )

    def run(self, command: str) -> ExecResult:
        self._maybe_fail()
        return self.inner.run(command)

    def put_file(self, path: str, data: bytes) -> None:
        self._maybe_fail()
        self.inner.put_file(path, data)

    def fetch_file(self, path: str) -> bytes:
        self._maybe_fail()
        return self.inner.fetch_file(path)

    def file_exists(self, path: str) -> bool:
        self._maybe_fail()
        return self.inner.file_exists(path)

    def facts(self) -> dict[str, Any]:
        self._maybe_fail()
        return self.inner.facts()
