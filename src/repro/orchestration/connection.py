"""Host connections: how orchestration modules reach a managed machine.

A connection is anything with ``run``/``put_file``/``fetch_file``/``facts``.
The shipping implementation is :class:`ContainerConnection` — each managed
"machine" is a container (the OS-level-virtualization worldview of the
paper) optionally bound to a simulated :class:`~repro.platform.sites.Node`
so that facts include hardware characteristics for baseline fingerprinting.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import OrchestrationError
from repro.container.image import Image, scratch
from repro.container.runtime import BinaryRegistry, Container, ExecResult

__all__ = ["ContainerConnection", "UnreachableConnection"]


class ContainerConnection:
    """A managed host backed by a container (plus optional platform node)."""

    def __init__(
        self,
        image: Image | None = None,
        binaries: BinaryRegistry | None = None,
        node: Any = None,
        name: str = "host",
    ) -> None:
        self.container = Container(
            image if image is not None else scratch(),
            binaries=binaries,
            name=name,
        )
        self.node = node
        self.name = name

    # -- command execution --------------------------------------------------------
    def run(self, command: str) -> ExecResult:
        return self.container.run(command)

    # -- file transfer ---------------------------------------------------------------
    def put_file(self, path: str, data: bytes) -> None:
        self.container.write_file(path, data)

    def fetch_file(self, path: str) -> bytes:
        data = self.container.read_file(path, missing_ok=True)
        if data is None:
            raise OrchestrationError(f"{self.name}: no such file: {path}")
        return data

    def file_exists(self, path: str) -> bool:
        return self.container.read_file(path, missing_ok=True) is not None

    # -- facts -------------------------------------------------------------------------
    def facts(self) -> dict[str, Any]:
        """Environment facts, the 'sanitize before you run' input."""
        facts: dict[str, Any] = {
            "hostname": self.name,
            "installed_packages": sorted(
                p.rsplit("/", 1)[-1]
                for p in self.container.list_files()
                if p.startswith("/var/lib/pkg/")
            ),
        }
        if self.node is not None:
            spec = self.node.spec
            facts.update(
                {
                    "machine": spec.name,
                    "site": self.node.site,
                    "cores": spec.cores,
                    "freq_ghz": spec.freq_ghz,
                    "mem_bw_gbs": spec.mem_bw_gbs,
                    "net_bw_gbit": spec.net_bw_gbit,
                    "storage_bw_mbs": spec.storage_bw_mbs,
                    "virtualized": spec.virt_overhead > 0,
                    "speed_factor": self.node.speed_factor,
                }
            )
        return facts


class UnreachableConnection:
    """A host that cannot be contacted (models provisioning failures)."""

    def __init__(self, name: str = "down") -> None:
        self.name = name

    def run(self, command: str) -> ExecResult:
        raise OrchestrationError(f"{self.name}: host unreachable")

    def put_file(self, path: str, data: bytes) -> None:
        raise OrchestrationError(f"{self.name}: host unreachable")

    def fetch_file(self, path: str) -> bytes:
        raise OrchestrationError(f"{self.name}: host unreachable")

    def file_exists(self, path: str) -> bool:
        raise OrchestrationError(f"{self.name}: host unreachable")

    def facts(self) -> dict[str, Any]:
        raise OrchestrationError(f"{self.name}: host unreachable")
