"""Inventories: named hosts, groups and host variables.

An inventory maps the experiment's logical roles ("head", "osds",
"clients") onto concrete connections.  It loads from the YAML shape the
Popper templates ship (``machines.yml``) and supports the host patterns
playbooks target (``all``, group names, comma unions, ``!`` exclusions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common import minyaml
from repro.common.errors import OrchestrationError

__all__ = ["Host", "Inventory"]


@dataclass
class Host:
    """One managed machine: a name, its variables and its connection."""

    name: str
    variables: dict[str, Any] = field(default_factory=dict)
    connection: Any = None  # duck-typed: .run/.put_file/.fetch_file/.facts

    def get_var(self, key: str, default: Any = None) -> Any:
        return self.variables.get(key, default)


class Inventory:
    """Hosts organized into groups."""

    def __init__(self) -> None:
        self._hosts: dict[str, Host] = {}
        self._groups: dict[str, list[str]] = {"all": []}
        self.group_vars: dict[str, dict[str, Any]] = {}

    # -- construction -------------------------------------------------------------
    def add_host(
        self,
        name: str,
        groups: list[str] | None = None,
        variables: dict[str, Any] | None = None,
        connection: Any = None,
    ) -> Host:
        """Register a host under the given groups (always also ``all``)."""
        if name in self._hosts:
            raise OrchestrationError(f"duplicate host: {name!r}")
        host = Host(name=name, variables=dict(variables or {}), connection=connection)
        self._hosts[name] = host
        self._groups["all"].append(name)
        for group in groups or []:
            if group == "all":
                continue
            self._groups.setdefault(group, []).append(name)
        return host

    def set_group_vars(self, group: str, variables: dict[str, Any]) -> None:
        """Variables shared by every host of *group* (host vars win)."""
        self.group_vars.setdefault(group, {}).update(variables)

    @classmethod
    def from_yaml(cls, text: str) -> "Inventory":
        """Load the template inventory shape::

            hosts:
              - name: node0
                groups: [head]
                vars: {role: master}
            group_vars:
              head: {port: 8080}
        """
        doc = minyaml.loads(text) or {}
        if not isinstance(doc, dict):
            raise OrchestrationError("inventory document must be a mapping")
        inventory = cls()
        for entry in doc.get("hosts") or []:
            if isinstance(entry, str):
                inventory.add_host(entry)
                continue
            if not isinstance(entry, dict) or "name" not in entry:
                raise OrchestrationError(f"bad host entry: {entry!r}")
            inventory.add_host(
                entry["name"],
                groups=entry.get("groups") or [],
                variables=entry.get("vars") or {},
            )
        for group, variables in (doc.get("group_vars") or {}).items():
            inventory.set_group_vars(group, variables or {})
        return inventory

    # -- lookup ----------------------------------------------------------------------
    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise OrchestrationError(f"unknown host: {name!r}") from None

    def hosts(self) -> list[Host]:
        return [self._hosts[n] for n in self._groups["all"]]

    def groups(self) -> list[str]:
        return sorted(self._groups)

    def group_members(self, group: str) -> list[Host]:
        if group not in self._groups:
            raise OrchestrationError(f"unknown group: {group!r}")
        return [self._hosts[n] for n in self._groups[group]]

    def effective_vars(self, host: Host) -> dict[str, Any]:
        """Group vars (in group order) overlaid by host vars."""
        merged: dict[str, Any] = {}
        for group, members in sorted(self._groups.items()):
            if host.name in members and group in self.group_vars:
                merged.update(self.group_vars[group])
        merged.update(host.variables)
        merged.setdefault("inventory_hostname", host.name)
        return merged

    def match(self, pattern: str) -> list[Host]:
        """Resolve a host pattern to hosts.

        Supports ``all``, host names, group names, comma unions and
        ``!name`` exclusions (``webs,!web3``).
        """
        selected: dict[str, Host] = {}
        excluded: set[str] = set()
        for raw in pattern.split(","):
            term = raw.strip()
            if not term:
                continue
            negate = term.startswith("!")
            if negate:
                term = term[1:]
            if term in self._groups:
                names = list(self._groups[term])
            elif term in self._hosts:
                names = [term]
            else:
                raise OrchestrationError(
                    f"pattern term {term!r} matches no host or group"
                )
            if negate:
                excluded.update(names)
            else:
                for name in names:
                    selected.setdefault(name, self._hosts[name])
        return [h for n, h in selected.items() if n not in excluded]
