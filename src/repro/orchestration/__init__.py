"""Multi-node orchestration substrate (the Ansible substitution):
inventories, host connections, task modules, templating and a parallel
playbook executor.
"""

from repro.orchestration.connection import ContainerConnection, UnreachableConnection
from repro.orchestration.inventory import Host, Inventory
from repro.orchestration.modules import MODULES, TaskResult, register_module, run_module
from repro.orchestration.playbook import (
    HostStats,
    Play,
    Playbook,
    PlaybookRunner,
    PlayRecap,
    Task,
)
from repro.orchestration.templating import evaluate, render, render_value

__all__ = [
    "Inventory",
    "Host",
    "ContainerConnection",
    "UnreachableConnection",
    "TaskResult",
    "MODULES",
    "register_module",
    "run_module",
    "Task",
    "Play",
    "Playbook",
    "PlaybookRunner",
    "PlayRecap",
    "HostStats",
    "render",
    "render_value",
    "evaluate",
]
