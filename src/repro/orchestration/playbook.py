"""Playbooks: declarative multi-host experiment orchestration.

A playbook is a list of plays; a play targets a host pattern and runs an
ordered task list.  Execution fans out across hosts through the shared
execution engine (:mod:`repro.engine`): each task becomes a flat
:class:`~repro.engine.TaskGraph` with one node per alive host, run by a
:class:`~repro.engine.ThreadedScheduler` bounded by ``max_forks`` (like
Ansible's linear strategy).  Tasks stay in lockstep: task *i* completes
on every host before task *i+1* starts, which is what experiment phases
(install → configure → run → collect) require.

YAML shape (the subset the Popper templates use)::

    - name: provision
      hosts: all
      vars: {gassyfs_nodes: 4}
      tasks:
        - name: install deps
          package: {name: [gasnet, gassyfs]}
        - name: run experiment
          command: {cmd: "gassyfs-mount /mnt"}
          register: mount_result
          when: inventory_hostname == 'node0'
        - name: record
          copy: {dest: /results.csv, content: "{{ mount_result.stdout }}"}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common import minyaml
from repro.common.errors import OrchestrationError, TransientError
from repro.engine import Scheduler, SerialScheduler, TaskGraph, ThreadedScheduler
from repro.monitor.tracing import current_tracer
from repro.orchestration.inventory import Host, Inventory
from repro.orchestration.modules import MODULES, TaskResult, run_module
from repro.orchestration.templating import evaluate, render_value

__all__ = ["Task", "Play", "Playbook", "PlaybookRunner", "HostStats", "PlayRecap"]

_TASK_KEYWORDS = {"name", "register", "when", "loop", "ignore_errors", "retries"}


@dataclass
class Task:
    """One task: a module invocation plus control keywords."""

    module: str
    args: dict[str, Any]
    name: str = ""
    register: str | None = None
    when: str | None = None
    loop: list[Any] | str | None = None
    ignore_errors: bool = False
    retries: int = 0

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Task":
        module_keys = [k for k in doc if k not in _TASK_KEYWORDS]
        if len(module_keys) != 1:
            raise OrchestrationError(
                f"task must name exactly one module, got {module_keys}: {doc}"
            )
        module = module_keys[0]
        if module not in MODULES:
            raise OrchestrationError(f"unknown module in task: {module!r}")
        raw_args = doc[module]
        if raw_args is None:
            args: dict[str, Any] = {}
        elif isinstance(raw_args, str):
            # `command: echo hi` shorthand
            args = {"cmd": raw_args} if module in ("command", "shell") else {"_raw": raw_args}
        elif isinstance(raw_args, dict):
            args = dict(raw_args)
        else:
            raise OrchestrationError(f"bad module args for {module!r}: {raw_args!r}")
        return cls(
            module=module,
            args=args,
            name=doc.get("name", module),
            register=doc.get("register"),
            when=doc.get("when"),
            loop=doc.get("loop"),
            ignore_errors=bool(doc.get("ignore_errors", False)),
            retries=int(doc.get("retries", 0)),
        )


@dataclass
class Play:
    """One play: a host pattern, play vars and a task list."""

    hosts: str
    tasks: list[Task]
    name: str = ""
    vars: dict[str, Any] = field(default_factory=dict)
    gather_facts: bool = True

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Play":
        if "hosts" not in doc:
            raise OrchestrationError(f"play missing 'hosts': {doc}")
        tasks = [Task.from_dict(t) for t in doc.get("tasks") or []]
        return cls(
            hosts=str(doc["hosts"]),
            tasks=tasks,
            name=doc.get("name", ""),
            vars=doc.get("vars") or {},
            gather_facts=bool(doc.get("gather_facts", True)),
        )


@dataclass
class Playbook:
    """An ordered list of plays."""

    plays: list[Play]

    @classmethod
    def from_yaml(cls, text: str) -> "Playbook":
        doc = minyaml.loads(text)
        if not isinstance(doc, list):
            raise OrchestrationError("playbook document must be a list of plays")
        return cls(plays=[Play.from_dict(p) for p in doc])


@dataclass
class HostStats:
    """Per-host recap counters (the ``PLAY RECAP`` line)."""

    ok: int = 0
    changed: int = 0
    failed: int = 0
    skipped: int = 0
    #: Operations lost to the host being unreachable (transient faults).
    unreachable: int = 0

    @property
    def healthy(self) -> bool:
        return self.failed == 0


@dataclass
class PlayRecap:
    """Result of a playbook run."""

    stats: dict[str, HostStats]
    task_results: list[tuple[str, str, TaskResult]]  # (task name, host, result)
    #: Hosts dropped from the run as unreachable, within the runner's
    #: ``max_host_failures`` budget (host name -> reason).  A degraded
    #: run is still ``ok``: the remaining hosts completed every task.
    degraded: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(s.healthy for s in self.stats.values())

    def results_for(self, task_name: str) -> dict[str, TaskResult]:
        return {
            host: result
            for name, host, result in self.task_results
            if name == task_name
        }


class PlaybookRunner:
    """Executes playbooks against an inventory."""

    def __init__(
        self,
        inventory: Inventory,
        extra_vars: dict[str, Any] | None = None,
        max_forks: int = 16,
        scheduler: Scheduler | None = None,
        max_host_failures: int = 0,
        unreachable_retries: int = 0,
    ) -> None:
        self.inventory = inventory
        self.extra_vars = dict(extra_vars or {})
        self.max_forks = max(1, max_forks)
        # Injected scheduler overrides the per-task default (one worker
        # per alive host, bounded by max_forks; serial when forks == 1).
        self.scheduler = scheduler
        # Graceful degradation: up to max_host_failures hosts may be
        # dropped as unreachable without failing the run (they land in
        # the recap's ``degraded`` map); unreachable operations retry up
        # to unreachable_retries times first.
        self.max_host_failures = max(0, int(max_host_failures))
        self.unreachable_retries = max(0, int(unreachable_retries))

    def _scheduler_for(self, hosts: int) -> Scheduler:
        if self.scheduler is not None:
            return self.scheduler
        forks = min(self.max_forks, hosts)
        if forks <= 1:
            return SerialScheduler()
        return ThreadedScheduler(max_workers=forks)

    def _gather_facts(self, host: Host) -> dict[str, Any]:
        """Gather facts, retrying unreachable hosts within the budget."""
        last: TransientError | None = None
        for _attempt in range(self.unreachable_retries + 1):
            try:
                return host.connection.facts()
            except TransientError as exc:
                last = exc
        assert last is not None
        raise last

    def run(self, playbook: Playbook) -> PlayRecap:
        """Run every play; stops a host's participation at its first
        unignored failure (remaining tasks count as skipped).

        A host that stays unreachable (facts gathering or any task op,
        after ``unreachable_retries`` retries) is *degraded* — dropped
        from the rest of the run without failing it — as long as at most
        ``max_host_failures`` hosts are lost; one more and the failure
        counts like any other.
        """
        stats: dict[str, HostStats] = {}
        task_log: list[tuple[str, str, TaskResult]] = []
        degraded: dict[str, str] = {}
        for play in playbook.plays:
            hosts = self.inventory.match(play.hosts)
            if not hosts:
                raise OrchestrationError(
                    f"play {play.name!r} matched no hosts ({play.hosts!r})"
                )
            host_vars: dict[str, dict[str, Any]] = {}
            for host in hosts:
                stats.setdefault(host.name, HostStats())
                if host.name in degraded:
                    continue
                merged = dict(self.extra_vars)
                merged.update(self.inventory.effective_vars(host))
                merged.update(play.vars)
                merged.update(self.extra_vars)  # extra vars win overall
                if play.gather_facts and host.connection is not None:
                    try:
                        merged["facts"] = self._gather_facts(host)
                    except TransientError as exc:
                        stats[host.name].unreachable += 1
                        if len(degraded) >= self.max_host_failures:
                            raise
                        degraded[host.name] = str(exc)
                        continue
                host_vars[host.name] = merged

            dead: set[str] = set(degraded)
            for task in play.tasks:
                alive = [h for h in hosts if h.name not in dead]
                if not alive:
                    break
                # One span per task across its host fan-out (tasks run in
                # lockstep, so the span's wall time is the barrier time).
                with current_tracer().span(
                    f"playbook/task/{task.name or task.module}",
                    module=task.module,
                    play=play.name,
                    hosts=len(alive),
                ) as task_span:
                    graph = TaskGraph()
                    for host in alive:
                        graph.add(
                            f"host/{host.name}",
                            (
                                lambda h: lambda ctx: self._run_task_on_host(
                                    task, h, host_vars[h.name]
                                )
                            )(host),
                        )
                    fanout = self._scheduler_for(len(alive)).run(graph)
                    # _run_task_on_host reports failures as TaskResults;
                    # an exception here is a runner bug, not a host fault.
                    fanout.raise_first_error()
                    failed_hosts = 0
                    for host in alive:
                        result = fanout.value(f"host/{host.name}")
                        task_log.append((task.name, host.name, result))
                        host_stats = stats[host.name]
                        if result.skipped:
                            host_stats.skipped += 1
                            continue
                        if result.failed and not task.ignore_errors:
                            if result.unreachable:
                                host_stats.unreachable += 1
                                if len(degraded) < self.max_host_failures:
                                    # Lost to infrastructure, within
                                    # budget: degrade, don't fail.
                                    degraded[host.name] = result.msg
                                    dead.add(host.name)
                                    continue
                            host_stats.failed += 1
                            failed_hosts += 1
                            dead.add(host.name)
                            continue
                        host_stats.ok += 1
                        if result.changed:
                            host_stats.changed += 1
                        if task.register:
                            host_vars[host.name][task.register] = {
                                "failed": result.failed,
                                "changed": result.changed,
                                "msg": result.msg,
                                **result.data,
                            }
                        if task.module == "set_fact":
                            host_vars[host.name].update(result.data)
                    task_span.attributes["failed_hosts"] = failed_hosts
        return PlayRecap(stats=stats, task_results=task_log, degraded=degraded)

    def _run_task_on_host(
        self, task: Task, host: Host, variables: dict[str, Any]
    ) -> TaskResult:
        if task.when is not None:
            try:
                condition = evaluate(task.when, variables)
            except OrchestrationError as exc:
                return TaskResult(failed=True, msg=f"when: {exc}")
            if not condition:
                return TaskResult(skipped=True)

        loop_items: list[Any] | None = None
        if task.loop is not None:
            rendered_loop = render_value(task.loop, variables)
            if not isinstance(rendered_loop, list):
                return TaskResult(
                    failed=True, msg=f"loop did not render to a list: {task.loop!r}"
                )
            loop_items = rendered_loop

        if host.connection is None:
            return TaskResult(failed=True, msg=f"{host.name}: no connection")

        def one(item: Any | None) -> TaskResult:
            local_vars = dict(variables)
            if item is not None:
                local_vars["item"] = item
            try:
                args = render_value(task.args, local_vars)
                if task.module == "assert":
                    # assertions evaluate their conditions as expressions
                    raw = task.args.get("that", [])
                    raw_list = raw if isinstance(raw, list) else [raw]
                    args = dict(args)
                    args["that"] = [evaluate(str(c), local_vars) for c in raw_list]
                return run_module(task.module, host.connection, args)
            except TransientError as exc:
                # The host, not the module, failed: flag it so the
                # runner can retry or degrade instead of hard-failing.
                return TaskResult(failed=True, unreachable=True, msg=str(exc))
            except OrchestrationError as exc:
                return TaskResult(failed=True, msg=str(exc))

        def with_retries(item: Any | None) -> TaskResult:
            result = one(item)
            retries_used = 0
            while result.failed:
                budget = task.retries
                if result.unreachable:
                    budget = max(budget, self.unreachable_retries)
                if retries_used >= budget:
                    break
                retries_used += 1
                result = one(item)
            return result

        if loop_items is None:
            return with_retries(None)

        merged = TaskResult()
        results = []
        for item in loop_items:
            result = with_retries(item)
            results.append(result)
            merged.changed = merged.changed or result.changed
            if result.failed:
                merged.failed = True
                merged.msg = result.msg
                break
        merged.data["results"] = [
            {"failed": r.failed, "changed": r.changed, **r.data} for r in results
        ]
        return merged
