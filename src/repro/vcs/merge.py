"""Merging: merge-base discovery, three-way content merge, branch merge.

Collaboration on a Popperized article needs exactly git's merge surface:
fast-forwards when a reviewer's branch simply extends ``main``, and
three-way merges (diff3-style, with conflict markers) when both sides
edited the experiment.  Conflicts never silently pick a side — the merge
raises with per-path details and leaves the repository untouched.
"""

from __future__ import annotations

from difflib import SequenceMatcher

from repro.common.errors import VcsError
from repro.vcs.store import ObjectStore

__all__ = ["MergeConflict", "merge_base", "merge_lines", "merge_blobs"]


class MergeConflict(VcsError):
    """Raised when a merge cannot be completed automatically."""

    def __init__(self, conflicts: dict[str, str]) -> None:
        self.conflicts = conflicts
        paths = ", ".join(sorted(conflicts))
        super().__init__(f"merge conflicts in: {paths}")


def merge_base(store: ObjectStore, a: str, b: str) -> str | None:
    """Nearest common ancestor of two commits (None for unrelated roots)."""
    ancestors_a: set[str] = set()
    frontier = [a]
    while frontier:
        oid = frontier.pop()
        if oid in ancestors_a:
            continue
        ancestors_a.add(oid)
        frontier.extend(store.get_commit(oid).parents)
    # BFS from b so the *nearest* common ancestor is found first.
    queue = [b]
    seen: set[str] = set()
    while queue:
        oid = queue.pop(0)
        if oid in seen:
            continue
        seen.add(oid)
        if oid in ancestors_a:
            return oid
        queue.extend(store.get_commit(oid).parents)
    return None


def _hunks(base: list[str], side: list[str]) -> list[tuple[int, int, list[str]]]:
    """Change hunks of *side* relative to *base*: (start, end, replacement)."""
    matcher = SequenceMatcher(None, base, side, autojunk=False)
    hunks = []
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag != "equal":
            hunks.append((i1, i2, side[j1:j2]))
    return hunks


def _apply(base: list[str], hunks: list[tuple[int, int, list[str]]], lo: int, hi: int) -> list[str]:
    """Render base[lo:hi] with the given (sorted, in-range) hunks applied."""
    out: list[str] = []
    cursor = lo
    for start, end, replacement in hunks:
        out.extend(base[cursor:start])
        out.extend(replacement)
        cursor = end
    out.extend(base[cursor:hi])
    return out


def merge_lines(
    base: list[str],
    ours: list[str],
    theirs: list[str],
    ours_label: str = "ours",
    theirs_label: str = "theirs",
) -> tuple[list[str], bool]:
    """diff3-style three-way merge; returns (lines, had_conflicts).

    Non-overlapping changes combine; overlapping identical changes
    deduplicate; overlapping different changes produce conflict markers.
    """
    ours_hunks = [(s, e, r, "ours") for s, e, r in _hunks(base, ours)]
    theirs_hunks = [(s, e, r, "theirs") for s, e, r in _hunks(base, theirs)]
    combined = sorted(
        ours_hunks + theirs_hunks, key=lambda h: (h[0], h[1])
    )

    merged: list[str] = []
    conflicted = False
    cursor = 0
    index = 0
    while index < len(combined):
        # Build a cluster of transitively-overlapping hunks.  Insertions
        # (start == end) only collide when both sides insert at the same
        # point.
        cluster = [combined[index]]
        cluster_end = max(combined[index][1], combined[index][0])
        next_index = index + 1
        while next_index < len(combined):
            start, end, _, _ = combined[next_index]
            if start < cluster_end or (start == cluster_end == combined[index][0] and start == end):
                cluster.append(combined[next_index])
                cluster_end = max(cluster_end, end, start)
                next_index += 1
            else:
                break
        lo = min(h[0] for h in cluster)
        hi = max(h[1] for h in cluster)
        merged.extend(base[cursor:lo])
        cursor = hi

        sides = {h[3] for h in cluster}
        ours_part = sorted(
            [(s, e, r) for s, e, r, side in cluster if side == "ours"]
        )
        theirs_part = sorted(
            [(s, e, r) for s, e, r, side in cluster if side == "theirs"]
        )
        if sides == {"ours"}:
            merged.extend(_apply(base, ours_part, lo, hi))
        elif sides == {"theirs"}:
            merged.extend(_apply(base, theirs_part, lo, hi))
        else:
            ours_render = _apply(base, ours_part, lo, hi)
            theirs_render = _apply(base, theirs_part, lo, hi)
            if ours_render == theirs_render:
                merged.extend(ours_render)
            else:
                conflicted = True
                merged.append(f"<<<<<<< {ours_label}\n")
                merged.extend(ours_render)
                merged.append("=======\n")
                merged.extend(theirs_render)
                merged.append(f">>>>>>> {theirs_label}\n")
        index = next_index
    merged.extend(base[cursor:])
    return merged, conflicted


def _split_keepends(data: bytes) -> list[str]:
    return data.decode("utf-8").splitlines(keepends=True)


def merge_blobs(
    store: ObjectStore,
    base_oid: str | None,
    ours_oid: str,
    theirs_oid: str,
    ours_label: str = "ours",
    theirs_label: str = "theirs",
) -> tuple[bytes, bool]:
    """Three-way merge of blob contents; returns (bytes, had_conflicts).

    Binary contents (undecodable) conflict unless identical.
    """
    ours = store.get_blob(ours_oid).data
    theirs = store.get_blob(theirs_oid).data
    if ours == theirs:
        return ours, False
    base = store.get_blob(base_oid).data if base_oid else b""
    try:
        merged, conflicted = merge_lines(
            _split_keepends(base),
            _split_keepends(ours),
            _split_keepends(theirs),
            ours_label=ours_label,
            theirs_label=theirs_label,
        )
    except UnicodeDecodeError:
        return ours, True
    return "".join(merged).encode("utf-8"), conflicted
