"""On-disk content-addressed object store (``.pvcs/objects/ab/cd...``).

Objects are immutable: a write of an existing id is a no-op, and reads
verify that the stored buffer still hashes to the id it was filed under
(bit-rot detection).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.common.errors import ObjectNotFound, VcsError
from repro.common.fsutil import atomic_write, ensure_dir
from repro.common.hashing import sha256_bytes
from repro.vcs.objects import AnyObject, Blob, Commit, Tag, Tree, deserialize, serialize

__all__ = ["ObjectStore"]


class ObjectStore:
    """Content-addressed storage rooted at a directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        ensure_dir(self.root)

    # -- paths ----------------------------------------------------------------
    def _path(self, oid: str) -> Path:
        if len(oid) != 64:
            raise VcsError(f"not a full object id: {oid!r}")
        return self.root / oid[:2] / oid[2:]

    # -- primitives -------------------------------------------------------------
    def put(self, obj: AnyObject) -> str:
        """Store an object; returns its id.  Idempotent."""
        oid, buffer = serialize(obj)
        path = self._path(oid)
        if not path.exists():
            atomic_write(path, buffer)
        return oid

    def get(self, oid: str) -> AnyObject:
        """Load and integrity-check the object with id *oid*."""
        path = self._path(oid)
        if not path.exists():
            raise ObjectNotFound(oid)
        buffer = path.read_bytes()
        if sha256_bytes(buffer) != oid:
            raise VcsError(f"object {oid[:12]} is corrupt on disk")
        return deserialize(buffer)

    def contains(self, oid: str) -> bool:
        """True if *oid* is stored."""
        try:
            return self._path(oid).exists()
        except VcsError:
            return False

    def __contains__(self, oid: str) -> bool:
        return self.contains(oid)

    def ids(self) -> Iterator[str]:
        """All stored object ids (unordered)."""
        if not self.root.exists():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for item in sorted(shard.iterdir()):
                yield shard.name + item.name

    def resolve_prefix(self, prefix: str) -> str:
        """Expand an abbreviated object id; errors if ambiguous/unknown."""
        if len(prefix) == 64:
            if not self.contains(prefix):
                raise ObjectNotFound(prefix)
            return prefix
        if len(prefix) < 4:
            raise VcsError(f"prefix too short: {prefix!r}")
        matches = [oid for oid in self.ids() if oid.startswith(prefix)]
        if not matches:
            raise ObjectNotFound(prefix)
        if len(matches) > 1:
            raise VcsError(f"ambiguous prefix {prefix!r}: {len(matches)} matches")
        return matches[0]

    # -- typed accessors ----------------------------------------------------------
    def get_blob(self, oid: str) -> Blob:
        obj = self.get(oid)
        if not isinstance(obj, Blob):
            raise VcsError(f"{oid[:12]} is a {obj.kind}, expected blob")
        return obj

    def get_tree(self, oid: str) -> Tree:
        obj = self.get(oid)
        if not isinstance(obj, Tree):
            raise VcsError(f"{oid[:12]} is a {obj.kind}, expected tree")
        return obj

    def get_commit(self, oid: str) -> Commit:
        obj = self.get(oid)
        if not isinstance(obj, Commit):
            raise VcsError(f"{oid[:12]} is a {obj.kind}, expected commit")
        return obj

    def get_tag(self, oid: str) -> Tag:
        obj = self.get(oid)
        if not isinstance(obj, Tag):
            raise VcsError(f"{oid[:12]} is a {obj.kind}, expected tag")
        return obj

    # -- tree walking ------------------------------------------------------------
    def walk_tree(self, tree_oid: str, prefix: str = "") -> Iterator[tuple[str, str]]:
        """Yield ``(path, blob-oid)`` for every file under a tree, sorted."""
        tree = self.get_tree(tree_oid)
        for entry in tree.entries:
            path = f"{prefix}{entry.name}"
            if entry.is_dir:
                yield from self.walk_tree(entry.oid, path + "/")
            else:
                yield path, entry.oid

    def read_path(self, tree_oid: str, path: str) -> bytes:
        """Contents of the file at *path* inside the tree *tree_oid*."""
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise VcsError("empty path")
        current = tree_oid
        for i, part in enumerate(parts):
            tree = self.get_tree(current)
            entry = tree.lookup(part)
            if entry is None:
                raise ObjectNotFound(f"{path} (missing {part!r})")
            if i == len(parts) - 1:
                if entry.is_dir:
                    raise VcsError(f"{path} is a directory")
                return self.get_blob(entry.oid).data
            if not entry.is_dir:
                raise VcsError(f"{'/'.join(parts[:i + 1])} is not a directory")
            current = entry.oid
        raise AssertionError("unreachable")
