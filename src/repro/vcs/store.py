"""VCS object store: a typed façade over the shared content pool.

The sharded layout, atomic/idempotent writes and read-time integrity
checks live in :class:`repro.store.cas.ContentStore`; this module adds
what the VCS layer needs on top — (de)serialization of typed objects,
prefix resolution, tree walking — and maps the storage-layer errors
onto the VCS exception family.  A corrupt object is quarantined by the
pool (``.pvcs/quarantine/``) before the error surfaces, so ``popper
cache verify`` and :meth:`~repro.vcs.repository.Repository.fsck` can
report it with referrers instead of tripping over it forever.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.common.errors import (
    CorruptObjectError,
    MissingObjectError,
    ObjectNotFound,
    StoreError,
    VcsError,
)
from repro.common.fsutil import atomic_write
from repro.store.cas import ContentStore
from repro.vcs.objects import AnyObject, Blob, Commit, Tag, Tree, deserialize, serialize

__all__ = ["ObjectStore"]


class ObjectStore:
    """Content-addressed storage rooted at a directory."""

    def __init__(
        self, root: str | Path, quarantine_dir: str | Path | None = None
    ) -> None:
        self.root = Path(root)
        self.cas = ContentStore(
            self.root,
            quarantine_dir=(
                Path(quarantine_dir)
                if quarantine_dir is not None
                else self.root / "quarantine"
            ),
        )

    # -- paths ----------------------------------------------------------------
    def _path(self, oid: str) -> Path:
        try:
            return self.cas.object_path(oid)
        except StoreError as exc:
            raise VcsError(str(exc)) from exc

    # -- primitives -------------------------------------------------------------
    def put(self, obj: AnyObject) -> str:
        """Store an object; returns its id.  Idempotent (dedupes)."""
        oid, buffer = serialize(obj)
        self.cas.put_bytes(buffer)
        return oid

    def get(self, oid: str) -> AnyObject:
        """Load and integrity-check the object with id *oid*.

        A failed integrity check quarantines the object and raises
        :class:`VcsError`; a later re-add of the same content heals the
        pool (same id, same path).
        """
        try:
            buffer = self.cas.get_bytes(oid)
        except MissingObjectError as exc:
            raise ObjectNotFound(oid) from exc
        except StoreError as exc:
            # CorruptObjectError lands here too; the message carries
            # "corrupt" plus the quarantine location.
            raise VcsError(str(exc)) from exc
        return deserialize(buffer)

    def contains(self, oid: str) -> bool:
        """True if *oid* is stored."""
        return self.cas.contains(oid)

    def __contains__(self, oid: str) -> bool:
        return self.contains(oid)

    def ids(self) -> Iterator[str]:
        """All stored object ids (sorted)."""
        yield from self.cas.ids()

    def quarantined(self) -> list[str]:
        """Object ids moved aside by a failed integrity check."""
        return self.cas.quarantined()

    def resolve_prefix(self, prefix: str) -> str:
        """Expand an abbreviated object id; errors if ambiguous/unknown."""
        if len(prefix) == 64:
            if not self.contains(prefix):
                raise ObjectNotFound(prefix)
            return prefix
        if len(prefix) < 4:
            raise VcsError(f"prefix too short: {prefix!r}")
        matches = [oid for oid in self.ids() if oid.startswith(prefix)]
        if not matches:
            raise ObjectNotFound(prefix)
        if len(matches) > 1:
            raise VcsError(f"ambiguous prefix {prefix!r}: {len(matches)} matches")
        return matches[0]

    # -- typed accessors ----------------------------------------------------------
    def get_blob(self, oid: str) -> Blob:
        obj = self.get(oid)
        if not isinstance(obj, Blob):
            raise VcsError(f"{oid[:12]} is a {obj.kind}, expected blob")
        return obj

    def get_tree(self, oid: str) -> Tree:
        obj = self.get(oid)
        if not isinstance(obj, Tree):
            raise VcsError(f"{oid[:12]} is a {obj.kind}, expected tree")
        return obj

    def get_commit(self, oid: str) -> Commit:
        obj = self.get(oid)
        if not isinstance(obj, Commit):
            raise VcsError(f"{oid[:12]} is a {obj.kind}, expected commit")
        return obj

    def get_tag(self, oid: str) -> Tag:
        obj = self.get(oid)
        if not isinstance(obj, Tag):
            raise VcsError(f"{oid[:12]} is a {obj.kind}, expected tag")
        return obj

    # -- tree walking ------------------------------------------------------------
    def walk_tree(self, tree_oid: str, prefix: str = "") -> Iterator[tuple[str, str]]:
        """Yield ``(path, blob-oid)`` for every file under a tree, sorted."""
        tree = self.get_tree(tree_oid)
        for entry in tree.entries:
            path = f"{prefix}{entry.name}"
            if entry.is_dir:
                yield from self.walk_tree(entry.oid, path + "/")
            else:
                yield path, entry.oid

    def read_path(self, tree_oid: str, path: str) -> bytes:
        """Contents of the file at *path* inside the tree *tree_oid*."""
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise VcsError("empty path")
        current = tree_oid
        for i, part in enumerate(parts):
            tree = self.get_tree(current)
            entry = tree.lookup(part)
            if entry is None:
                raise ObjectNotFound(f"{path} (missing {part!r})")
            if i == len(parts) - 1:
                if entry.is_dir:
                    raise VcsError(f"{path} is a directory")
                return self.get_blob(entry.oid).data
            if not entry.is_dir:
                raise VcsError(f"{'/'.join(parts[:i + 1])} is not a directory")
            current = entry.oid
        raise AssertionError("unreachable")

    def checkout_tree(self, tree_oid: str, dest: str | Path) -> int:
        """Write every file under a tree into *dest*; returns bytes written.

        The one materialization path shared by working-copy checkouts
        and CI job workspaces — payloads come out of the pool verified,
        and each file lands atomically.
        """
        written = 0
        dest = Path(dest)
        for path, blob_oid in self.walk_tree(tree_oid):
            data = self.get_blob(blob_oid).data
            # Checkouts are rebuildable from the pool, so skip the
            # per-file fsync tax — durability matters for the metadata
            # that *references* content, not the scratch materialization.
            atomic_write(dest / path, data, durable=False)
            written += len(data)
        return written
