"""Reference management: branches, tags and HEAD.

Refs live under ``.pvcs/refs/heads/<branch>`` and ``.pvcs/refs/tags/<tag>``;
``HEAD`` is either symbolic (``ref: refs/heads/main``) or detached (a raw
object id), matching git's model closely enough that users' intuitions
carry over.

Ref updates are the repository's commit points — losing one un-does a
commit the user was told succeeded — so every write goes through
:func:`~repro.common.fsutil.atomic_write` with durability on, under the
repository-wide ``refs`` :class:`~repro.common.locking.ScopedLock` so
two processes committing into one repo serialize their updates.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.common.crash import crashpoint
from repro.common.errors import VcsError
from repro.common.fsutil import atomic_write, ensure_dir
from repro.common.locking import ScopedLock

__all__ = ["RefStore"]

_REF_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._/\-]*$")


def _check_name(name: str) -> str:
    if not _REF_NAME.match(name) or ".." in name or name.endswith("/"):
        raise VcsError(f"illegal ref name: {name!r}")
    return name


class RefStore:
    """Branch/tag/HEAD bookkeeping rooted at the repository metadata dir."""

    def __init__(self, meta_dir: str | Path) -> None:
        self.meta = Path(meta_dir)
        self.lock = ScopedLock(self.meta, "refs")
        ensure_dir(self.meta / "refs" / "heads")
        ensure_dir(self.meta / "refs" / "tags")

    def _write_ref(self, path: Path, content: str) -> None:
        """Publish one ref durably and atomically, under the refs lock."""
        with self.lock:
            crashpoint("refs.update")
            atomic_write(path, content.encode("utf-8"))

    # -- HEAD -----------------------------------------------------------------
    @property
    def head_path(self) -> Path:
        return self.meta / "HEAD"

    def set_head_branch(self, branch: str) -> None:
        """Point HEAD symbolically at a branch."""
        _check_name(branch)
        self._write_ref(self.head_path, f"ref: refs/heads/{branch}\n")

    def set_head_detached(self, oid: str) -> None:
        """Detach HEAD onto a raw object id."""
        self._write_ref(self.head_path, oid + "\n")

    def head(self) -> tuple[str | None, str | None]:
        """Return ``(branch-name, commit-oid)``.

        The branch name is None when detached; the oid is None on an
        unborn branch (no commits yet).
        """
        if not self.head_path.exists():
            raise VcsError("repository has no HEAD")
        content = self.head_path.read_text(encoding="utf-8").strip()
        if content.startswith("ref: "):
            ref = content[len("ref: "):]
            if not ref.startswith("refs/heads/"):
                raise VcsError(f"HEAD points outside refs/heads: {ref!r}")
            branch = ref[len("refs/heads/"):]
            return branch, self.read_branch(branch)
        return None, content

    # -- branches --------------------------------------------------------------
    def _branch_path(self, name: str) -> Path:
        return self.meta / "refs" / "heads" / _check_name(name)

    def write_branch(self, name: str, oid: str) -> None:
        self._write_ref(self._branch_path(name), oid + "\n")

    def read_branch(self, name: str) -> str | None:
        path = self._branch_path(name)
        if not path.exists():
            return None
        return path.read_text(encoding="utf-8").strip()

    def delete_branch(self, name: str) -> None:
        path = self._branch_path(name)
        if not path.exists():
            raise VcsError(f"no such branch: {name!r}")
        head_branch, _ = self.head()
        if head_branch == name:
            raise VcsError(f"cannot delete the checked-out branch {name!r}")
        path.unlink()

    def branches(self) -> list[str]:
        root = self.meta / "refs" / "heads"
        out = []
        for path in sorted(root.rglob("*")):
            if path.is_file():
                out.append(str(path.relative_to(root)))
        return out

    # -- tags -------------------------------------------------------------------
    def _tag_path(self, name: str) -> Path:
        return self.meta / "refs" / "tags" / _check_name(name)

    def write_tag(self, name: str, oid: str) -> None:
        path = self._tag_path(name)
        with self.lock:
            if path.exists():
                raise VcsError(f"tag already exists: {name!r}")
            crashpoint("refs.update")
            atomic_write(path, (oid + "\n").encode("utf-8"))

    def read_tag(self, name: str) -> str | None:
        path = self._tag_path(name)
        if not path.exists():
            return None
        return path.read_text(encoding="utf-8").strip()

    def tags(self) -> list[str]:
        root = self.meta / "refs" / "tags"
        out = []
        for path in sorted(root.rglob("*")):
            if path.is_file():
                out.append(str(path.relative_to(root)))
        return out
