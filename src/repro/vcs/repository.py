"""High-level repository porcelain: init, add, commit, branch, tag,
checkout, log, status, diff and clone.

This is the version-control substrate the Popper convention sits on.  A
repository is a working directory plus a ``.pvcs`` metadata directory
(object store, refs, index, a logical commit clock).  The command surface
deliberately mirrors git so that a "Popperized" paper repository behaves
the way the paper describes, with none of git's host dependencies.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.common.errors import ObjectNotFound, VcsError
from repro.common.fsutil import ensure_dir
from repro.vcs.diff import Change, diff_commits, tree_changes
from repro.vcs.index import Index
from repro.vcs.objects import MODE_EXEC, MODE_FILE, Blob, Commit, Tag
from repro.vcs.refs import RefStore
from repro.vcs.store import ObjectStore

__all__ = ["Repository", "LogEntry", "Status"]

META_DIR = ".pvcs"
DEFAULT_BRANCH = "main"
DEFAULT_AUTHOR = "popper <popper@localhost>"


@dataclass(frozen=True)
class LogEntry:
    """One line of ``log`` output."""

    oid: str
    author: str
    timestamp: int
    message: str

    @property
    def subject(self) -> str:
        return self.message.splitlines()[0] if self.message else ""


@dataclass(frozen=True)
class Status:
    """Working-tree status relative to HEAD and the index."""

    staged: list[Change]
    modified: list[str]
    deleted: list[str]
    untracked: list[str]

    @property
    def clean(self) -> bool:
        return not (self.staged or self.modified or self.deleted or self.untracked)


class Repository:
    """A working tree under version control."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).resolve()
        self.meta = self.root / META_DIR
        if not self.meta.is_dir():
            raise VcsError(f"not a repository: {self.root}")
        self.store = ObjectStore(
            self.meta / "objects", quarantine_dir=self.meta / "quarantine"
        )
        self.refs = RefStore(self.meta)
        self.index = Index(self.meta / "index")

    # -- lifecycle ---------------------------------------------------------------
    @classmethod
    def init(cls, root: str | Path, branch: str = DEFAULT_BRANCH) -> "Repository":
        """Create a new repository at *root* (which may already have files)."""
        root = Path(root).resolve()
        meta = root / META_DIR
        if meta.exists():
            raise VcsError(f"repository already exists: {root}")
        ensure_dir(meta / "objects")
        refs = RefStore(meta)
        refs.set_head_branch(branch)
        (meta / "clock").write_text("0\n", encoding="utf-8")
        (meta / "index").write_text("", encoding="utf-8")
        return cls(root)

    @classmethod
    def open(cls, root: str | Path) -> "Repository":
        """Open an existing repository at *root* or any parent of it."""
        current = Path(root).resolve()
        for candidate in [current, *current.parents]:
            if (candidate / META_DIR).is_dir():
                return cls(candidate)
        raise VcsError(f"no repository found at or above {root}")

    @classmethod
    def is_repository(cls, root: str | Path) -> bool:
        """True when *root* itself is a repository working-tree root."""
        return (Path(root) / META_DIR).is_dir()

    # -- clock -------------------------------------------------------------------
    def _tick(self) -> int:
        path = self.meta / "clock"
        value = int(path.read_text(encoding="utf-8").strip() or "0") + 1
        path.write_text(f"{value}\n", encoding="utf-8")
        return value

    # -- path plumbing -------------------------------------------------------------
    def _rel(self, path: str | Path) -> str:
        absolute = (self.root / path).resolve() if not Path(path).is_absolute() else Path(path).resolve()
        try:
            rel = absolute.relative_to(self.root)
        except ValueError as exc:
            raise VcsError(f"path outside repository: {path}") from exc
        rel_str = rel.as_posix()
        if rel_str.split("/")[0] == META_DIR:
            raise VcsError(f"cannot track repository metadata: {path}")
        return rel_str

    def _iter_workdir(self) -> Iterator[str]:
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = sorted(d for d in dirnames if d != META_DIR)
            for name in sorted(filenames):
                yield (Path(dirpath) / name).relative_to(self.root).as_posix()

    # -- staging ------------------------------------------------------------------
    def add(self, *paths: str | Path) -> list[str]:
        """Stage files (or directory subtrees); returns the staged paths."""
        staged: list[str] = []
        for path in paths:
            absolute = self.root / path
            if absolute.is_dir():
                targets = [
                    rel for rel in self._iter_workdir()
                    if rel == self._rel(path) or rel.startswith(self._rel(path) + "/")
                ]
                if not targets:
                    continue
            elif absolute.is_file():
                targets = [self._rel(path)]
            else:
                raise VcsError(f"pathspec did not match any file: {path}")
            for rel in targets:
                data = (self.root / rel).read_bytes()
                oid = self.store.put(Blob(data))
                mode = (
                    MODE_EXEC
                    if os.access(self.root / rel, os.X_OK)
                    else MODE_FILE
                )
                self.index.stage(rel, oid, mode)
                staged.append(rel)
        self.index.save()
        return staged

    def add_all(self) -> list[str]:
        """Stage every file in the working tree and drop deleted ones."""
        present = set(self._iter_workdir())
        for rel in list(self.index.entries):
            if rel not in present:
                self.index.unstage(rel)
        staged = self.add(*sorted(present)) if present else []
        self.index.save()
        return staged

    def rm(self, *paths: str | Path, keep_workdir: bool = False) -> None:
        """Unstage files and (by default) remove them from the working tree."""
        for path in paths:
            rel = self._rel(path)
            self.index.unstage(rel)
            if not keep_workdir and (self.root / rel).exists():
                (self.root / rel).unlink()
        self.index.save()

    # -- committing ----------------------------------------------------------------
    def commit(self, message: str, author: str = DEFAULT_AUTHOR) -> str:
        """Commit the staged snapshot; returns the new commit id."""
        if not message.strip():
            raise VcsError("refusing an empty commit message")
        branch, head_oid = self.refs.head()
        tree_oid = self.index.build_tree(self.store)
        if head_oid is not None:
            head_commit = self.store.get_commit(head_oid)
            if head_commit.tree == tree_oid:
                raise VcsError("nothing to commit (tree unchanged)")
        commit = Commit(
            tree=tree_oid,
            parents=(head_oid,) if head_oid else (),
            author=author,
            message=message,
            timestamp=self._tick(),
        )
        oid = self.store.put(commit)
        if branch is not None:
            self.refs.write_branch(branch, oid)
        else:
            self.refs.set_head_detached(oid)
        return oid

    # -- history --------------------------------------------------------------------
    def head_commit(self) -> str | None:
        """Commit id HEAD points at (None on an unborn branch)."""
        _, oid = self.refs.head()
        return oid

    def log(self, ref: str = "HEAD", limit: int | None = None) -> list[LogEntry]:
        """First-parent history from *ref*, newest first."""
        try:
            oid: str | None = self.resolve(ref)
        except VcsError:
            if ref == "HEAD":
                return []
            raise
        entries: list[LogEntry] = []
        while oid is not None:
            commit = self.store.get_commit(oid)
            entries.append(
                LogEntry(
                    oid=oid,
                    author=commit.author,
                    timestamp=commit.timestamp,
                    message=commit.message,
                )
            )
            if limit is not None and len(entries) >= limit:
                break
            oid = commit.parents[0] if commit.parents else None
        return entries

    def commits_between(self, old: str, new: str = "HEAD") -> list[str]:
        """First-parent commit ids from *old* (exclusive) to *new* (inclusive).

        Returned oldest-first — the natural axis for a performance
        history walk.  Raises :class:`VcsError` when *old* is not an
        ancestor of *new* on the first-parent chain (the range is then
        not a line and a profile comparison over it is meaningless).
        """
        old_oid = self.resolve(old)
        new_oid = self.resolve(new)
        if old_oid == new_oid:
            return []
        span: list[str] = []
        oid: str | None = new_oid
        while oid is not None:
            if oid == old_oid:
                return list(reversed(span))
            span.append(oid)
            commit = self.store.get_commit(oid)
            oid = commit.parents[0] if commit.parents else None
        raise VcsError(
            f"{old!r} is not a first-parent ancestor of {new!r}"
        )

    def resolve(self, ref: str) -> str:
        """Resolve HEAD / branch / tag / oid-prefix to a commit id."""
        if ref == "HEAD":
            _, oid = self.refs.head()
            if oid is None:
                raise VcsError("HEAD is unborn (no commits yet)")
            return oid
        branch_oid = self.refs.read_branch(ref)
        if branch_oid is not None:
            return branch_oid
        tag_oid = self.refs.read_tag(ref)
        if tag_oid is not None:
            obj = self.store.get(tag_oid)
            if isinstance(obj, Tag):
                return obj.target
            return tag_oid
        return self.store.resolve_prefix(ref)

    # -- branches and tags -------------------------------------------------------------
    def branch(self, name: str, at: str = "HEAD") -> None:
        """Create branch *name* pointing at *at*."""
        if self.refs.read_branch(name) is not None:
            raise VcsError(f"branch already exists: {name!r}")
        self.refs.write_branch(name, self.resolve(at))

    def tag(self, name: str, at: str = "HEAD", message: str = "") -> str:
        """Create an annotated tag; returns the tag object id."""
        target = self.resolve(at)
        tag_oid = self.store.put(Tag(target=target, name=name, message=message))
        self.refs.write_tag(name, tag_oid)
        return tag_oid

    # -- checkout ------------------------------------------------------------------------
    def checkout(self, ref: str) -> None:
        """Make the working tree and index match *ref*.

        Refuses to run over uncommitted modifications so experiment state
        can never be silently destroyed.
        """
        status = self.status()
        if status.modified or status.deleted or status.staged:
            raise VcsError(
                "working tree has uncommitted changes; commit before checkout"
            )
        self._materialize(ref)

    def _materialize(self, ref: str) -> None:
        """Checkout without the dirty-tree safety check (clone bootstrap)."""
        target_oid = self.resolve(ref)
        commit = self.store.get_commit(target_oid)
        new_entries = Index.entries_from_tree(self.store, commit.tree)
        # Remove tracked files that vanish in the target snapshot.
        for rel in self.index.entries:
            if rel not in new_entries:
                victim = self.root / rel
                if victim.exists():
                    victim.unlink()
        # Materialize target contents.
        for rel, (oid, mode) in new_entries.items():
            blob = self.store.get_blob(oid)
            target = self.root / rel
            ensure_dir(target.parent)
            target.write_bytes(blob.data)
            if mode == MODE_EXEC:
                target.chmod(target.stat().st_mode | 0o111)
        self.index.replace_all(new_entries)
        self.index.save()
        if self.refs.read_branch(ref) is not None:
            self.refs.set_head_branch(ref)
        else:
            self.refs.set_head_detached(target_oid)

    # -- status / diff --------------------------------------------------------------------
    def status(self) -> Status:
        """Classify every path as staged / modified / deleted / untracked."""
        head_oid = self.head_commit()
        head_tree = self.store.get_commit(head_oid).tree if head_oid else None
        head_entries = (
            Index.entries_from_tree(self.store, head_tree) if head_tree else {}
        )

        staged: list[Change] = []
        for change in tree_changes(
            self.store, head_tree, self.index.build_tree(self.store)
        ):
            staged.append(change)

        modified: list[str] = []
        deleted: list[str] = []
        untracked: list[str] = []
        workdir = set(self._iter_workdir())
        for rel in sorted(workdir | set(self.index.entries)):
            if rel not in self.index.entries:
                untracked.append(rel)
                continue
            if rel not in workdir:
                deleted.append(rel)
                continue
            data = (self.root / rel).read_bytes()
            oid, _ = self.index.entries[rel]
            from repro.vcs.objects import serialize

            current_oid, _buf = serialize(Blob(data))
            if current_oid != oid:
                modified.append(rel)
        _ = head_entries  # head snapshot is folded into `staged` above
        return Status(
            staged=staged,
            modified=modified,
            deleted=deleted,
            untracked=untracked,
        )

    def diff(self, old_ref: str | None, new_ref: str = "HEAD") -> str:
        """Unified diff between two refs."""
        old_oid = self.resolve(old_ref) if old_ref else None
        new_oid = self.resolve(new_ref)
        return diff_commits(self.store, old_oid, new_oid)

    def cat(self, ref: str, path: str) -> bytes:
        """File contents at *path* as of commit *ref*."""
        commit = self.store.get_commit(self.resolve(ref))
        return self.store.read_path(commit.tree, path)

    def ls(self, ref: str = "HEAD") -> list[str]:
        """Tracked file paths as of commit *ref*, sorted."""
        commit = self.store.get_commit(self.resolve(ref))
        return sorted(path for path, _ in self.store.walk_tree(commit.tree))

    # -- merging -------------------------------------------------------------------------------
    def merge(self, ref: str, author: str = DEFAULT_AUTHOR) -> str:
        """Merge *ref* into the current branch.

        Fast-forwards when possible; otherwise performs a three-way
        content merge and creates a two-parent merge commit.  Conflicts
        raise :class:`~repro.vcs.merge.MergeConflict` (with per-path
        conflict-marked previews) and leave the repository untouched.
        Returns the resulting HEAD commit id.
        """
        from repro.vcs.merge import MergeConflict, merge_base, merge_blobs

        status = self.status()
        if not status.clean:
            raise VcsError("working tree not clean; commit before merging")
        branch, ours = self.refs.head()
        theirs = self.resolve(ref)
        if ours is None:
            raise VcsError("cannot merge into an unborn branch")
        if ours == theirs:
            return ours
        base = merge_base(self.store, ours, theirs)
        if base == theirs:
            return ours  # already up to date
        if base == ours:
            # fast-forward
            if branch is not None:
                self.refs.write_branch(branch, theirs)
                self._materialize(branch)
            else:
                self._materialize(theirs)
            return theirs

        ours_commit = self.store.get_commit(ours)
        theirs_commit = self.store.get_commit(theirs)
        base_tree = self.store.get_commit(base).tree if base else None
        base_files = dict(self.store.walk_tree(base_tree)) if base_tree else {}
        ours_files = dict(self.store.walk_tree(ours_commit.tree))
        theirs_files = dict(self.store.walk_tree(theirs_commit.tree))

        merged: dict[str, str] = {}  # path -> blob oid
        conflicts: dict[str, str] = {}
        for path in sorted(set(base_files) | set(ours_files) | set(theirs_files)):
            base_oid = base_files.get(path)
            ours_oid = ours_files.get(path)
            theirs_oid = theirs_files.get(path)
            if ours_oid == theirs_oid:
                if ours_oid is not None:
                    merged[path] = ours_oid
                continue
            if ours_oid == base_oid:
                # only theirs changed (modify or delete)
                if theirs_oid is not None:
                    merged[path] = theirs_oid
                continue
            if theirs_oid == base_oid:
                if ours_oid is not None:
                    merged[path] = ours_oid
                continue
            # both sides changed differently
            if ours_oid is None or theirs_oid is None:
                conflicts[path] = "delete/modify conflict"
                continue
            data, conflicted = merge_blobs(
                self.store, base_oid, ours_oid, theirs_oid,
                ours_label=branch or "HEAD", theirs_label=ref,
            )
            if conflicted:
                conflicts[path] = data.decode("utf-8", errors="replace")
            else:
                merged[path] = self.store.put(Blob(data))
        if conflicts:
            raise MergeConflict(conflicts)

        # Build the merged tree via a scratch index.
        scratch = Index(self.meta / "index.merge")
        for path, oid in merged.items():
            scratch.stage(path, oid)
        tree_oid = scratch.build_tree(self.store)
        (self.meta / "index.merge").unlink(missing_ok=True)
        commit = Commit(
            tree=tree_oid,
            parents=(ours, theirs),
            author=author,
            message=f"merge {ref} into {branch or 'HEAD'}",
            timestamp=self._tick(),
        )
        merge_oid = self.store.put(commit)
        if branch is not None:
            self.refs.write_branch(branch, merge_oid)
            self._materialize(branch)
        else:
            self._materialize(merge_oid)
        return merge_oid

    # -- clone ---------------------------------------------------------------------------------
    def clone(self, destination: str | Path) -> "Repository":
        """Copy history into a fresh repository and check out HEAD."""
        destination = Path(destination)
        if destination.exists() and any(destination.iterdir()):
            raise VcsError(f"clone destination not empty: {destination}")
        branch, head_oid = self.refs.head()
        other = Repository.init(destination, branch=branch or DEFAULT_BRANCH)
        for oid in self.store.ids():
            obj = self.store.get(oid)
            other.store.put(obj)
        for name in self.refs.branches():
            value = self.refs.read_branch(name)
            if value:
                other.refs.write_branch(name, value)
        for name in self.refs.tags():
            value = self.refs.read_tag(name)
            if value:
                other.refs.write_tag(name, value)
        if head_oid is not None:
            if branch is not None:
                other.refs.set_head_branch(branch)
                other._materialize(branch)
            else:
                other._materialize(head_oid)
        return other

    # -- integrity ---------------------------------------------------------------------------------
    def fsck(self) -> list[str]:
        """Verify every object; returns the ids that fail (empty == healthy).

        Failing objects are quarantined by the pool as they are found
        (the ids list is snapshotted first, since quarantining renames
        files out from under the shard iteration).
        """
        bad: list[str] = []
        for oid in list(self.store.ids()):
            try:
                self.store.get(oid)
            except VcsError:
                bad.append(oid)
            except ObjectNotFound:  # pragma: no cover - races only
                bad.append(oid)
        return bad

    def referrers(self, oids: set[str]) -> dict[str, list[str]]:
        """Which commits (by subject) reach each of *oids*.

        Walks every branch's history and each commit's tree; unreadable
        (e.g. quarantined) trees are skipped — the commit that names
        them directly is still reported.
        """
        found: dict[str, list[str]] = {oid: [] for oid in oids}
        if not oids:
            return found

        def tree_oids(tree_oid: str) -> set[str]:
            reached = {tree_oid}
            try:
                tree = self.store.get_tree(tree_oid)
            except (VcsError, ObjectNotFound):
                return reached
            for entry in tree.entries:
                if entry.is_dir:
                    reached |= tree_oids(entry.oid)
                else:
                    reached.add(entry.oid)
            return reached

        for branch in self.refs.branches():
            oid = self.refs.read_branch(branch)
            seen: set[str] = set()
            while oid and oid not in seen:
                seen.add(oid)
                try:
                    commit = self.store.get_commit(oid)
                except (VcsError, ObjectNotFound):
                    if oid in found:
                        found[oid].append(f"{branch} (unreadable commit)")
                    break
                subject = commit.message.splitlines()[0] if commit.message else ""
                reached = {oid} | tree_oids(commit.tree)
                label = f"{branch}@{oid[:12]} ({subject})"
                for target in oids & reached:
                    found[target].append(label)
                oid = commit.parents[0] if commit.parents else None
        return found
