"""The staging area: a flat mapping from repo-relative path to blob id.

``add`` snapshots working-tree files into the object store and records
them here; ``commit`` turns the index into a nested tree.  The index is
persisted as a sorted text file so that repository state is diffable and
deterministic.
"""

from __future__ import annotations

from pathlib import Path

from repro.common.errors import VcsError
from repro.vcs.objects import MODE_DIR, MODE_EXEC, MODE_FILE, Tree, TreeEntry
from repro.vcs.store import ObjectStore

__all__ = ["Index"]


def _check_rel_path(path: str) -> str:
    parts = path.split("/")
    if not path or path.startswith("/") or any(p in ("", ".", "..") for p in parts):
        raise VcsError(f"illegal repository path: {path!r}")
    return path


class Index:
    """Staged snapshot of the next commit's file set."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.entries: dict[str, tuple[str, str]] = {}  # path -> (oid, mode)
        if self.path.exists():
            self._load()

    # -- persistence -------------------------------------------------------------
    def _load(self) -> None:
        self.entries.clear()
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                mode, oid, rel = line.split(" ", 2)
            except ValueError as exc:
                raise VcsError(f"corrupt index line: {line!r}") from exc
            self.entries[rel] = (oid, mode)

    def save(self) -> None:
        lines = [
            f"{mode} {oid} {rel}"
            for rel, (oid, mode) in sorted(self.entries.items())
        ]
        self.path.write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
        )

    # -- mutation ------------------------------------------------------------------
    def stage(self, rel_path: str, oid: str, mode: str = MODE_FILE) -> None:
        """Record *rel_path* as pointing at blob *oid*."""
        _check_rel_path(rel_path)
        if mode not in (MODE_FILE, MODE_EXEC):
            raise VcsError(f"cannot stage mode {mode!r}")
        self.entries[rel_path] = (oid, mode)

    def unstage(self, rel_path: str) -> None:
        """Drop *rel_path* from the staged snapshot."""
        if rel_path not in self.entries:
            raise VcsError(f"path not staged: {rel_path!r}")
        del self.entries[rel_path]

    def clear(self) -> None:
        self.entries.clear()

    def replace_all(self, entries: dict[str, tuple[str, str]]) -> None:
        """Reset the index to exactly *entries* (used by checkout)."""
        self.entries = dict(entries)

    # -- tree building -----------------------------------------------------------------
    def build_tree(self, store: ObjectStore) -> str:
        """Write the staged snapshot as nested tree objects; returns root id."""
        root: dict = {}
        for rel, (oid, mode) in self.entries.items():
            parts = rel.split("/")
            node = root
            for part in parts[:-1]:
                child = node.setdefault(part, {})
                if not isinstance(child, dict):
                    raise VcsError(
                        f"path conflict: {part!r} is both a file and a directory"
                    )
                node = child
            if parts[-1] in node and isinstance(node[parts[-1]], dict):
                raise VcsError(
                    f"path conflict: {parts[-1]!r} is both a file and a directory"
                )
            node[parts[-1]] = (oid, mode)

        def write(node: dict) -> str:
            entries = []
            for name, value in sorted(node.items()):
                if isinstance(value, dict):
                    entries.append(
                        TreeEntry(name=name, oid=write(value), mode=MODE_DIR)
                    )
                else:
                    oid, mode = value
                    entries.append(TreeEntry(name=name, oid=oid, mode=mode))
            return store.put(Tree(tuple(entries)))

        return write(root)

    @classmethod
    def entries_from_tree(
        cls, store: ObjectStore, tree_oid: str
    ) -> dict[str, tuple[str, str]]:
        """Flatten a tree into index-shaped entries."""
        out: dict[str, tuple[str, str]] = {}

        def walk(oid: str, prefix: str) -> None:
            tree = store.get_tree(oid)
            for entry in tree.entries:
                path = prefix + entry.name
                if entry.is_dir:
                    walk(entry.oid, path + "/")
                else:
                    out[path] = (entry.oid, entry.mode)

        walk(tree_oid, "")
        return out
