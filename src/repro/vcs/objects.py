"""Content-addressed object model: blobs, trees, commits and tags.

The on-wire format mirrors git's: every object serializes to
``<type> <size>\\0<payload>`` and is addressed by the SHA-256 of that
buffer.  Trees hold sorted ``(mode, name, object-id)`` entries; commits
reference one tree, any number of parents, an author, a logical
timestamp and a message.  Logical timestamps (a per-repository commit
counter) keep histories bit-for-bit reproducible, which real wall-clock
stamps would break.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import VcsError
from repro.common.hashing import sha256_bytes

__all__ = ["Blob", "TreeEntry", "Tree", "Commit", "Tag", "serialize", "deserialize"]

MODE_FILE = "100644"
MODE_EXEC = "100755"
MODE_DIR = "040000"

_VALID_MODES = {MODE_FILE, MODE_EXEC, MODE_DIR}


@dataclass(frozen=True)
class Blob:
    """An immutable file payload."""

    data: bytes

    kind = "blob"

    def payload(self) -> bytes:
        return self.data


@dataclass(frozen=True, order=True)
class TreeEntry:
    """One directory entry: a name bound to an object id with a mode."""

    name: str
    oid: str
    mode: str = MODE_FILE

    def __post_init__(self) -> None:
        if "/" in self.name or self.name in ("", ".", ".."):
            raise VcsError(f"illegal tree entry name: {self.name!r}")
        if self.mode not in _VALID_MODES:
            raise VcsError(f"illegal tree entry mode: {self.mode!r}")

    @property
    def is_dir(self) -> bool:
        return self.mode == MODE_DIR


@dataclass(frozen=True)
class Tree:
    """A directory snapshot: sorted, unique entries."""

    entries: tuple[TreeEntry, ...] = ()

    kind = "tree"

    def __post_init__(self) -> None:
        names = [e.name for e in self.entries]
        if names != sorted(names):
            object.__setattr__(
                self, "entries", tuple(sorted(self.entries, key=lambda e: e.name))
            )
            names = [e.name for e in self.entries]
        if len(set(names)) != len(names):
            raise VcsError(f"duplicate names in tree: {names}")

    def payload(self) -> bytes:
        lines = [f"{e.mode} {e.oid} {e.name}" for e in self.entries]
        return ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")

    def lookup(self, name: str) -> TreeEntry | None:
        """Entry with the given *name*, or None."""
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    @classmethod
    def from_payload(cls, payload: bytes) -> "Tree":
        entries = []
        for line in payload.decode("utf-8").splitlines():
            mode, oid, name = line.split(" ", 2)
            entries.append(TreeEntry(name=name, oid=oid, mode=mode))
        return cls(tuple(entries))


@dataclass(frozen=True)
class Commit:
    """A history node referencing a tree snapshot."""

    tree: str
    parents: tuple[str, ...]
    author: str
    message: str
    timestamp: int

    kind = "commit"

    def payload(self) -> bytes:
        lines = [f"tree {self.tree}"]
        lines.extend(f"parent {p}" for p in self.parents)
        lines.append(f"author {self.author}")
        lines.append(f"timestamp {self.timestamp}")
        lines.append("")
        lines.append(self.message)
        return "\n".join(lines).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "Commit":
        text = payload.decode("utf-8")
        header, _, message = text.partition("\n\n")
        tree = ""
        parents: list[str] = []
        author = ""
        timestamp = 0
        for line in header.splitlines():
            key, _, value = line.partition(" ")
            if key == "tree":
                tree = value
            elif key == "parent":
                parents.append(value)
            elif key == "author":
                author = value
            elif key == "timestamp":
                timestamp = int(value)
            else:
                raise VcsError(f"unknown commit header: {key!r}")
        if not tree:
            raise VcsError("commit payload missing tree")
        return cls(
            tree=tree,
            parents=tuple(parents),
            author=author,
            message=message,
            timestamp=timestamp,
        )


@dataclass(frozen=True)
class Tag:
    """An annotated, immutable name for an object (usually a commit)."""

    target: str
    name: str
    message: str = ""

    kind = "tag"

    def payload(self) -> bytes:
        return (
            f"target {self.target}\nname {self.name}\n\n{self.message}"
        ).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "Tag":
        text = payload.decode("utf-8")
        header, _, message = text.partition("\n\n")
        target = ""
        name = ""
        for line in header.splitlines():
            key, _, value = line.partition(" ")
            if key == "target":
                target = value
            elif key == "name":
                name = value
            else:
                raise VcsError(f"unknown tag header: {key!r}")
        return cls(target=target, name=name, message=message)


_KINDS = {"blob": Blob, "tree": Tree, "commit": Commit, "tag": Tag}

AnyObject = Blob | Tree | Commit | Tag


def serialize(obj: AnyObject) -> tuple[str, bytes]:
    """Serialize an object; returns ``(oid, buffer)``."""
    payload = obj.payload()
    buffer = f"{obj.kind} {len(payload)}\x00".encode("ascii") + payload
    return sha256_bytes(buffer), buffer


def deserialize(buffer: bytes) -> AnyObject:
    """Inverse of :func:`serialize` (oid is not re-checked here)."""
    head, sep, payload = buffer.partition(b"\x00")
    if not sep:
        raise VcsError("corrupt object: missing header terminator")
    try:
        kind, size_text = head.decode("ascii").split(" ")
        size = int(size_text)
    except ValueError as exc:
        raise VcsError(f"corrupt object header: {head!r}") from exc
    if size != len(payload):
        raise VcsError(
            f"corrupt object: declared {size} bytes, found {len(payload)}"
        )
    if kind == "blob":
        return Blob(payload)
    if kind == "tree":
        return Tree.from_payload(payload)
    if kind == "commit":
        return Commit.from_payload(payload)
    if kind == "tag":
        return Tag.from_payload(payload)
    raise VcsError(f"unknown object kind: {kind!r}")
