"""Diffing between tree snapshots: structural change lists and unified text
diffs, the way reviewers inspect what changed between two versions of an
experiment.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from enum import Enum

from repro.vcs.store import ObjectStore

__all__ = ["ChangeKind", "Change", "tree_changes", "unified_diff", "diff_commits"]


class ChangeKind(str, Enum):
    ADDED = "added"
    REMOVED = "removed"
    MODIFIED = "modified"


@dataclass(frozen=True)
class Change:
    """One file-level difference between two snapshots."""

    kind: ChangeKind
    path: str
    old_oid: str | None = None
    new_oid: str | None = None

    def __str__(self) -> str:
        symbol = {"added": "A", "removed": "D", "modified": "M"}[self.kind.value]
        return f"{symbol} {self.path}"


def tree_changes(
    store: ObjectStore, old_tree: str | None, new_tree: str | None
) -> list[Change]:
    """File-level changes turning *old_tree* into *new_tree* (sorted by path)."""
    old_files = dict(store.walk_tree(old_tree)) if old_tree else {}
    new_files = dict(store.walk_tree(new_tree)) if new_tree else {}
    changes: list[Change] = []
    for path in sorted(set(old_files) | set(new_files)):
        old_oid = old_files.get(path)
        new_oid = new_files.get(path)
        if old_oid is None:
            changes.append(Change(ChangeKind.ADDED, path, None, new_oid))
        elif new_oid is None:
            changes.append(Change(ChangeKind.REMOVED, path, old_oid, None))
        elif old_oid != new_oid:
            changes.append(Change(ChangeKind.MODIFIED, path, old_oid, new_oid))
    return changes


def _blob_lines(store: ObjectStore, oid: str | None) -> list[str]:
    if oid is None:
        return []
    data = store.get_blob(oid).data
    try:
        return data.decode("utf-8").splitlines(keepends=True)
    except UnicodeDecodeError:
        return [f"<binary {len(data)} bytes>\n"]


def unified_diff(store: ObjectStore, change: Change, context: int = 3) -> str:
    """Unified text diff for one :class:`Change`."""
    old_lines = _blob_lines(store, change.old_oid)
    new_lines = _blob_lines(store, change.new_oid)
    old_label = f"a/{change.path}" if change.old_oid else "/dev/null"
    new_label = f"b/{change.path}" if change.new_oid else "/dev/null"
    return "".join(
        difflib.unified_diff(
            old_lines, new_lines, fromfile=old_label, tofile=new_label, n=context
        )
    )


def diff_commits(store: ObjectStore, old_commit: str | None, new_commit: str) -> str:
    """Full unified diff between two commits (old may be None for the root)."""
    old_tree = store.get_commit(old_commit).tree if old_commit else None
    new_tree = store.get_commit(new_commit).tree
    chunks = []
    for change in tree_changes(store, old_tree, new_tree):
        chunks.append(unified_diff(store, change))
    return "".join(chunks)
