"""A from-scratch content-addressed version-control substrate.

The Popper convention stores *everything* — manuscript, experiment code,
orchestration, parametrization, validation criteria and results — in one
versioned repository.  This package provides that substrate: a git-like
DVCS with blobs/trees/commits/tags, branches, an index, diffs and clones,
deterministic enough that entire experiment histories reproduce
bit-for-bit.
"""

from repro.vcs.diff import Change, ChangeKind, tree_changes, unified_diff
from repro.vcs.objects import Blob, Commit, Tag, Tree, TreeEntry
from repro.vcs.repository import LogEntry, Repository, Status
from repro.vcs.store import ObjectStore

__all__ = [
    "Repository",
    "LogEntry",
    "Status",
    "ObjectStore",
    "Blob",
    "Tree",
    "TreeEntry",
    "Commit",
    "Tag",
    "Change",
    "ChangeKind",
    "tree_changes",
    "unified_diff",
]
