"""Least-squares performance models over sample series.

The degradation detectors in :mod:`repro.check` need to summarize "how
does this metric behave across a run" as something comparable between
two commits.  Following Perun's postprocessing models, a series is
fitted against a small basis of shapes — constant, linear, logarithmic
and quadratic in the sample index — and the best fit (highest
coefficient of determination, simplest shape on ties) becomes the
series' model.  Two commits are then compared model-to-model: a change
of best shape, of fitted coefficients, or of the model's integral is
the statistically-summarized signal the detectors classify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import CheckError

__all__ = ["MODEL_KINDS", "ModelFit", "fit_model", "fit_best_model", "model_integral"]

#: Model shapes, simplest first — the tie-break order for equal fits.
MODEL_KINDS = ("constant", "linear", "logarithmic", "quadratic")


def _design(kind: str, x: np.ndarray) -> np.ndarray:
    if kind == "constant":
        return np.ones((x.size, 1))
    if kind == "linear":
        return np.column_stack([np.ones_like(x), x])
    if kind == "logarithmic":
        return np.column_stack([np.ones_like(x), np.log1p(x)])
    if kind == "quadratic":
        return np.column_stack([np.ones_like(x), x, x * x])
    raise CheckError(f"unknown model kind {kind!r} (known: {MODEL_KINDS})")


@dataclass(frozen=True)
class ModelFit:
    """One fitted model: ``y ~ shape(x)`` with goodness of fit."""

    kind: str
    coefficients: tuple[float, ...]
    r_squared: float
    x_range: tuple[float, float]

    def predict(self, x: np.ndarray | list[float]) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        design = _design(self.kind, x)
        return design @ np.asarray(self.coefficients, dtype=np.float64)

    @property
    def complexity(self) -> int:
        """Position in :data:`MODEL_KINDS` (simpler models rank lower)."""
        return MODEL_KINDS.index(self.kind)


def fit_model(x: np.ndarray | list[float], y: np.ndarray | list[float], kind: str) -> ModelFit:
    """Least-squares fit of one model *kind* over ``(x, y)``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise CheckError(f"model fit needs equal-length vectors ({x.size} vs {y.size})")
    if x.size < 2:
        raise CheckError("model fit needs at least 2 points")
    design = _design(kind, x)
    coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
    predicted = design @ coeffs
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    # A flat series is perfectly explained by any shape that can be flat.
    r_squared = 1.0 if ss_tot == 0.0 else max(0.0, 1.0 - ss_res / ss_tot)
    return ModelFit(
        kind=kind,
        coefficients=tuple(float(c) for c in coeffs),
        r_squared=r_squared,
        x_range=(float(np.min(x)), float(np.max(x))),
    )


def fit_best_model(
    x: np.ndarray | list[float],
    y: np.ndarray | list[float],
    kinds: tuple[str, ...] = MODEL_KINDS,
) -> ModelFit:
    """The best-fitting model over ``(x, y)``.

    "Best" is the highest coefficient of determination; a more complex
    shape must beat a simpler one by a margin (1e-3) to win, so noise
    does not promote every flat series to a quadratic.
    """
    if not kinds:
        raise CheckError("fit_best_model needs at least one model kind")
    best: ModelFit | None = None
    for kind in kinds:
        fit = fit_model(x, y, kind)
        if best is None or fit.r_squared > best.r_squared + 1e-3:
            best = fit
    assert best is not None
    return best


def model_integral(fit: ModelFit, points: int = 128) -> float:
    """Trapezoidal integral of the fitted curve over its x range.

    Normalized by the range width, so the integral of two series with
    different lengths stays comparable (it is the model's mean height).
    """
    lo, hi = fit.x_range
    if hi <= lo:
        return float(fit.predict([lo])[0])
    grid = np.linspace(lo, hi, points)
    return float(np.trapezoid(fit.predict(grid), grid) / (hi - lo))
