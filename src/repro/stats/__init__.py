"""Controlled vs statistical performance-reproducibility methods
(§ "Numerical vs. Performance Reproducibility" of the paper).
"""

from repro.stats.comparison import (
    ComparisonError,
    SpeedupEstimate,
    controlled_comparison,
    naive_comparison,
    required_runs,
    statistical_comparison,
)
from repro.stats.environments import demand_runner, sample_across_environments

__all__ = [
    "SpeedupEstimate",
    "ComparisonError",
    "controlled_comparison",
    "statistical_comparison",
    "naive_comparison",
    "required_runs",
    "sample_across_environments",
    "demand_runner",
]

from repro.stats.numerical import NumericalReport, check_numerical, digest_output  # noqa: E402

__all__ += ["NumericalReport", "check_numerical", "digest_output"]

from repro.stats.models import (  # noqa: E402
    MODEL_KINDS,
    ModelFit,
    fit_best_model,
    fit_model,
    model_integral,
)

__all__ += ["MODEL_KINDS", "ModelFit", "fit_model", "fit_best_model", "model_integral"]
