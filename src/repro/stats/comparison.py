"""Controlled and statistical performance comparison.

The paper (§ *Numerical vs. Performance Reproducibility*) contrasts two
ways to compare systems:

* **controlled** — a deterministic environment where every factor is
  quantified; one run per system suffices and the comparison is a plain
  ratio;
* **statistical** — execute both systems across many distinct
  environments, then state claims in statistical terms, e.g. "with 95 %
  confidence one system is 10x better than the other";

and notes the common (bad) practice of "run 10 times on one machine and
report averages".  This module implements all three, so a Popperized
experiment can codify *which* reproducibility claim it makes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.common.errors import ReproError

__all__ = [
    "SpeedupEstimate",
    "controlled_comparison",
    "statistical_comparison",
    "naive_comparison",
    "required_runs",
]


class ComparisonError(ReproError):
    """Bad inputs to a performance comparison."""


@dataclass(frozen=True)
class SpeedupEstimate:
    """A speedup claim: how much faster system B is than system A.

    ``low``/``high`` bound the speedup at the stated confidence;
    ``point`` is the central estimate.  ``speedup > 1`` means B is
    faster (B's runtimes are smaller).
    """

    method: str
    point: float
    low: float
    high: float
    confidence: float
    samples_a: int
    samples_b: int

    @property
    def significant(self) -> bool:
        """True when the interval excludes 1.0 (a real difference)."""
        return self.low > 1.0 or self.high < 1.0

    def claim(self) -> str:
        """The sentence the paper wants experiments to be able to state."""
        if not self.significant:
            return (
                f"with {self.confidence:.0%} confidence the systems are "
                f"statistically indistinguishable "
                f"(speedup in [{self.low:.2f}, {self.high:.2f}])"
            )
        direction = "faster" if self.point > 1 else "slower"
        return (
            f"with {self.confidence:.0%} confidence system B is "
            f"{self.point:.2f}x {direction} "
            f"(interval [{self.low:.2f}, {self.high:.2f}])"
        )


def _validate(samples: np.ndarray, label: str, minimum: int = 1) -> np.ndarray:
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size < minimum:
        raise ComparisonError(
            f"{label}: need at least {minimum} samples, got {samples.size}"
        )
    if np.any(samples <= 0) or np.any(~np.isfinite(samples)):
        raise ComparisonError(f"{label}: runtimes must be positive and finite")
    return samples


def controlled_comparison(
    time_a: float, time_b: float
) -> SpeedupEstimate:
    """Comparison in a fully controlled (deterministic) environment.

    With every performance factor quantified, single runs are exact and
    the interval is degenerate.
    """
    a = _validate(np.array([time_a]), "system A")[0]
    b = _validate(np.array([time_b]), "system B")[0]
    ratio = a / b
    return SpeedupEstimate(
        method="controlled",
        point=ratio,
        low=ratio,
        high=ratio,
        confidence=1.0,
        samples_a=1,
        samples_b=1,
    )


def statistical_comparison(
    times_a: np.ndarray | list[float],
    times_b: np.ndarray | list[float],
    confidence: float = 0.95,
    resamples: int = 4000,
    seed: int = 0,
) -> SpeedupEstimate:
    """Bootstrap interval for the median-runtime ratio A/B.

    Samples should come from *distinct environments* (machines, OS
    images, days) per the statistical-reproducibility method; the
    bootstrap makes no distributional assumption, which matters because
    runtime distributions are long-tailed.
    """
    if not 0.5 < confidence < 1.0:
        raise ComparisonError(f"confidence out of range: {confidence}")
    a = _validate(times_a, "system A", minimum=3)
    b = _validate(times_b, "system B", minimum=3)
    rng = np.random.default_rng(seed)
    idx_a = rng.integers(0, a.size, size=(resamples, a.size))
    idx_b = rng.integers(0, b.size, size=(resamples, b.size))
    ratios = np.median(a[idx_a], axis=1) / np.median(b[idx_b], axis=1)
    alpha = 1.0 - confidence
    low, high = np.quantile(ratios, [alpha / 2, 1 - alpha / 2])
    return SpeedupEstimate(
        method="statistical-bootstrap",
        point=float(np.median(a) / np.median(b)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        samples_a=int(a.size),
        samples_b=int(b.size),
    )


def naive_comparison(
    times_a: np.ndarray | list[float], times_b: np.ndarray | list[float]
) -> SpeedupEstimate:
    """The field's common practice: same machine, ~10 runs, mean ratio.

    Provided so the gap between it and a defensible claim is measurable:
    the returned interval is a plain t-based CI on the mean ratio and is
    labeled as such.
    """
    a = _validate(times_a, "system A", minimum=2)
    b = _validate(times_b, "system B", minimum=2)
    point = float(np.mean(a) / np.mean(b))
    # Delta-method standard error of a ratio of means.
    se = point * np.sqrt(
        (np.std(a, ddof=1) / np.mean(a)) ** 2 / a.size
        + (np.std(b, ddof=1) / np.mean(b)) ** 2 / b.size
    )
    margin = sps.t.ppf(0.975, df=min(a.size, b.size) - 1) * se
    return SpeedupEstimate(
        method="naive-mean-ratio",
        point=point,
        low=float(point - margin),
        high=float(point + margin),
        confidence=0.95,
        samples_a=int(a.size),
        samples_b=int(b.size),
    )


def required_runs(
    cov: float, detectable_effect: float, confidence: float = 0.95, power: float = 0.8
) -> int:
    """Runs per system needed to resolve *detectable_effect* (fractional
    difference in means) at the given run-to-run coefficient of variation.

    Standard two-sample normal-approximation power calculation — the
    planning number an experiment's ``vars.yml`` should justify its
    ``runs:`` with.
    """
    if cov <= 0 or detectable_effect <= 0:
        raise ComparisonError("cov and detectable_effect must be positive")
    if not (0.5 < confidence < 1.0 and 0.5 <= power < 1.0):
        raise ComparisonError("confidence in (0.5, 1), power in [0.5, 1)")
    z_alpha = sps.norm.ppf(1 - (1 - confidence) / 2)
    z_beta = sps.norm.ppf(power)
    n = 2.0 * ((z_alpha + z_beta) * cov / detectable_effect) ** 2
    return int(np.ceil(n))
