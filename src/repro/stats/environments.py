"""Multi-environment sampling for statistical reproducibility.

The statistical method "starts by first executing both systems on a
number of distinct environments (distinct computers, OS, networks,
etc.)".  :func:`sample_across_environments` provides exactly that
harness over the simulated platform: it draws nodes from several sites,
runs a workload cost function on each, and returns the per-environment
runtime vectors for :func:`~repro.stats.comparison.statistical_comparison`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.common.errors import ReproError
from repro.common.rng import SeedSequenceFactory
from repro.platform.perfmodel import KernelDemand, execution_time
from repro.platform.sites import Site

__all__ = ["sample_across_environments", "demand_runner"]


def demand_runner(demand: KernelDemand, threads: int = 1) -> Callable:
    """A workload function from a KernelDemand (modeled time on a node)."""

    def run(node) -> float:
        return execution_time(demand, node.spec, threads=threads) / node.speed_factor

    return run


def sample_across_environments(
    workload: Callable,
    sites: dict[str, Site],
    runs_per_site: int = 4,
    seed: int = 0,
    site_names: list[str] | None = None,
) -> np.ndarray:
    """Observed runtimes of *workload* across distinct environments.

    *workload* maps a node to a nominal runtime (seconds); each sampled
    run applies the node's noise regime.  Environments rotate over the
    selected sites' node pools so every sample sees a different machine
    where capacity allows.
    """
    names = site_names or sorted(sites)
    if not names:
        raise ReproError("no sites selected")
    seeds = SeedSequenceFactory(seed)
    samples: list[float] = []
    for site_name in names:
        if site_name not in sites:
            raise ReproError(f"unknown site {site_name!r}")
        site = sites[site_name]
        count = min(runs_per_site, site.capacity)
        with site.allocate(count) as allocation:
            for run_index in range(runs_per_site):
                node = allocation[run_index % len(allocation)]
                rng = seeds.rng("env", site_name, run_index)
                nominal = workload(node)
                samples.append(node.noise.sample(nominal, rng))
    return np.asarray(samples, dtype=np.float64)
