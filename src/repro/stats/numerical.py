"""Numerical reproducibility checking.

The paper's other reproducibility axis: "obtaining the same numerical
values from every run, with the same code and input, on distinct
platforms.  For example, the result of the same simulation on two
distinct CPU architectures should yield the same numerical values."

:func:`check_numerical` runs a computation once per environment and
compares output digests; :class:`NumericalReport` names the first
divergent pair so the offending platform is identifiable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.common.errors import ReproError

__all__ = ["NumericalReport", "check_numerical", "digest_output"]


def digest_output(value: Any) -> str:
    """Stable digest of a computation's output.

    Supports numpy arrays (exact bytes), metrics tables (CSV form),
    and anything else via ``repr`` — bitwise identity is the bar the
    paper sets.
    """
    digest = hashlib.sha256()
    if isinstance(value, np.ndarray):
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    elif hasattr(value, "to_csv"):
        digest.update(value.to_csv().encode("utf-8"))
    else:
        digest.update(repr(value).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class NumericalReport:
    """Outcome of a cross-environment numerical check."""

    reproducible: bool
    digests: tuple[tuple[str, str], ...]  # (environment, digest)

    @property
    def divergent_pairs(self) -> list[tuple[str, str]]:
        """Environment names whose outputs differ from the first one."""
        if not self.digests:
            return []
        reference_env, reference = self.digests[0]
        return [
            (reference_env, env)
            for env, digest in self.digests[1:]
            if digest != reference
        ]

    def describe(self) -> str:
        if self.reproducible:
            return (
                f"numerically reproducible across {len(self.digests)} "
                "environments"
            )
        pairs = ", ".join(f"{a} != {b}" for a, b in self.divergent_pairs)
        return f"NUMERICAL DIVERGENCE: {pairs}"


def check_numerical(
    computation: Callable[[Any], Any],
    environments: dict[str, Any],
) -> NumericalReport:
    """Run *computation* once per environment and compare outputs.

    *environments* maps a name to whatever context object the
    computation consumes (a node, a machine spec, a config); the
    computation must be a pure function of its inputs for the check to
    be meaningful.
    """
    if not environments:
        raise ReproError("no environments given")
    digests = tuple(
        (name, digest_output(computation(env)))
        for name, env in environments.items()
    )
    reference = digests[0][1]
    return NumericalReport(
        reproducible=all(d == reference for _, d in digests),
        digests=digests,
    )
