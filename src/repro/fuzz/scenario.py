"""The fuzzer's unit of work: one complete experiment input bundle.

A :class:`Scenario` is everything that parameterizes one execution of
the toolchain — the experiment's file set (``vars.yml``, ``setup.yml``,
``validations.aver``, post-processing script, notebook), the repository's
``.travis.yml`` (probed statically through the CI config parser), the
injection specs (:class:`~repro.engine.faults.FaultPlan` /
:class:`~repro.common.crash.CrashPlan` grammars) and the inventory
shape.  Mutators rewrite scenarios; the executor materializes one into a
sandbox Popper repository and runs it through the real pipeline.

Scenarios are value objects: :meth:`fingerprint` hashes the complete
content, so two runs of the fuzzer with the same seed produce the same
variant ids — the determinism the corpus and coverage map inherit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.common import minyaml
from repro.common.errors import FuzzError
from repro.common.hashing import sha256_text

__all__ = ["Scenario", "SCENARIO_FILES"]

#: Experiment files a scenario carries (when present in the seed).
SCENARIO_FILES = (
    "vars.yml",
    "setup.yml",
    "validations.aver",
    "process-result.py",
    "visualize.nb.json",
)


@dataclass(frozen=True)
class Scenario:
    """One immutable experiment input bundle.

    ``files`` maps experiment-relative paths to their content;
    ``travis`` is the repository-level CI matrix the static probe
    parses; ``fault_spec`` / ``crash_spec`` are injection grammars (or
    ``None``); ``host_count`` shapes the setup playbook's inventory.
    """

    name: str
    files: dict[str, str] = field(default_factory=dict)
    travis: str | None = None
    fault_spec: str | None = None
    crash_spec: str | None = None
    host_count: int = 1

    # -- construction --------------------------------------------------------
    @classmethod
    def from_experiment(cls, repo, name: str) -> "Scenario":
        """Capture an existing experiment (plus the repo's CI matrix)."""
        if name not in repo.config.experiments:
            raise FuzzError(f"no such experiment to seed from: {name!r}")
        directory = repo.experiment_dir(name)
        files: dict[str, str] = {}
        for rel in SCENARIO_FILES:
            path = directory / rel
            if path.is_file():
                files[rel] = path.read_text(encoding="utf-8")
        travis_path = repo.root / ".travis.yml"
        travis = (
            travis_path.read_text(encoding="utf-8")
            if travis_path.is_file()
            else None
        )
        return cls(name=name, files=files, travis=travis)

    # -- content accessors ---------------------------------------------------
    def vars(self) -> dict:
        """Parse this scenario's ``vars.yml`` (may raise ``YamlError``)."""
        doc = minyaml.loads(self.files.get("vars.yml", ""))
        return doc if isinstance(doc, dict) else {}

    def with_vars(self, variables: dict) -> "Scenario":
        """A copy with ``vars.yml`` replaced by the serialized mapping."""
        files = dict(self.files)
        files["vars.yml"] = minyaml.dumps(variables)
        return replace(self, files=files)

    def with_file(self, rel: str, content: str | None) -> "Scenario":
        """A copy with one file replaced (``None`` removes it)."""
        files = dict(self.files)
        if content is None:
            files.pop(rel, None)
        else:
            files[rel] = content
        return replace(self, files=files)

    # -- identity ------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "name": self.name,
            "files": dict(sorted(self.files.items())),
            "travis": self.travis,
            "fault_spec": self.fault_spec,
            "crash_spec": self.crash_spec,
            "host_count": self.host_count,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Scenario":
        try:
            return cls(
                name=str(payload["name"]),
                files={str(k): str(v) for k, v in payload["files"].items()},
                travis=payload.get("travis"),
                fault_spec=payload.get("fault_spec"),
                crash_spec=payload.get("crash_spec"),
                host_count=int(payload.get("host_count", 1)),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise FuzzError(f"bad scenario record: {exc}") from exc

    def fingerprint(self) -> str:
        """Content hash identifying this variant (stable across runs)."""
        return sha256_text(json.dumps(self.to_json(), sort_keys=True))

    # -- materialization -----------------------------------------------------
    def write_files(self, directory: str | Path) -> Path:
        """Write the experiment file set under *directory*."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for rel, content in sorted(self.files.items()):
            target = directory / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content, encoding="utf-8")
        return directory
