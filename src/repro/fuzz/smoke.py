"""The ``--fuzz-smoke`` self-check: prove the fuzz loop finds and shrinks.

CI jobs run ``popper run --all --fuzz-smoke`` to exercise the whole
fuzzing path end-to-end in seconds, in a scratch repository:

1. a tiny seeded campaign (fixed seed, a few iterations) must generate,
   execute and score at least one variant and grow the coverage map;
2. a *known-bad* variant — an innocuous seed change stacked with an
   Aver threshold tightened to an unreachable bound — must be flagged
   by the oracle as an ``aver-fail`` failure;
3. the delta-debugging minimizer must shrink that two-mutation chain to
   exactly the guilty mutation, and the stored reproducer must re-run
   from its corpus directory and fail the same way.

Like ``--chaos-smoke`` / ``--crash-smoke`` / ``--perf-smoke``, this
turns "the fuzzer imports" into "the fuzzer catches a planted bug".
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.common import minyaml
from repro.common.errors import FuzzError
from repro.core.repo import PopperRepository
from repro.fuzz.campaign import FuzzCampaign
from repro.fuzz.corpus import CorpusEntry
from repro.fuzz.minimize import minimize
from repro.fuzz.mutators import Mutation, apply_chain
from repro.fuzz.oracle import SEVERITY_FAILURE, judge

__all__ = ["fuzz_smoke"]

#: The planted failure: one innocent mutation plus one guilty one.
_KNOWN_BAD_CHAIN = (
    Mutation("seed-set", {"value": 1234}),
    Mutation("aver-rewrite", {"find": "> 1", "replace": "> 1000"}),
)


def fuzz_smoke(root: str | Path | None = None, iterations: int = 3) -> str:
    """Run the seeded end-to-end fuzz check; return a summary line.

    Raises :class:`FuzzError` if no variant executes, coverage stays
    empty, the planted known-bad variant escapes the oracle, or the
    minimizer fails to shrink it to the single guilty mutation.
    """
    with tempfile.TemporaryDirectory(prefix="fuzz-smoke-") as scratch:
        base = Path(root) if root is not None else Path(scratch)
        repo = PopperRepository.init(base / "repo")
        repo.add_experiment("torpor", "smoke")
        vars_path = repo.experiment_dir("smoke") / "vars.yml"
        doc = minyaml.load_file(vars_path)
        doc["runs"] = 2  # keep each sandboxed pipeline run cheap
        minyaml.dump_file(doc, vars_path)

        campaign = FuzzCampaign(
            repo, seed=7, iterations=iterations, do_minimize=False
        )
        report = campaign.run()
        if report.executed < 1:
            raise FuzzError("fuzz smoke: no variant was executed")
        if report.coverage_size < 1:
            raise FuzzError("fuzz smoke: coverage map stayed empty")
        if not report.outcomes:
            raise FuzzError("fuzz smoke: no variant was scored")

        # The planted known-bad variant must be caught...
        seed_scenario = campaign.seeds["smoke"]
        bad = apply_chain(seed_scenario, list(_KNOWN_BAD_CHAIN))
        result = campaign.runner.run(bad)
        verdict = judge(result.observation)
        if verdict.severity != SEVERITY_FAILURE or "aver-fail" not in verdict.kinds:
            raise FuzzError(
                "fuzz smoke: known-bad variant escaped the oracle "
                f"(verdict: {verdict.kinds}, outcome: {result.outcome})"
            )
        # ...and minimized to exactly the guilty mutation.
        minimal = minimize(
            seed_scenario, _KNOWN_BAD_CHAIN, campaign.runner, verdict.kinds
        )
        if len(minimal.chain) != 1 or minimal.chain[0].rule != "aver-rewrite":
            raise FuzzError(
                "fuzz smoke: minimizer kept "
                f"{[m.rule for m in minimal.chain]}, expected the single "
                "aver-rewrite mutation"
            )
        campaign.reproducers.add(
            CorpusEntry(
                variant=minimal.variant,
                scenario=minimal.scenario,
                chain=minimal.chain,
                verdict=minimal.verdict,
                outcome=result.outcome,
                detail=result.detail,
            )
        )
        # The stored reproducer must replay to the same failure.
        stored = campaign.reproducers.load(minimal.variant)
        replay = judge(campaign.runner.run(stored.scenario).observation)
        if "aver-fail" not in replay.kinds:
            raise FuzzError(
                "fuzz smoke: stored reproducer did not replay its failure"
            )

    return (
        f"fuzz smoke ok: {report.executed} variant(s) executed, "
        f"{report.coverage_size} coverage key(s), known-bad caught "
        f"({'/'.join(verdict.kinds)}) and minimized "
        f"{len(_KNOWN_BAD_CHAIN)} -> {len(minimal.chain)} mutation(s)"
    )
