"""The fuzzer's novelty signal: a persistent behaviour-coverage map.

Coverage here is *behavioural*, not line-based: every executed variant
is reduced to a set of coverage keys describing what the toolchain did —
journal event kinds seen, task states reached, normalized stage/span
shapes, crashpoints hit, Aver verdicts, doctor finding kinds, detector
degradation verdicts, CI matrix widths, and the outcome class itself.
A variant that lights up a key no earlier variant produced is *novel*
and earns a place in the corpus even when the oracle calls it boring.

The map persists as ``.pvcs/fuzz/coverage.jsonl`` under the same
durable-append / torn-tail-tolerant contract as every other JSONL file
in the store — but through one persistent
:class:`~repro.common.groupcommit.GroupCommitWriter` rather than a
file open + fsync per record: the campaign's harvest loop appends
thousands of records, and group commit amortizes the durability
barrier across bounded windows (committed on :meth:`CoverageMap.flush`
/ :meth:`CoverageMap.close`, which the campaign calls at exit).
Readers skip a torn trailing line and ``popper doctor`` truncates the
tear.  Records carry no timestamps — two campaigns with the same seed
write identical maps, which the determinism acceptance test diffs byte
for byte.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.groupcommit import GroupCommitWriter

__all__ = ["CoverageMap", "coverage_keys_from_events"]


def coverage_keys_from_events(events: list[dict], experiment: str) -> set[str]:
    """Distill journal events into coverage keys.

    Experiment-specific names are normalized (the experiment name maps to
    ``<exp>``) so two variants of different seeds that drive the same
    machinery count as the same behaviour.
    """
    keys: set[str] = set()
    for event in events:
        kind = event.get("event")
        if not kind:
            continue
        keys.add(f"event:{kind}")
        task = event.get("task") or event.get("stage")
        if isinstance(task, str):
            shape = task.replace(experiment, "<exp>")
            state = event.get("state") or event.get("status")
            if state:
                keys.add(f"task:{shape}:{state}")
        if kind == "cache" and "hit" in event:
            keys.add(f"cache:{'hit' if event['hit'] else 'miss'}")
        if kind == "degradation":
            change = event.get("change") or event.get("verdict")
            if change:
                keys.add(f"degradation:{change}")
    return keys


class CoverageMap:
    """Set-of-keys coverage with durable JSONL persistence."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._keys: set[str] = set()
        self._writer: GroupCommitWriter | None = None
        self._load()

    def _load(self) -> None:
        if not self.path.is_file():
            return
        raw = self.path.read_text(encoding="utf-8")
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail (or mid-file tear doctor will cut)
            if isinstance(record, dict):
                self._keys.update(str(k) for k in record.get("keys", ()))

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def keys(self) -> set[str]:
        return set(self._keys)

    def novel(self, keys: set[str]) -> set[str]:
        """The subset of *keys* this map has never seen."""
        return set(keys) - self._keys

    def observe(self, variant: str, keys: set[str]) -> set[str]:
        """Record a variant's keys; returns (and persists) the novel ones.

        Only novel keys are appended, so the file grows with discovered
        behaviour, not with iterations.
        """
        fresh = self.novel(keys)
        if not fresh:
            return fresh
        self._keys.update(fresh)
        if self._writer is None or self._writer.closed:
            # One writer for the campaign's whole harvest loop — the
            # old open+fsync per record priced every novel variant at a
            # full durability barrier.
            self._writer = GroupCommitWriter(
                self.path, durable=True, crash_label="fuzz.coverage"
            )
        record = {"variant": variant, "keys": sorted(fresh)}
        self._writer.append(json.dumps(record, sort_keys=True))
        return fresh

    def flush(self) -> None:
        """Commit the open group-commit window to disk."""
        if self._writer is not None and not self._writer.closed:
            self._writer.flush()

    def close(self) -> None:
        """Commit and release the persistent writer (campaign exit)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None
