"""Coverage-guided scenario fuzzing with Aver as the property oracle.

``popper fuzz`` mutates experiment inputs — ``vars.yml`` parameter
spaces, pipeline stage lists, ``.travis.yml`` env matrices, inventories,
and FaultPlan/CrashPlan injection grammars — executes each variant
through the real memoized DAG engine in a sandbox repository, scores it
by behavioural novelty plus an interestingness oracle, keeps a corpus of
interesting variants under ``.pvcs/fuzz/``, and delta-debugs failures
down to minimal runnable reproducers.  See ``docs/robustness.md``.
"""

from repro.fuzz.campaign import FuzzCampaign, FuzzReport
from repro.fuzz.corpus import Corpus, CorpusEntry, FUZZ_DIR
from repro.fuzz.coverage import CoverageMap, coverage_keys_from_events
from repro.fuzz.executor import ExecutionResult, VariantRunner
from repro.fuzz.minimize import MinimizationResult, minimize
from repro.fuzz.mutators import (
    MUTATION_RULES,
    Mutation,
    apply_chain,
    apply_mutation,
    generate_mutation,
)
from repro.fuzz.oracle import Observation, OracleVerdict, judge
from repro.fuzz.scenario import Scenario
from repro.fuzz.smoke import fuzz_smoke

__all__ = [
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "ExecutionResult",
    "FUZZ_DIR",
    "FuzzCampaign",
    "FuzzReport",
    "MinimizationResult",
    "MUTATION_RULES",
    "Mutation",
    "Observation",
    "OracleVerdict",
    "Scenario",
    "VariantRunner",
    "apply_chain",
    "apply_mutation",
    "coverage_keys_from_events",
    "fuzz_smoke",
    "generate_mutation",
    "judge",
    "minimize",
]
