"""Run one scenario variant through the real toolchain, sandboxed.

Each variant gets a throwaway Popper repository under the campaign's
work root (``.pvcs/fuzz/work/<variant>/``): ``popper init`` layout, the
mutated experiment files, the mutated ``.travis.yml``.  The variant then
passes through the same code paths a user would drive:

1. **static probes** — the mutated ``.travis.yml`` through
   :meth:`CIConfig.from_yaml` / ``expand_matrix`` and the mutated
   fault/crash specs through their plan parsers.  Garbage here must be
   *rejected cleanly* (``ReproError``); anything else escaping is
   already a finding.
2. **pipeline execution** — :class:`ExperimentPipeline` over the memoized
   DAG engine, with the campaign's shared artifact store (so mutants
   that only perturb unrelated surfaces are served from cache — the
   cache-hit rate across mutants is a benchmark headline), the parsed
   fault plan, and the parsed crash plan installed process-globally for
   the duration (restored afterwards, crash debris handed to doctor).
3. **post-run doctor** — ``diagnose``/``repair`` over the sandbox.  A
   clean run that leaves repairable debris is a finding; an injected
   crash whose debris the doctor cannot repair is a worse one.

The executor reports an :class:`ExecutionResult` carrying the raw
:class:`~repro.fuzz.oracle.Observation` for the oracle plus the
journal-derived coverage keys for the novelty feedback loop.
"""

from __future__ import annotations

import contextlib
import io
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.ci.config import CIConfig
from repro.common.crash import CrashPlan, SimulatedCrash, install_crash_plan
from repro.common.errors import ReproError
from repro.common.fsutil import rmtree_quiet
from repro.core.pipeline import ExperimentPipeline
from repro.core.repo import PopperRepository
from repro.engine import FaultPlan, RetryPolicy
from repro.fuzz.coverage import coverage_keys_from_events
from repro.fuzz.oracle import Observation
from repro.fuzz.scenario import Scenario
from repro.monitor.journal import JOURNAL_FILE, load_journal
from repro.orchestration.connection import ContainerConnection
from repro.orchestration.inventory import Inventory
from repro.store import ArtifactStore
from repro.store.doctor import diagnose, repair

__all__ = ["ExecutionResult", "VariantRunner"]


@dataclass
class ExecutionResult:
    """Everything one variant execution produced."""

    variant: str
    outcome: str  # ok | validation-failed | rejected | crash | escape
    detail: str = ""
    coverage: set[str] = field(default_factory=set)
    observation: Observation = field(default_factory=Observation)
    cache_hits: int = 0
    cache_misses: int = 0


class VariantRunner:
    """Materializes and executes scenario variants in sandbox repos."""

    def __init__(
        self,
        work_root: str | Path,
        seed: int = 42,
        artifact_store: ArtifactStore | None = None,
        keep_sandboxes: bool = False,
    ) -> None:
        self.work_root = Path(work_root)
        self.seed = int(seed)
        self.artifact_store = artifact_store
        self.keep_sandboxes = keep_sandboxes

    # -- static surfaces -----------------------------------------------------
    def _probe_travis(self, scenario: Scenario, coverage: set[str]) -> None:
        if scenario.travis is None:
            return
        try:
            config = CIConfig.from_yaml(scenario.travis)
            coverage.add(f"ci-matrix:{len(config.expand_matrix())}")
        except ReproError:
            coverage.add("ci:rejected")

    def _parse_plans(
        self, scenario: Scenario, coverage: set[str]
    ) -> tuple[FaultPlan | None, CrashPlan | None]:
        """Parse the variant's injection specs (EngineError propagates:
        the variant as a whole is then a clean rejection, exactly what
        ``popper run --inject-faults <garbage>`` would be)."""
        faults = crashes = None
        if scenario.fault_spec is not None:
            faults = FaultPlan.parse(scenario.fault_spec, seed=self.seed)
            coverage.add("fault-plan:parsed")
        if scenario.crash_spec is not None:
            crashes = CrashPlan.parse(scenario.crash_spec, seed=self.seed)
            coverage.add("crash-plan:parsed")
        return faults, crashes

    # -- sandbox -------------------------------------------------------------
    def _materialize(self, scenario: Scenario, sandbox: Path) -> PopperRepository:
        rmtree_quiet(sandbox)
        repo = PopperRepository.init(sandbox)
        scenario.write_files(repo.experiment_dir(scenario.name))
        if scenario.travis is not None:
            (sandbox / ".travis.yml").write_text(
                scenario.travis, encoding="utf-8"
            )
        repo.config.experiments[scenario.name] = "fuzz"
        repo.config.save(repo.root)
        return repo

    def _inventory(self, count: int) -> Inventory | None:
        if count == 1:
            return None  # the pipeline's default single-driver inventory
        inventory = Inventory()
        for i in range(count):
            inventory.add_host(
                f"node{i}",
                groups=["head"] if i == 0 else ["workers"],
                connection=ContainerConnection(name=f"node{i}"),
            )
        return inventory

    # -- execution -----------------------------------------------------------
    def run(self, scenario: Scenario) -> ExecutionResult:
        variant = scenario.fingerprint()
        sandbox = self.work_root / variant[:16]
        result = ExecutionResult(variant=variant, outcome="ok")
        coverage = result.coverage
        coverage.add(f"hosts:{scenario.host_count}")
        self._probe_travis(scenario, coverage)
        crashed: SimulatedCrash | None = None
        try:
            faults, crashes = self._parse_plans(scenario, coverage)
            repo = self._materialize(scenario, sandbox)
            pipeline = ExperimentPipeline(
                repo,
                scenario.name,
                inventory=self._inventory(scenario.host_count),
                retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter=0.0),
                faults=faults,
                artifact_store=self.artifact_store,
                run_meta={"seed": self.seed, "fuzz": True},
            )
            previous = install_crash_plan(crashes)
            try:
                with contextlib.redirect_stdout(io.StringIO()):
                    run = pipeline.run(strict=False)
                result.observation.aver_passed = run.validated
                coverage.add(f"aver:{'pass' if run.validated else 'fail'}")
                if not run.validated:
                    result.outcome = "validation-failed"
                    result.detail = "; ".join(
                        v.describe() for v in run.validations if not v.passed
                    )
            finally:
                install_crash_plan(previous)
        except SimulatedCrash as exc:
            crashed = exc
            result.outcome = "crash"
            result.detail = str(exc)
            coverage.add(f"crash:{exc.point}")
        except ReproError as exc:
            result.outcome = "rejected"
            result.detail = f"{type(exc).__name__}: {exc}"
            coverage.add(f"rejected:{type(exc).__name__}")
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # the contract breach the fuzzer hunts
            result.outcome = "escape"
            result.detail = f"{type(exc).__name__}: {exc}"
            coverage.add(f"escape:{type(exc).__name__}")

        self._harvest_journal(scenario, sandbox, result)
        self._post_doctor(sandbox, result, crashed)
        result.observation.outcome = result.outcome
        result.observation.detail = result.detail
        coverage.add(f"outcome:{result.outcome}")
        if not self.keep_sandboxes:
            rmtree_quiet(sandbox)
        return result

    def _harvest_journal(
        self, scenario: Scenario, sandbox: Path, result: ExecutionResult
    ) -> None:
        journal = (
            sandbox / "experiments" / scenario.name / JOURNAL_FILE
        )
        if not journal.is_file():
            return
        try:
            with warnings.catch_warnings():
                # A torn trailing line is *expected* debris when the
                # variant carried an injected crash; the doctor pass
                # scores it, so the reader's warning is just noise here.
                warnings.simplefilter("ignore")
                events, _torn = load_journal(journal)
        except ReproError:
            return
        result.coverage |= coverage_keys_from_events(events, scenario.name)
        for event in events:
            if event.get("event") == "cache":
                if event.get("hit"):
                    result.cache_hits += 1
                else:
                    result.cache_misses += 1
            elif event.get("event") == "degradation" and event.get("change"):
                result.observation.degradations += (str(event["change"]),)

    def _post_doctor(
        self,
        sandbox: Path,
        result: ExecutionResult,
        crashed: SimulatedCrash | None,
    ) -> None:
        if not sandbox.is_dir():
            return
        report = diagnose(sandbox, tmp_age_s=0.0)
        if report.clean:
            return
        kinds = tuple(sorted({f.kind for f in report.findings}))
        repair(report)
        result.observation.doctor_kinds = kinds
        result.observation.doctor_repaired = not report.unrepaired
        for kind in kinds:
            result.coverage.add(f"doctor:{kind}")
