"""Delta-debugging minimizer: shrink a failing variant's mutation chain.

A corpus entry records the exact chain of mutations that turned a seed
scenario into a failing variant.  Because :func:`~repro.fuzz.mutators
.apply_mutation` is pure, any *subset* of that chain is replayable — the
classic ddmin algorithm applies directly: drop chunks of the chain,
re-execute the resulting scenario through the sandbox runner, and keep
the reduction whenever the oracle still reports the original failure
kinds.  The result is a 1-minimal chain (no single mutation can be
removed) whose scenario is stored as a runnable reproducer.

Everything is deterministic: the subset order is fixed, execution is
seeded, and results are cached per chain so no subset runs twice.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.fuzz.executor import VariantRunner
from repro.fuzz.mutators import Mutation, apply_chain
from repro.fuzz.oracle import OracleVerdict, judge
from repro.fuzz.scenario import Scenario

__all__ = ["MinimizationResult", "minimize"]


@dataclass(frozen=True)
class MinimizationResult:
    """A 1-minimal reproducer for one failing variant."""

    scenario: Scenario
    chain: tuple[Mutation, ...]
    verdict: OracleVerdict
    executions: int

    @property
    def variant(self) -> str:
        return self.scenario.fingerprint()


def _chunks(chain: tuple[Mutation, ...], n: int) -> list[tuple[Mutation, ...]]:
    size, rem = divmod(len(chain), n)
    out, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < rem else 0)
        if end > start:
            out.append(chain[start:end])
        start = end
    return out


def minimize(
    seed_scenario: Scenario,
    chain: tuple[Mutation, ...] | list[Mutation],
    runner: VariantRunner,
    target_kinds: tuple[str, ...],
) -> MinimizationResult:
    """ddmin over *chain*: the smallest subset still producing every
    kind in *target_kinds* (judged by re-executing the variant)."""
    chain = tuple(chain)
    target = set(target_kinds) - {"clean", "rejected"}
    cache: dict[str, OracleVerdict] = {}
    executions = 0

    def verdict_of(candidate: tuple[Mutation, ...]) -> OracleVerdict:
        nonlocal executions
        key = json.dumps([m.to_json() for m in candidate], sort_keys=True)
        if key not in cache:
            scenario = apply_chain(seed_scenario, list(candidate))
            result = runner.run(scenario)
            executions += 1
            cache[key] = judge(result.observation)
        return cache[key]

    def still_fails(candidate: tuple[Mutation, ...]) -> bool:
        return target <= set(verdict_of(candidate).kinds)

    # The empty chain failing means the seed itself fails — minimal.
    if target and still_fails(()):
        return MinimizationResult(
            scenario=seed_scenario,
            chain=(),
            verdict=verdict_of(()),
            executions=executions,
        )

    n = 2
    while len(chain) >= 2:
        reduced = False
        for i in range(len(_chunks(chain, n))):
            candidate = _drop_chunk(chain, n, i)
            if still_fails(candidate):
                chain = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(chain):
                break
            n = min(len(chain), n * 2)

    return MinimizationResult(
        scenario=apply_chain(seed_scenario, list(chain)),
        chain=chain,
        verdict=verdict_of(chain),
        executions=executions,
    )


def _drop_chunk(
    chain: tuple[Mutation, ...], n: int, index: int
) -> tuple[Mutation, ...]:
    """The chain with its *index*-th of *n* chunks removed (by position)."""
    pieces = _chunks(chain, n)
    out: list[Mutation] = []
    for i, piece in enumerate(pieces):
        if i != index:
            out.extend(piece)
    return tuple(out)
