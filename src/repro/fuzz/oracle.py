"""The interestingness oracle: is a variant's behaviour a finding?

The fuzzer does not get an exit status from a subprocess — variants run
in-process through the real pipeline — so the oracle classifies the
richer record the executor collects:

===================  =======================================================
verdict kind         what it means
===================  =======================================================
``escape``           a non-``ReproError`` exception escaped the toolchain —
                     the contract every parser/engine layer promises never
                     to break; always a failure
``aver-fail``        the experiment ran but its Aver assertions (the
                     property oracle of the Popper convention) rejected the
                     results
``doctor``           ``popper doctor`` found repairable debris after a
                     *non-crash* run — state the toolchain should never
                     leave behind
``crash-debris``     an injected crash left damage the doctor could
                     diagnose but not fully repair
``degradation``      the regression-detector suite returned a firm
                     degradation verdict (suspicious, not failing)
``rejected``         the toolchain refused the input with a clean
                     ``ReproError`` — the *correct* response to garbage
``clean``            ran to completion, validations passed
===================  =======================================================

Severity folds the kinds down to one of ``failure`` / ``suspicious`` /
``boring``: failures enter the corpus and are minimized; suspicious
variants enter the corpus; boring ones survive only on novel coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Observation", "OracleVerdict", "judge"]

SEVERITY_FAILURE = "failure"
SEVERITY_SUSPICIOUS = "suspicious"
SEVERITY_BORING = "boring"

_FAILURE_KINDS = {"escape", "aver-fail", "doctor", "crash-debris"}
_SUSPICIOUS_KINDS = {"degradation"}


@dataclass(frozen=True)
class OracleVerdict:
    """What the oracle concluded about one executed variant."""

    kinds: tuple[str, ...]
    severity: str
    detail: str = ""

    @property
    def interesting(self) -> bool:
        return self.severity in (SEVERITY_FAILURE, SEVERITY_SUSPICIOUS)

    def to_json(self) -> dict:
        return {
            "kinds": list(self.kinds),
            "severity": self.severity,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "OracleVerdict":
        return cls(
            kinds=tuple(payload.get("kinds", ())),
            severity=str(payload.get("severity", SEVERITY_BORING)),
            detail=str(payload.get("detail", "")),
        )


def _severity(kinds: set[str]) -> str:
    if kinds & _FAILURE_KINDS:
        return SEVERITY_FAILURE
    if kinds & _SUSPICIOUS_KINDS:
        return SEVERITY_SUSPICIOUS
    return SEVERITY_BORING


@dataclass
class Observation:
    """The executor's raw record of one variant run (oracle input)."""

    outcome: str = "ok"  # ok | validation-failed | rejected | crash | escape
    detail: str = ""
    aver_passed: bool | None = None
    doctor_kinds: tuple[str, ...] = ()
    doctor_repaired: bool = True
    degradations: tuple[str, ...] = ()


def judge(observation: Observation) -> OracleVerdict:
    """Fold an executor observation into an :class:`OracleVerdict`."""
    kinds: set[str] = set()
    details: list[str] = []
    if observation.outcome == "escape":
        kinds.add("escape")
        details.append(observation.detail)
    elif observation.outcome == "rejected":
        kinds.add("rejected")
    if observation.aver_passed is False:
        kinds.add("aver-fail")
        details.append(observation.detail or "aver assertions rejected results")
    if observation.doctor_kinds:
        if observation.outcome == "crash":
            if not observation.doctor_repaired:
                kinds.add("crash-debris")
                details.append(
                    "unrepaired debris after crash: "
                    + ",".join(observation.doctor_kinds)
                )
        else:
            kinds.add("doctor")
            details.append(
                "doctor findings after clean run: "
                + ",".join(observation.doctor_kinds)
            )
    for change in observation.degradations:
        if change == "degradation":
            kinds.add("degradation")
            details.append("detector suite reports degradation")
            break
    if not kinds:
        kinds.add("clean" if observation.outcome != "crash" else "crash")
    return OracleVerdict(
        kinds=tuple(sorted(kinds)),
        severity=_severity(kinds),
        detail="; ".join(d for d in details if d),
    )
