"""The campaign driver: generate → execute → score → keep → minimize.

One :class:`FuzzCampaign` iteration:

1. derive the iteration's rng (``derive_seed(seed, "fuzz", i)`` — no
   global random state, so iterations are reorderable and reproducible);
2. pick a base: one of the repository's seed experiments or an already
   admitted corpus entry (mutating survivors is what makes the loop
   *coverage-guided* rather than blind);
3. stack one to three fresh mutations on the base's chain;
4. execute the variant in a sandbox (:class:`VariantRunner`), classify
   it (:func:`~repro.fuzz.oracle.judge`) and diff its behaviour against
   the persistent :class:`~repro.fuzz.coverage.CoverageMap`;
5. admit interesting-or-novel variants to the corpus; delta-debug
   failures down to minimal reproducers under ``.pvcs/fuzz/repro/``.

Everything the campaign writes under ``.pvcs/fuzz/`` is derived from
content alone — rerunning with the same seed and iteration budget in a
fresh repository reproduces the corpus, the coverage map and every
minimized reproducer byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import FuzzError
from repro.common.rng import derive_rng
from repro.core.repo import PopperRepository
from repro.fuzz.corpus import Corpus, CorpusEntry, FUZZ_DIR
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.executor import VariantRunner
from repro.fuzz.minimize import minimize
from repro.fuzz.mutators import (
    Mutation,
    apply_chain,
    apply_mutation,
    generate_mutation,
)
from repro.fuzz.oracle import SEVERITY_FAILURE, judge
from repro.fuzz.scenario import Scenario
from repro.monitor.journal import RunJournal
from repro.store import ArtifactStore

__all__ = ["FuzzReport", "FuzzCampaign"]

#: Index file for minimized reproducers (parallel to ``corpus.jsonl``).
REPRO_INDEX = "repro.jsonl"


@dataclass
class FuzzReport:
    """What one campaign did, for the CLI and the smoke job."""

    seed: int
    iterations: int
    executed: int = 0
    duplicates: int = 0
    outcomes: dict = field(default_factory=dict)
    failures: int = 0
    suspicious: int = 0
    admitted: int = 0
    novel_keys: int = 0
    coverage_size: int = 0
    corpus_size: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    minimized: list = field(default_factory=list)  # variant ids

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def describe(self) -> str:
        lines = [
            f"-- fuzz: seed={self.seed} iterations={self.iterations} "
            f"executed={self.executed} duplicates={self.duplicates}",
            "   outcomes: "
            + (
                ", ".join(
                    f"{k}={v}" for k, v in sorted(self.outcomes.items())
                )
                or "none"
            ),
            f"   corpus: +{self.admitted} admitted "
            f"({self.failures} failing, {self.suspicious} suspicious), "
            f"{self.corpus_size} total",
            f"   coverage: +{self.novel_keys} new key(s), "
            f"{self.coverage_size} total",
            f"   cache: {self.cache_hits} hit(s) / "
            f"{self.cache_misses} miss(es) across mutants "
            f"({self.cache_hit_rate:.0%} hit rate)",
        ]
        if self.minimized:
            lines.append(
                "   minimized reproducer(s): "
                + ", ".join(v[:16] for v in self.minimized)
            )
        return "\n".join(lines) + "\n"


class FuzzCampaign:
    """A seeded, deterministic fuzzing run over one repository."""

    def __init__(
        self,
        repo: PopperRepository,
        seed: int = 42,
        iterations: int = 16,
        experiments: list[str] | None = None,
        max_stack: int = 3,
        do_minimize: bool = True,
    ) -> None:
        self.repo = repo
        self.seed = int(seed)
        self.iterations = int(iterations)
        if self.iterations < 1:
            raise FuzzError(f"iterations must be >= 1, got {iterations}")
        names = experiments if experiments else repo.experiments()
        if not names:
            raise FuzzError("no experiments to fuzz; `popper add` one first")
        self.seeds: dict[str, Scenario] = {
            name: Scenario.from_experiment(repo, name) for name in names
        }
        self.max_stack = max(1, int(max_stack))
        self.do_minimize = bool(do_minimize)
        self.state_root: Path = repo.vcs.meta / FUZZ_DIR
        self.coverage = CoverageMap(self.state_root / "coverage.jsonl")
        self.corpus = Corpus(self.state_root / "corpus")
        self.reproducers = Corpus(
            self.state_root / "repro", index_name=REPRO_INDEX
        )
        self.runner = VariantRunner(
            self.state_root / "work",
            seed=self.seed,
            artifact_store=ArtifactStore(self.state_root / "cache"),
        )

    # -- base selection ------------------------------------------------------
    def _bases(self) -> list[tuple[Scenario, tuple[Mutation, ...]]]:
        """Mutation bases: every seed scenario plus every corpus entry
        (as its seed scenario + recorded chain), in a stable order."""
        bases: list[tuple[Scenario, tuple[Mutation, ...]]] = [
            (self.seeds[name], ()) for name in sorted(self.seeds)
        ]
        for entry in self.corpus.entries():
            seed_scenario = self.seeds.get(entry.scenario.name)
            if seed_scenario is not None:
                bases.append((seed_scenario, entry.chain))
        return bases

    # -- the loop ------------------------------------------------------------
    def run(self, journal: RunJournal | None = None) -> FuzzReport:
        try:
            return self._run(journal)
        finally:
            # Commit the persistent group-commit writers: the coverage
            # map and corpus indexes batched their fsyncs across the
            # campaign's whole append loop.
            self.coverage.close()
            self.corpus.close()
            self.reproducers.close()

    def _run(self, journal: RunJournal | None = None) -> FuzzReport:
        report = FuzzReport(seed=self.seed, iterations=self.iterations)
        seen: set[str] = set(
            record.get("variant", "") for record in self.corpus.index_records()
        )
        minimized_signatures: set[tuple[str, ...]] = set()
        if journal is not None:
            journal.event(
                "run_start",
                fuzz=True,
                seed=self.seed,
                iterations=self.iterations,
                experiments=sorted(self.seeds),
            )
        for iteration in range(self.iterations):
            rng = derive_rng(self.seed, "fuzz", iteration)
            bases = self._bases()
            base_scenario, base_chain = bases[int(rng.integers(len(bases)))]
            chain = list(base_chain)
            scenario = apply_chain(base_scenario, chain)
            for _ in range(1 + int(rng.integers(self.max_stack))):
                mutation = generate_mutation(scenario, rng)
                chain.append(mutation)
                scenario = apply_mutation(scenario, mutation)
            variant = scenario.fingerprint()
            if variant in seen:
                report.duplicates += 1
                continue
            seen.add(variant)

            result = self.runner.run(scenario)
            report.executed += 1
            report.outcomes[result.outcome] = (
                report.outcomes.get(result.outcome, 0) + 1
            )
            report.cache_hits += result.cache_hits
            report.cache_misses += result.cache_misses
            verdict = judge(result.observation)
            novel = self.coverage.observe(variant, result.coverage)
            report.novel_keys += len(novel)
            if verdict.severity == SEVERITY_FAILURE:
                report.failures += 1
            elif verdict.interesting:
                report.suspicious += 1
            if journal is not None:
                journal.event(
                    "fuzz_variant",
                    variant=variant,
                    iteration=iteration,
                    outcome=result.outcome,
                    severity=verdict.severity,
                    kinds=list(verdict.kinds),
                    chain=len(chain),
                    novel=len(novel),
                )
            if not (verdict.interesting or novel):
                continue
            entry = CorpusEntry(
                variant=variant,
                scenario=scenario,
                chain=tuple(chain),
                verdict=verdict,
                outcome=result.outcome,
                detail=result.detail,
                novel=tuple(sorted(novel)),
            )
            self.corpus.add(entry)
            report.admitted += 1
            if self.do_minimize and verdict.severity == SEVERITY_FAILURE:
                signature = (base_scenario.name,) + verdict.kinds
                if signature not in minimized_signatures:
                    minimized_signatures.add(signature)
                    self._minimize(entry, base_scenario, report, journal)

        report.coverage_size = len(self.coverage)
        report.corpus_size = len(self.corpus)
        return report

    def _minimize(
        self,
        entry: CorpusEntry,
        seed_scenario: Scenario,
        report: FuzzReport,
        journal: RunJournal | None,
    ) -> None:
        minimal = minimize(
            seed_scenario, entry.chain, self.runner, entry.verdict.kinds
        )
        self.reproducers.add(
            CorpusEntry(
                variant=minimal.variant,
                scenario=minimal.scenario,
                chain=minimal.chain,
                verdict=minimal.verdict,
                outcome=entry.outcome,
                detail=entry.detail,
            )
        )
        report.minimized.append(minimal.variant)
        if journal is not None:
            journal.event(
                "fuzz_minimized",
                variant=entry.variant,
                minimal=minimal.variant,
                chain=len(entry.chain),
                minimal_chain=len(minimal.chain),
                executions=minimal.executions,
            )
