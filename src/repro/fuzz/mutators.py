"""Rule-based scenario mutation (the Perun-style generation half).

Mutations are split in two so the delta-debugging minimizer can replay
arbitrary subsets of a variant's history:

* :func:`generate_mutation` consumes randomness (a seeded numpy
  ``Generator``) and produces a :class:`Mutation` — a rule name plus a
  JSON-serializable argument mapping.
* :func:`apply_mutation` is a *pure* function from (scenario, mutation)
  to a new scenario.  No randomness, no clock: replaying the same chain
  over the same seed scenario always yields byte-identical content.

A mutation whose precondition no longer holds (its key was dropped by an
earlier chain member, say) applies as a no-op rather than erroring —
ddmin subsets stay well-formed without special-casing.

The rule inventory covers every input surface ISSUE 8 names: ``vars.yml``
parameter spaces (numeric widening, boundary values, type flips, dropped
keys, list reshaping), pipeline stage lists (``optional_stages``),
``.travis.yml`` env matrices, playbook inventories / host counts, and the
FaultPlan / CrashPlan injection grammars — including deliberately garbled
specs that probe the parsers' clean-``ReproError`` contract.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.common import minyaml
from repro.common.errors import FuzzError, YamlError
from repro.fuzz.scenario import Scenario

__all__ = [
    "Mutation",
    "MUTATION_RULES",
    "apply_mutation",
    "apply_chain",
    "generate_mutation",
    "generate_serve_payload",
]


@dataclass(frozen=True)
class Mutation:
    """One named, replayable rewrite of a scenario."""

    rule: str
    args: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {"rule": self.rule, "args": dict(self.args)}

    @classmethod
    def from_json(cls, payload: dict) -> "Mutation":
        try:
            return cls(rule=str(payload["rule"]), args=dict(payload["args"]))
        except (KeyError, TypeError) as exc:
            raise FuzzError(f"bad mutation record: {exc}") from exc

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.args.items()))
        return f"{self.rule}({inner})"


# ---------------------------------------------------------------------------
# Value pools (all deterministic constants — the rng only *selects*)
# ---------------------------------------------------------------------------

_WIDEN_FACTORS = (0, -1, 2, 10, 100)
_BOUNDARY_VALUES = (0, -1, 1, 2**31 - 1, 10**9, 0.0, -0.5, 1e-9)
_TYPE_FLIPS = ("string", "list", "null", "bool")
_LIST_OPS = ("empty", "dup", "widen", "negate")

#: Pipeline stages that may legally be marked optional (``run`` may not).
_OPTIONAL_STAGE_POOL = (
    ["visualize"],
    ["postprocess", "visualize"],
    ["baseline"],
    ["baseline", "visualize"],
    ["does-not-exist"],
    [],
)

#: Task-id globs for fault specs: pipeline stage ids plus wildcards.
_FAULT_TARGETS = ("run", "setup", "baseline", "postprocess", "visualize",
                  "validate", "exp-*", "*")
_FAULT_CLAUSES = (
    "flaky:{t}:1", "flaky:{t}:2", "fail:{t}", "delay:{t}:0", "rate:{t}:0.5",
    "rate:{t}:1", "rate:{t}:0",
)

#: The wired crashpoints plus globs over them.
_CRASH_TARGETS = (
    "cas.ingest.tmp", "cas.ingest.publish", "index.record", "refs.update",
    "runstate.append.torn", "journal.append.torn", "fsutil.atomic_write.tmp",
    "fsutil.atomic_write.rename", "queue.claim", "queue.publish",
    "cas.*", "queue.*", "*.torn", "fsutil.*", "*",
)
_CRASH_CLAUSES = ("at:{t}:1", "at:{t}:2", "at:{t}:3", "rate:{t}:0.5",
                  "rate:{t}:1")

#: Garbled injection specs: must be *rejected cleanly*, never traceback.
_GARBLED_SPECS = (
    "", ",,,", "at::1", "at:x:", "rate:x:2", "rate:x:-1", "bogus:x:1",
    "at:x:nan", "at:x:inf", "at:x:0", "at:x:1.5", "flaky:run:nan",
    "fail:run:1", "delay:run:-1", "rate:run:inf", ":::", "at",
)

#: Travis env lines: well-formed single tokens and deliberately odd ones.
_TRAVIS_ENV_LINES = (
    "POPPER_RUN_MODE=--chaos-smoke", "POPPER_RUN_MODE=--cache-check",
    "POPPER_RUN_MODE=", "EXTRA=1 POPPER_RUN_MODE=--chaos-smoke",
    "NOVALUE",
)

_HOST_COUNTS = (0, 1, 2, 3, 5, 8)


# ---------------------------------------------------------------------------
# Application (pure)
# ---------------------------------------------------------------------------

def _parse_or_none(text: str):
    try:
        return minyaml.loads(text)
    except YamlError:
        return None


def _mutate_vars(scenario: Scenario, mutation: Mutation) -> Scenario:
    doc = _parse_or_none(scenario.files.get("vars.yml", ""))
    if not isinstance(doc, dict):
        return scenario
    variables = dict(doc)
    rule, args = mutation.rule, mutation.args
    key = args.get("key")
    if rule == "vars-widen":
        value = variables.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return scenario
        widened = value * args["factor"]
        variables[key] = int(widened) if isinstance(value, int) else widened
    elif rule == "vars-boundary":
        if key not in variables:
            return scenario
        variables[key] = args["value"]
    elif rule == "vars-type-flip":
        if key not in variables:
            return scenario
        value, kind = variables[key], args["kind"]
        if kind == "string":
            variables[key] = f"not-a-number-{value}"
        elif kind == "list":
            variables[key] = [value, value]
        elif kind == "null":
            variables[key] = None
        elif kind == "bool":
            variables[key] = True
    elif rule == "vars-drop":
        if key not in variables or key == "runner":
            return scenario
        del variables[key]
    elif rule == "vars-list":
        value = variables.get(key)
        if not isinstance(value, list):
            return scenario
        op = args["op"]
        if op == "empty":
            variables[key] = []
        elif op == "dup":
            variables[key] = value + value
        elif op == "widen":
            variables[key] = [
                v * 10 if isinstance(v, (int, float)) and not isinstance(v, bool)
                else v
                for v in value
            ]
        elif op == "negate":
            variables[key] = [
                -v if isinstance(v, (int, float)) and not isinstance(v, bool)
                else v
                for v in value
            ]
    elif rule == "stages-optional":
        variables["optional_stages"] = list(args["stages"])
    elif rule == "seed-set":
        variables["seed"] = args["value"]
    else:  # pragma: no cover - guarded by the dispatch table
        raise FuzzError(f"unknown vars mutation {rule!r}")
    return scenario.with_vars(variables)


def _mutate_travis(scenario: Scenario, mutation: Mutation) -> Scenario:
    rule, args = mutation.rule, mutation.args
    if rule == "travis-garble":
        # Deliberately invalid CI input; the static probe must reject it
        # with a clean CIError/YamlError, never a traceback.
        return replace(scenario, travis=args["text"])
    doc = _parse_or_none(scenario.travis or "")
    if not isinstance(doc, dict):
        return scenario
    doc = dict(doc)
    env = list(doc.get("env") or [])
    if rule == "travis-env-add":
        env.append(args["line"])
    elif rule == "travis-env-drop":
        if not env:
            return scenario
        env.pop(int(args["index"]) % len(env))
    else:  # pragma: no cover - guarded by the dispatch table
        raise FuzzError(f"unknown travis mutation {rule!r}")
    doc["env"] = env
    return replace(scenario, travis=minyaml.dumps(doc))


def _mutate_scalar_field(scenario: Scenario, mutation: Mutation) -> Scenario:
    rule, args = mutation.rule, mutation.args
    if rule == "hosts-set":
        return replace(scenario, host_count=int(args["count"]))
    if rule == "fault-spec":
        return replace(scenario, fault_spec=args["spec"])
    if rule == "crash-spec":
        return replace(scenario, crash_spec=args["spec"])
    raise FuzzError(f"unknown scalar mutation {rule!r}")  # pragma: no cover


def _mutate_aver(scenario: Scenario, mutation: Mutation) -> Scenario:
    source = scenario.files.get("validations.aver")
    if source is None:
        return scenario
    find, replacement = mutation.args["find"], mutation.args["replace"]
    if find not in source:
        return scenario
    return scenario.with_file(
        "validations.aver", source.replace(find, replacement, 1)
    )


#: rule name -> (applier, generator); the single source of truth.
MUTATION_RULES: dict = {}


def apply_mutation(scenario: Scenario, mutation: Mutation) -> Scenario:
    """Apply one mutation; pure and total (bad preconditions no-op)."""
    try:
        applier = MUTATION_RULES[mutation.rule][0]
    except KeyError:
        raise FuzzError(f"unknown mutation rule {mutation.rule!r}") from None
    return applier(scenario, mutation)


def apply_chain(scenario: Scenario, chain: list[Mutation]) -> Scenario:
    """Fold a mutation chain over a seed scenario, left to right."""
    for mutation in chain:
        scenario = apply_mutation(scenario, mutation)
    return scenario


# ---------------------------------------------------------------------------
# Generation (seeded)
# ---------------------------------------------------------------------------

def _pick(rng, pool):
    return pool[int(rng.integers(len(pool)))]


def _numeric_keys(scenario: Scenario) -> list[str]:
    doc = _parse_or_none(scenario.files.get("vars.yml", ""))
    if not isinstance(doc, dict):
        return []
    return sorted(
        k for k, v in doc.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    )


def _all_keys(scenario: Scenario) -> list[str]:
    doc = _parse_or_none(scenario.files.get("vars.yml", ""))
    return sorted(doc) if isinstance(doc, dict) else []


def _list_keys(scenario: Scenario) -> list[str]:
    doc = _parse_or_none(scenario.files.get("vars.yml", ""))
    if not isinstance(doc, dict):
        return []
    return sorted(k for k, v in doc.items() if isinstance(v, list))


def _gen_vars_widen(scenario, rng):
    keys = _numeric_keys(scenario)
    if not keys:
        return None
    return Mutation("vars-widen", {
        "key": _pick(rng, keys), "factor": _pick(rng, _WIDEN_FACTORS),
    })


def _gen_vars_boundary(scenario, rng):
    keys = _numeric_keys(scenario)
    if not keys:
        return None
    return Mutation("vars-boundary", {
        "key": _pick(rng, keys), "value": _pick(rng, _BOUNDARY_VALUES),
    })


def _gen_vars_type_flip(scenario, rng):
    keys = _numeric_keys(scenario)
    if not keys:
        return None
    return Mutation("vars-type-flip", {
        "key": _pick(rng, keys), "kind": _pick(rng, _TYPE_FLIPS),
    })


def _gen_vars_drop(scenario, rng):
    keys = [k for k in _all_keys(scenario) if k != "runner"]
    if not keys:
        return None
    return Mutation("vars-drop", {"key": _pick(rng, keys)})


def _gen_vars_list(scenario, rng):
    keys = _list_keys(scenario)
    if not keys:
        return None
    return Mutation("vars-list", {
        "key": _pick(rng, keys), "op": _pick(rng, _LIST_OPS),
    })


def _gen_stages(scenario, rng):
    return Mutation(
        "stages-optional", {"stages": list(_pick(rng, _OPTIONAL_STAGE_POOL))}
    )


def _gen_seed(scenario, rng):
    return Mutation("seed-set", {"value": int(rng.integers(0, 10_000))})


def _gen_travis_add(scenario, rng):
    if scenario.travis is None:
        return None
    return Mutation("travis-env-add", {"line": _pick(rng, _TRAVIS_ENV_LINES)})


def _gen_travis_drop(scenario, rng):
    if scenario.travis is None:
        return None
    return Mutation("travis-env-drop", {"index": int(rng.integers(0, 8))})


def _gen_travis_garble(scenario, rng):
    bad = (
        "env: [a: b\n", "language: python\nenv:\n  oops\n", "\t- tabs\n",
        "script: {unclosed\n", "language: python\nscript: 42\n",
    )
    return Mutation("travis-garble", {"text": _pick(rng, bad)})


def _gen_hosts(scenario, rng):
    return Mutation("hosts-set", {"count": _pick(rng, _HOST_COUNTS)})


def _gen_fault_spec(scenario, rng):
    if rng.random() < 0.25:
        return Mutation("fault-spec", {"spec": _pick(rng, _GARBLED_SPECS)})
    clause = _pick(rng, _FAULT_CLAUSES).format(t=_pick(rng, _FAULT_TARGETS))
    return Mutation("fault-spec", {"spec": clause})


def _gen_crash_spec(scenario, rng):
    if rng.random() < 0.25:
        return Mutation("crash-spec", {"spec": _pick(rng, _GARBLED_SPECS)})
    clause = _pick(rng, _CRASH_CLAUSES).format(t=_pick(rng, _CRASH_TARGETS))
    return Mutation("crash-spec", {"spec": clause})


def _gen_aver_tighten(scenario, rng):
    source = scenario.files.get("validations.aver", "")
    # Tighten the first "> <number>" comparison into an unreachable bound.
    match = re.search(r">\s*([0-9.]+)", source)
    if not match:
        return None
    return Mutation("aver-rewrite", {
        "find": match.group(0),
        "replace": f"> {_pick(rng, (1000, 10**6, 10**9))}",
    })


MUTATION_RULES.update({
    "vars-widen": (_mutate_vars, _gen_vars_widen),
    "vars-boundary": (_mutate_vars, _gen_vars_boundary),
    "vars-type-flip": (_mutate_vars, _gen_vars_type_flip),
    "vars-drop": (_mutate_vars, _gen_vars_drop),
    "vars-list": (_mutate_vars, _gen_vars_list),
    "stages-optional": (_mutate_vars, _gen_stages),
    "seed-set": (_mutate_vars, _gen_seed),
    "travis-env-add": (_mutate_travis, _gen_travis_add),
    "travis-env-drop": (_mutate_travis, _gen_travis_drop),
    "travis-garble": (_mutate_travis, _gen_travis_garble),
    "hosts-set": (_mutate_scalar_field, _gen_hosts),
    "fault-spec": (_mutate_scalar_field, _gen_fault_spec),
    "crash-spec": (_mutate_scalar_field, _gen_crash_spec),
    "aver-rewrite": (_mutate_aver, _gen_aver_tighten),
})

#: Stable generation order (dict order is insertion order, but be explicit).
_RULE_ORDER = tuple(sorted(MUTATION_RULES))


def generate_mutation(scenario: Scenario, rng) -> Mutation:
    """Draw one applicable mutation for *scenario* from the seeded *rng*.

    Rules whose preconditions fail (no numeric vars, no travis file...)
    yield ``None`` from their generator and another rule is drawn; the
    all-purpose rules (``seed-set``, ``hosts-set``, spec synthesis)
    guarantee termination.
    """
    while True:
        rule = _RULE_ORDER[int(rng.integers(len(_RULE_ORDER)))]
        mutation = MUTATION_RULES[rule][1](scenario, rng)
        if mutation is not None:
            return mutation


# ---------------------------------------------------------------------------
# Serve-API payload grammar (adversarial HTTP bodies)
# ---------------------------------------------------------------------------

#: Experiment names a hostile or confused client might submit.
_SERVE_EXPERIMENTS = (
    "alpha", "exp", "", " ", "../../etc/passwd", "exp\x00null",
    "e" * 200, "ëxpérïment", "exp;rm -rf /", "None", "..",
)

#: Tenant ids probing the ``TENANT_RE`` admission gate.
_SERVE_TENANTS = (
    "default", "tenant-1", "", " ", "../x", "t/t", "a" * 64, "a" * 65,
    ".leading-dot", "ünïcode", "-dash-first",
)

#: Structurally broken bodies: each must get a clean 400, never a 500.
_SERVE_BROKEN_BODIES = (
    b"", b"{", b"{not json", b"[1, 2, 3]", b'"just a string"', b"42",
    b"null", b"true", b'{"experiment": }', b"\xff\xfe not utf-8",
    b'{"experiment": "a"' + b" " * 512,  # truncated object, padded
    b"[" * 600 + b"]" * 600,             # deeply nested, still valid JSON
)


def generate_serve_payload(rng) -> bytes:
    """Draw one adversarial ``POST /v1/jobs`` body from the seeded *rng*.

    The grammar mixes structurally broken bodies with well-formed JSON
    whose *fields* are hostile: wrong types, bogus tenants, path-shaped
    experiment names, and oversized padding that trips the 64 KiB
    admission bound.  The serve API's contract — checked by the
    adversarial tests — is a clean 4xx JSON error for every one of
    these, never a traceback and never a 500.  Deterministic: the same
    rng state yields the same byte sequence.
    """
    import json

    shape = int(rng.integers(6))
    if shape == 0:
        return bytes(_pick(rng, _SERVE_BROKEN_BODIES))
    if shape == 1:
        # Well-formed JSON, wrong field types.
        experiment = _pick(
            rng, (42, None, True, ["alpha"], {"name": "alpha"}, 1.5)
        )
        return json.dumps({"experiment": experiment}).encode("utf-8")
    if shape == 2:
        # Hostile tenant against the admission regex.
        return json.dumps(
            {
                "experiment": _pick(rng, _SERVE_EXPERIMENTS),
                "tenant": _pick(rng, _SERVE_TENANTS),
            }
        ).encode("utf-8")
    if shape == 3:
        # Unknown / path-shaped experiment names, tenant omitted.
        return json.dumps(
            {"experiment": _pick(rng, _SERVE_EXPERIMENTS)}
        ).encode("utf-8")
    if shape == 4:
        # Oversized body: valid JSON padded past the 64 KiB bound.
        pad = "x" * int(rng.integers(65_536, 80_000))
        return json.dumps(
            {"experiment": "alpha", "padding": pad}
        ).encode("utf-8")
    # Extra unknown fields riding along a plausible submission.
    return json.dumps(
        {
            "experiment": _pick(rng, _SERVE_EXPERIMENTS),
            "tenant": "default",
            "priority": int(rng.integers(-5, 5)),
            "unknown": {"nested": [None, {}]},
        }
    ).encode("utf-8")
