"""The corpus: interesting variants, stored as runnable experiments.

Layout under the host repository's ``.pvcs/fuzz/``::

    corpus.jsonl                durable append-only index (one record
                                per admitted variant; torn-tail tolerant)
    corpus/<variant16>/
        meta.json               scenario + mutation chain + verdict
        experiment/...          the variant's experiment files, ready to
                                copy into any repo and `popper run`
    repro/<variant16>/          minimized reproducers, same layout

Every file is content-derived — variant ids are scenario fingerprints
and no record carries a timestamp — so two campaigns with the same seed
produce byte-identical corpus trees (the determinism acceptance test
diffs them).  ``meta.json`` lands via ``atomic_write`` and the index
through one persistent group-commit writer (admission loops used to
reopen and fsync the index per entry), the same durable-write contract
as the rest of the store; ``popper doctor`` knows how to repair a torn
index and sweep a variant directory whose ``meta.json`` never landed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import FuzzError
from repro.common.fsutil import atomic_write, ensure_dir
from repro.common.groupcommit import GroupCommitWriter
from repro.fuzz.mutators import Mutation
from repro.fuzz.oracle import OracleVerdict
from repro.fuzz.scenario import Scenario

__all__ = ["CorpusEntry", "Corpus", "FUZZ_DIR", "CORPUS_INDEX"]

#: Fuzz state root, relative to the repository's ``.pvcs`` directory.
FUZZ_DIR = "fuzz"
CORPUS_INDEX = "corpus.jsonl"

META_FILE = "meta.json"
EXPERIMENT_DIR = "experiment"


@dataclass(frozen=True)
class CorpusEntry:
    """One admitted variant: scenario, provenance, and verdict."""

    variant: str
    scenario: Scenario
    chain: tuple[Mutation, ...]
    verdict: OracleVerdict
    outcome: str
    detail: str = ""
    novel: tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {
            "variant": self.variant,
            "scenario": self.scenario.to_json(),
            "chain": [m.to_json() for m in self.chain],
            "verdict": self.verdict.to_json(),
            "outcome": self.outcome,
            "detail": self.detail,
            "novel": list(self.novel),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CorpusEntry":
        try:
            return cls(
                variant=str(payload["variant"]),
                scenario=Scenario.from_json(payload["scenario"]),
                chain=tuple(
                    Mutation.from_json(m) for m in payload.get("chain", [])
                ),
                verdict=OracleVerdict.from_json(payload.get("verdict", {})),
                outcome=str(payload.get("outcome", "")),
                detail=str(payload.get("detail", "")),
                novel=tuple(payload.get("novel", ())),
            )
        except (KeyError, TypeError) as exc:
            raise FuzzError(f"bad corpus entry: {exc}") from exc


class Corpus:
    """Variant storage under one directory (``corpus/`` or ``repro/``)."""

    def __init__(self, root: str | Path, index_name: str = CORPUS_INDEX) -> None:
        self.root = Path(root)
        self.index_path = self.root.parent / index_name
        self.directory = self.root
        self._writer: GroupCommitWriter | None = None

    # -- writes --------------------------------------------------------------
    def add(self, entry: CorpusEntry) -> Path:
        """Persist one entry; idempotent per variant id."""
        target = self.directory / entry.variant[:16]
        ensure_dir(target)
        entry.scenario.write_files(target / EXPERIMENT_DIR)
        # meta.json last: a directory without it is a partial entry the
        # doctor sweeps, never a half-readable one.
        atomic_write(
            target / META_FILE,
            json.dumps(entry.to_json(), sort_keys=True, indent=1).encode("utf-8"),
        )
        record = {
            "variant": entry.variant,
            "severity": entry.verdict.severity,
            "kinds": list(entry.verdict.kinds),
            "outcome": entry.outcome,
            "novel": list(entry.novel),
        }
        if self._writer is None or self._writer.closed:
            self._writer = GroupCommitWriter(
                self.index_path, durable=True, crash_label="fuzz.corpus"
            )
        self._writer.append(json.dumps(record, sort_keys=True))
        return target

    def flush(self) -> None:
        """Commit the index writer's open window."""
        if self._writer is not None and not self._writer.closed:
            self._writer.flush()

    def close(self) -> None:
        """Commit and release the persistent index writer."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # -- reads ---------------------------------------------------------------
    def variants(self) -> list[str]:
        """Variant ids with a complete (meta-carrying) directory."""
        if not self.directory.is_dir():
            return []
        return sorted(
            p.name
            for p in self.directory.iterdir()
            if (p / META_FILE).is_file()
        )

    def load(self, variant: str) -> CorpusEntry:
        path = self.directory / variant[:16] / META_FILE
        if not path.is_file():
            raise FuzzError(f"no corpus entry for variant {variant!r}")
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise FuzzError(f"corrupt corpus entry {path}: {exc}") from exc
        return CorpusEntry.from_json(payload)

    def entries(self) -> list[CorpusEntry]:
        return [self.load(v) for v in self.variants()]

    def index_records(self) -> list[dict]:
        """Parse the index, skipping a torn trailing line."""
        if not self.index_path.is_file():
            return []
        records: list[dict] = []
        for line in self.index_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def __len__(self) -> int:
        return len(self.variants())
