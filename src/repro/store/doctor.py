"""``popper doctor``: scan ``.pvcs/`` for crash debris and repair it.

Every write path in the toolchain is designed so that a crash — a kill
signal, a power cut, an injected :class:`~repro.common.crash.CrashPlan`
— leaves one of a small, known set of artifacts:

========================  ========================================  ==============================
debris                    produced by                               repair
========================  ========================================  ==============================
stale lock metadata       holder died while holding a RepoLock      truncate the lock file
orphan temp file          crash between mkstemp and os.replace      unlink (content is elsewhere
                                                                    or will be re-produced)
torn JSONL tail           crash mid-append to a journal/run-state   truncate to the last complete
                                                                    line (the interrupted task has
                                                                    no record and simply re-runs)
partial index record      crash mid-publish of an artifact record   unlink (equivalent to a miss)
dangling index record     record published, objects swept/lost      unlink (lookup treats it as a
                                                                    miss anyway; doctor tidies)
quarantined object        read-time integrity check failed          report only (a re-run heals
                                                                    the pool; see cache verify)
stale fuzz sandbox        fuzz campaign killed mid-variant          remove the tree (sandboxes
                          (``.pvcs/fuzz/work/``)                    are disposable scratch repos)
partial corpus entry      crash between a fuzz corpus entry's       remove the tree (meta.json is
                          files and its ``meta.json``               published last; nothing
                                                                    admitted is lost)
unindexed pack            crash between pack publish and index      rebuild the index from the
                          write (``pack.publish``)                  self-describing pack (unlink
                                                                    if its checksum fails — the
                                                                    loose copies still exist)
dangling pack index       pack swept, index unlink crashed          unlink (nothing references a
                                                                    pack that is gone)
truncated pack            pack body fails its trailer checksum      quarantine pack + index (the
                                                                    referenced records then show
                                                                    up dangling and re-run)
stale queue lease         serve daemon (or its host) died while     unlink (the queue journal is
                          holding a job lease                       the truth; recovery re-leases
                          (``.pvcs/queue/leases/``)                 from the journal alone)
partial queue result      crash mid-write of a job result file      unlink (the completed journal
                          (``.pvcs/queue/results/``)                record keeps the job done; an
                                                                    incomplete one re-runs it)
========================  ========================================  ==============================

Everything else on disk is either atomic (refs, config) or disposable
(workspace checkouts), so this table is the complete recovery story:
``popper doctor`` after *any* crash returns the repository to a state
where ``popper run --resume`` completes correctly.

``diagnose()`` only reports; ``repair()`` applies the table.  Both are
deliberately independent of the higher-level stores — doctor must work
precisely when the repository is too damaged for them to open.  (The
one exception is :mod:`repro.store.pack`, whose parser depends only on
``repro.common`` and is exactly what pack repair needs.)
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.locking import LockInfo
from repro.store.pack import PACK_DIR, PackError, _scan_pack, rebuild_index

__all__ = ["Finding", "DoctorReport", "diagnose", "repair"]

#: Temp-file prefixes the store layers create (mkstemp adds a random
#: suffix).  ``atomic_write`` temps are ``.{name}.XXXXXXXX`` — covered
#: by the "dotfile inside .pvcs" rule below.
_TEMP_PREFIXES = (".ingest-", ".mat-", ".pack-tmp-")

#: Directories whose *contents* are content-addressed payloads and must
#: never be parsed, repaired or deleted by name-pattern heuristics.
_OPAQUE_DIRS = {"objects", "quarantine"}

_META_DIR = ".pvcs"


@dataclass
class Finding:
    """One piece of crash debris (or unrepairable damage)."""

    kind: str
    path: Path
    detail: str = ""
    #: What repair() will do / did.  Empty means report-only.
    action: str = ""
    repaired: bool = False

    def describe(self) -> str:
        state = "repaired" if self.repaired else (
            "repairable" if self.action else "report-only"
        )
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{state}] {self.kind}: {self.path}{detail}"


@dataclass
class DoctorReport:
    """Everything one doctor pass found (and possibly fixed)."""

    root: Path
    findings: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def repairable(self) -> list[Finding]:
        return [f for f in self.findings if f.action]

    @property
    def unrepaired(self) -> list[Finding]:
        return [f for f in self.findings if f.action and not f.repaired]

    def describe(self) -> str:
        if self.clean:
            return f"-- doctor: {self.root} is clean\n"
        lines = [f"-- doctor: {len(self.findings)} finding(s) in {self.root}"]
        for finding in self.findings:
            lines.append("   " + finding.describe())
        return "\n".join(lines) + "\n"


def _in_opaque_dir(path: Path, root: Path) -> bool:
    return bool(_OPAQUE_DIRS & set(path.relative_to(root).parts[:-1]))


def _jsonl_repaired(raw: bytes) -> bytes | None:
    """The content a torn JSONL file should be truncated to, or ``None``
    when the tail is healthy.

    A crashed append leaves dangling bytes after the last newline (a
    single flushed write can only be cut short, never split across
    lines); a newline-terminated final line that fails to parse is also
    treated as torn for robustness.
    """
    cut = raw.rfind(b"\n")
    tail = raw[cut + 1 :]
    if tail.strip():
        try:
            json.loads(tail)
        except (json.JSONDecodeError, ValueError):
            return raw[: cut + 1]
        # The record landed whole, only its terminator is missing (the
        # write was cut exactly before the newline): keep it.
        return raw + b"\n"
    if cut >= 0:
        head, _, last = raw[:cut].rpartition(b"\n")
        if last.strip():
            try:
                json.loads(last)
            except (json.JSONDecodeError, ValueError):
                return raw[: len(head) + 1] if head else b""
    return None


def _iter_meta_files(root: Path):
    """Every regular file under the repository's ``.pvcs`` trees."""
    for meta in sorted(root.rglob(_META_DIR)):
        if not meta.is_dir():
            continue
        for dirpath, dirnames, filenames in os.walk(meta):
            dirnames.sort()
            for name in sorted(filenames):
                yield Path(dirpath) / name


def _scan_locks(root: Path, findings: list[Finding]) -> None:
    """Lock files whose recorded holder is dead: stale metadata.

    With flock the kernel already released the lock — the metadata is
    cosmetic but misleading ("held by pid N" for a pid that no longer
    exists); in the O_EXCL fallback the file itself wedges writers, so
    clearing it is load-bearing.
    """
    candidates = [
        p for p in root.rglob("*.lock") if p.is_file() and _META_DIR in p.parts
    ]
    for path in sorted(candidates):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        if not text.strip():
            continue  # released cleanly; empty file is the normal state
        info = LockInfo.from_json(text)
        if info is None:
            findings.append(
                Finding(
                    kind="stale-lock",
                    path=path,
                    detail="unreadable holder metadata",
                    action="truncate",
                )
            )
        elif not info.alive():
            findings.append(
                Finding(
                    kind="stale-lock",
                    path=path,
                    detail=f"holder {info.describe()} is dead",
                    action="truncate",
                )
            )


def _scan_temps(root: Path, findings: list[Finding], tmp_age_s: float) -> None:
    """Orphan temp files a crash left between mkstemp and publish."""
    now = time.time()
    for path in _iter_meta_files(root):
        name = path.name
        is_temp = name.startswith(_TEMP_PREFIXES) or (
            name.startswith(".") and not name.endswith(".lock")
        )
        if not is_temp:
            continue
        try:
            age = now - path.stat().st_mtime
        except OSError:
            continue
        if age < tmp_age_s:
            # Could belong to a live writer; the age gate keeps doctor
            # safe to run next to an in-flight popper run.
            continue
        findings.append(
            Finding(
                kind="orphan-temp",
                path=path,
                detail=f"aged {age:.0f}s",
                action="unlink",
            )
        )


def _scan_jsonl(root: Path, findings: list[Finding]) -> None:
    """Journals / run-state files with a torn trailing line."""
    for path in sorted(root.rglob("*.jsonl")):
        if not path.is_file() or _in_opaque_dir(path, root):
            continue
        try:
            raw = path.read_bytes()
        except OSError:
            continue
        if not raw:
            continue
        repaired = _jsonl_repaired(raw)
        if repaired is not None:
            findings.append(
                Finding(
                    kind="torn-jsonl",
                    path=path,
                    detail=f"torn tail: {len(raw)} -> {len(repaired)} bytes",
                    action="rewrite tail",
                )
            )


def _packed_oids(objects_dir: Path) -> set[str]:
    """Object ids reachable through the pool's pack indexes.

    Reads the ``.idx`` JSON directly (no ContentStore) so the dangling-
    record scan stays honest after a repack moved objects out of the
    loose shards.  Unreadable indexes contribute nothing — their packs
    are handled by the pack scan.
    """
    oids: set[str] = set()
    pack_dir = objects_dir / PACK_DIR
    if not pack_dir.is_dir():
        return oids
    for idx in sorted(pack_dir.glob("*.idx")):
        if not (pack_dir / idx.name).with_suffix(".pack").is_file():
            continue
        try:
            doc = json.loads(idx.read_text(encoding="utf-8"))
            oids.update(str(oid) for oid in doc.get("objects", {}))
        except (OSError, ValueError, json.JSONDecodeError):
            continue
    return oids


def _scan_index(root: Path, findings: list[Finding]) -> None:
    """Artifact-index records that are partial or reference lost objects."""
    for index_dir in sorted(root.rglob(f"{_META_DIR}/cache/index")):
        if not index_dir.is_dir():
            continue
        objects_dir = index_dir.parent / "objects"
        packed = _packed_oids(objects_dir)
        for path in sorted(index_dir.glob("*.json")):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                if not isinstance(doc, dict) or "key" not in doc:
                    raise ValueError("not a record")
            except (OSError, ValueError, json.JSONDecodeError):
                findings.append(
                    Finding(
                        kind="partial-index-record",
                        path=path,
                        detail="unparseable record",
                        action="unlink",
                    )
                )
                continue
            missing = [
                str(out.get("oid", ""))
                for out in doc.get("outputs", [])
                if isinstance(out, dict)
                and len(str(out.get("oid", ""))) == 64
                and str(out["oid"]) not in packed
                and not (
                    objects_dir
                    / str(out["oid"])[:2]
                    / str(out["oid"])[2:]
                ).is_file()
            ]
            if missing:
                findings.append(
                    Finding(
                        kind="dangling-index-record",
                        path=path,
                        detail=f"references {len(missing)} missing object(s)",
                        action="unlink",
                    )
                )


def _scan_fuzz(root: Path, findings: list[Finding], tmp_age_s: float) -> None:
    """Debris a killed fuzz campaign leaves under ``.pvcs/fuzz/``.

    Sandboxes in ``work/`` are per-variant scratch repositories the
    runner removes after each execution — any that survive are stale
    (age-gated like temps, so doctor is safe next to a live campaign).
    Corpus/reproducer variant directories publish ``meta.json`` last; a
    directory without one is a partial admission with no index record.
    """
    now = time.time()
    for fuzz_dir in sorted(root.rglob(f"{_META_DIR}/fuzz")):
        if not fuzz_dir.is_dir():
            continue
        work = fuzz_dir / "work"
        if work.is_dir():
            for sandbox in sorted(work.iterdir()):
                if not sandbox.is_dir():
                    continue
                try:
                    age = now - sandbox.stat().st_mtime
                except OSError:
                    continue
                if age < tmp_age_s:
                    continue
                findings.append(
                    Finding(
                        kind="stale-fuzz-sandbox",
                        path=sandbox,
                        detail=f"aged {age:.0f}s",
                        action="remove tree",
                    )
                )
        for corpus_name in ("corpus", "repro"):
            corpus_dir = fuzz_dir / corpus_name
            if not corpus_dir.is_dir():
                continue
            for variant in sorted(corpus_dir.iterdir()):
                if variant.is_dir() and not (variant / "meta.json").is_file():
                    findings.append(
                        Finding(
                            kind="partial-corpus-entry",
                            path=variant,
                            detail="missing meta.json",
                            action="remove tree",
                        )
                    )


def _scan_packs(root: Path, findings: list[Finding]) -> None:
    """Packfile debris: the three states a crashed repack can leave.

    A pack without an index is a publish that never finished — the pack
    is self-describing, so the index rebuilds from it (the temp-file
    stage is covered by the orphan-temp scan).  An index without a pack
    is the tail of an interrupted sweep (packs are unlinked pack-first).
    A pack whose body fails its trailer checksum is truncated bit rot;
    quarantining it surfaces the loss through the dangling-record scan.
    """
    for pack_dir in sorted(root.rglob(PACK_DIR)):
        if (
            not pack_dir.is_dir()
            or _META_DIR not in pack_dir.parts
            or pack_dir.parent.name != "objects"
        ):
            continue
        for pack in sorted(pack_dir.glob("*.pack")):
            idx = pack.with_suffix(".idx")
            try:
                _scan_pack(pack)
            except PackError as exc:
                findings.append(
                    Finding(
                        kind="truncated-pack",
                        path=pack,
                        detail=str(exc),
                        action="quarantine pack",
                    )
                )
                continue
            if not idx.is_file():
                findings.append(
                    Finding(
                        kind="unindexed-pack",
                        path=pack,
                        detail="published without its index",
                        action="rebuild index",
                    )
                )
        for idx in sorted(pack_dir.glob("*.idx")):
            if not idx.with_suffix(".pack").is_file():
                findings.append(
                    Finding(
                        kind="dangling-pack-index",
                        path=idx,
                        detail="its pack is gone",
                        action="unlink",
                    )
                )


def _scan_queue(root: Path, findings: list[Finding]) -> None:
    """Debris a crashed ``popper serve`` daemon leaves under
    ``.pvcs/queue/``.

    The queue journal is the single source of truth, so every side file
    is reconstructible and safe to drop: a lease marker whose recorded
    holder pid is dead (or whose JSON never finished landing) belongs
    to a daemon that is gone — recovery re-leases from the journal and
    never reads the marker.  A result file that does not parse is the
    half of a ``queue.publish`` crash that lost the race: either the
    ``job_done`` record landed (the job is done regardless) or it did
    not (the lease expires and the job re-runs).  Live-pid leases are
    left strictly alone, so doctor is safe to run next to a serving
    daemon.
    """
    for queue_dir in sorted(root.rglob(f"{_META_DIR}/queue")):
        if not queue_dir.is_dir():
            continue
        leases = queue_dir / "leases"
        if leases.is_dir():
            for path in sorted(leases.glob("*.json")):
                try:
                    doc = json.loads(path.read_text(encoding="utf-8"))
                    pid = int(doc.get("pid", 0))
                except (OSError, ValueError, json.JSONDecodeError, TypeError):
                    findings.append(
                        Finding(
                            kind="stale-queue-lease",
                            path=path,
                            detail="unreadable lease marker",
                            action="unlink",
                        )
                    )
                    continue
                if pid > 0:
                    try:
                        os.kill(pid, 0)
                        continue  # the holder is alive; not our business
                    except ProcessLookupError:
                        pass
                    except PermissionError:
                        continue  # alive under another uid
                findings.append(
                    Finding(
                        kind="stale-queue-lease",
                        path=path,
                        detail=f"holder pid {pid} is dead",
                        action="unlink",
                    )
                )
        results = queue_dir / "results"
        if results.is_dir():
            for path in sorted(results.glob("*.json")):
                try:
                    doc = json.loads(path.read_text(encoding="utf-8"))
                    if not isinstance(doc, dict) or "job" not in doc:
                        raise ValueError("not a result record")
                except (OSError, ValueError, json.JSONDecodeError):
                    findings.append(
                        Finding(
                            kind="partial-queue-result",
                            path=path,
                            detail="unparseable result record",
                            action="unlink",
                        )
                    )


def _scan_quarantine(root: Path, findings: list[Finding]) -> None:
    for quarantine in sorted(root.rglob("quarantine")):
        if not quarantine.is_dir() or _META_DIR not in quarantine.parts:
            continue
        for path in sorted(quarantine.iterdir()):
            if path.is_file():
                findings.append(
                    Finding(
                        kind="quarantined-object",
                        path=path,
                        detail="failed its integrity check; a re-run heals",
                    )
                )


def diagnose(root: str | Path, tmp_age_s: float = 60.0) -> DoctorReport:
    """Scan a repository for crash debris; never modifies anything.

    *tmp_age_s* gates the orphan-temp scan: temps younger than this may
    belong to a concurrent writer and are left alone.
    """
    root = Path(root)
    report = DoctorReport(root=root)
    if not root.is_dir():
        return report
    _scan_locks(root, report.findings)
    _scan_temps(root, report.findings, tmp_age_s)
    _scan_jsonl(root, report.findings)
    _scan_packs(root, report.findings)
    _scan_index(root, report.findings)
    _scan_fuzz(root, report.findings, tmp_age_s)
    _scan_queue(root, report.findings)
    _scan_quarantine(root, report.findings)
    return report


def repair(report: DoctorReport) -> DoctorReport:
    """Apply each finding's repair action (idempotent; report-only
    findings are left untouched)."""
    for finding in report.findings:
        if not finding.action or finding.repaired:
            continue
        try:
            if finding.kind == "stale-lock":
                with open(finding.path, "r+b") as handle:
                    handle.truncate(0)
            elif finding.kind in (
                "orphan-temp",
                "partial-index-record",
                "dangling-index-record",
                "stale-queue-lease",
                "partial-queue-result",
            ):
                finding.path.unlink(missing_ok=True)
            elif finding.kind == "torn-jsonl":
                raw = finding.path.read_bytes()
                repaired_bytes = _jsonl_repaired(raw)
                if repaired_bytes is not None:
                    finding.path.write_bytes(repaired_bytes)
            elif finding.kind in ("stale-fuzz-sandbox", "partial-corpus-entry"):
                shutil.rmtree(finding.path, ignore_errors=True)
            elif finding.kind == "unindexed-pack":
                try:
                    rebuild_index(finding.path)
                except PackError:
                    # Self-check failed after all: the pack is not
                    # trustworthy and the loose copies it would have
                    # folded still exist (the sweep never ran).
                    finding.path.unlink(missing_ok=True)
            elif finding.kind == "dangling-pack-index":
                finding.path.unlink(missing_ok=True)
            elif finding.kind == "truncated-pack":
                objects_dir = finding.path.parent.parent
                quarantine = objects_dir.parent / "quarantine"
                if (objects_dir / "quarantine").is_dir():
                    quarantine = objects_dir / "quarantine"
                quarantine.mkdir(parents=True, exist_ok=True)
                os.replace(finding.path, quarantine / finding.path.name)
                idx = finding.path.with_suffix(".idx")
                if idx.is_file():
                    os.replace(idx, quarantine / idx.name)
            finding.repaired = True
        except OSError:
            finding.repaired = False
    return report
