"""The ``--store-smoke`` self-check: prove the storage hot path works.

CI jobs run ``popper run --all --store-smoke`` to exercise the packed
content-addressed store end-to-end in a scratch pool, in seconds:

1. ingest a spread of small objects — exact duplicates (dedup), near
   duplicates (delta fodder) and unique blobs;
2. repack the loose tail into one packfile and demand byte-identical
   reads for every object afterwards, with a clean fsck;
3. crash the repack at the ``pack.publish`` hazard (pack renamed in,
   index never written), run the doctor, and demand the rebuilt pool
   still serves every object byte for byte.

Like the other smoke modes it turns "the subsystem imports" into "the
subsystem survives the failure it was designed for".
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.common.crash import CrashPlan, SimulatedCrash, install_crash_plan
from repro.common.errors import StoreError
from repro.store.cas import ContentStore
from repro.store.doctor import diagnose, repair

__all__ = ["store_smoke"]


def _scratch_objects(count: int = 40) -> list[bytes]:
    """Deterministic payload spread: uniques, duplicates, near-twins.

    The near-twins share a long low-compressibility prefix and suffix
    around a small varying middle — the shape experiment outputs take
    (fixed headers and footers, a few changed cells) and exactly what
    the pack layer's affix-delta encoder is for.
    """
    import hashlib

    affix = hashlib.sha256(b"store-smoke").digest() * 24  # ~768 bytes
    payloads: list[bytes] = []
    for i in range(count):
        middle = (
            f"stage,iteration,latency_ms\n"
            f"smoke,{i},{10.0 + 0.25 * i:.2f}\n"
        ).encode("ascii")
        payloads.append(affix + middle + affix)  # near-twins: delta fodder
        if i % 4 == 0:
            payloads.append(payloads[0])         # exact duplicates: dedup
    return payloads


def _check_round_trip(store: ContentStore, expected: dict[str, bytes]) -> None:
    for oid, payload in sorted(expected.items()):
        got = store.get_bytes(oid)
        if got != payload:
            raise StoreError(
                f"store smoke: object {oid[:12]} read back differently "
                f"({len(got)} vs {len(payload)} bytes)"
            )


def store_smoke(root: str | Path | None = None) -> str:
    """Run the scratch-pool pack check; return a one-line summary.

    Raises :class:`StoreError` when any object fails to round-trip,
    when the repack leaves the pool unclean, or when the injected
    publish crash cannot be repaired by the doctor.
    """
    with tempfile.TemporaryDirectory(prefix="store-smoke-") as scratch:
        base = Path(root) if root is not None else Path(scratch)
        # The doctor scans .pvcs trees, so the scratch pool lives in one.
        pool_root = base / ".pvcs" / "cache"
        store = ContentStore(pool_root / "objects", durable=False)
        expected: dict[str, bytes] = {}
        for payload in _scratch_objects():
            expected[store.put_bytes(payload).oid] = payload
        _check_round_trip(store, expected)

        report = store.repack()
        if report.noop:
            raise StoreError("store smoke: repack had nothing to fold")
        if not report.deltas:
            raise StoreError(
                "store smoke: no object delta-encoded despite the "
                "affix-similar payload spread"
            )
        _check_round_trip(store, expected)
        stats = store.stats()
        if stats["loose_objects"] or stats["packed_objects"] != len(expected):
            raise StoreError(
                "store smoke: repack left "
                f"{stats['loose_objects']} loose / "
                f"{stats['packed_objects']} packed of {len(expected)}"
            )
        healthy, corrupt = store.verify_all()
        if corrupt or healthy != len(expected):
            raise StoreError(
                f"store smoke: fsck after repack found {len(corrupt)} "
                f"corrupt object(s)"
            )

        # Crash the next repack at pack.publish: new pack renamed in,
        # index never written, old copies never swept.
        extra = b"crash-window payload\n" * 8
        expected[store.put_bytes(extra).oid] = extra
        previous = install_crash_plan(CrashPlan.parse("at:pack.publish:1"))
        try:
            store.repack()
        except SimulatedCrash:
            pass
        else:
            raise StoreError("store smoke: injected publish crash never fired")
        finally:
            install_crash_plan(previous)
        doctor = repair(diagnose(base, tmp_age_s=0.0))
        if doctor.unrepaired:
            raise StoreError(
                "store smoke: doctor left "
                f"{len(doctor.unrepaired)} finding(s) unrepaired"
            )
        healed = ContentStore(pool_root / "objects", durable=False)
        _check_round_trip(healed, expected)
        healthy, corrupt = healed.verify_all()
        if corrupt:
            raise StoreError(
                f"store smoke: {len(corrupt)} corrupt object(s) after repair"
            )
    return (
        f"store smoke: {len(expected)} objects packed "
        f"({report.deltas} delta-encoded, "
        f"{report.bytes_before} -> {report.bytes_after} bytes), "
        "publish crash repaired, reads byte-identical"
    )
