"""One content-addressed artifact store for every substrate.

``repro.store`` is the storage layer under the VCS object store, the
data-package registry, CI workspaces and the engine's cross-run
memoization cache:

* :class:`~repro.store.cas.ContentStore` — the sharded, verifying,
  deduplicating object pool (``objects/ab/cd...`` + ``quarantine/``);
* :class:`~repro.store.index.ArtifactIndex` — task fingerprint →
  output object ids + metadata;
* :class:`~repro.store.artifacts.ArtifactStore` — the two combined,
  with ``store``/``lookup``/``materialize`` memoization primitives and
  ``verify``/``gc``/``stats`` administration.

See ``docs/caching.md`` for the on-disk layout and the gc policy.
"""

from repro.store.artifacts import (
    ArtifactStore,
    GcReport,
    StoreOutcome,
    VerifyReport,
)
from repro.store.cas import ContentStore, IngestResult
from repro.store.index import ArtifactIndex, ArtifactOutput, ArtifactRecord

__all__ = [
    "ArtifactIndex",
    "ArtifactOutput",
    "ArtifactRecord",
    "ArtifactStore",
    "ContentStore",
    "GcReport",
    "IngestResult",
    "StoreOutcome",
    "VerifyReport",
]
