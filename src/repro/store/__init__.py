"""One content-addressed artifact store for every substrate.

``repro.store`` is the storage layer under the VCS object store, the
data-package registry, CI workspaces and the engine's cross-run
memoization cache:

* :class:`~repro.store.cas.ContentStore` — the sharded, verifying,
  deduplicating object pool (``objects/ab/cd...`` + ``quarantine/``);
* :class:`~repro.store.index.ArtifactIndex` — task fingerprint →
  output object ids + metadata;
* :class:`~repro.store.artifacts.ArtifactStore` — the two combined,
  with ``store``/``lookup``/``materialize`` memoization primitives and
  ``verify``/``gc``/``stats`` administration;
* :mod:`~repro.store.pack` — packfiles: many small cold objects folded
  into one indexed, checksummed, optionally delta-compressed file
  (``objects/pack/``; see ``popper cache repack``);
* :mod:`~repro.store.doctor` — the crash-recovery scanner behind
  ``popper doctor`` (stale locks, orphan temps, torn JSONL tails,
  partial index records, crashed repacks).

See ``docs/caching.md`` for the on-disk layout, the gc policy and the
pack format, and ``docs/robustness.md`` for the crash-consistency
story.
"""

from repro.store.artifacts import (
    ArtifactStore,
    GcReport,
    StoreOutcome,
    VerifyReport,
)
from repro.store.cas import ContentStore, IngestResult, RepackReport
from repro.store.doctor import DoctorReport, Finding, diagnose, repair
from repro.store.index import ArtifactIndex, ArtifactOutput, ArtifactRecord
from repro.store.pack import PackError, PackReader, rebuild_index, write_pack

__all__ = [
    "ArtifactIndex",
    "ArtifactOutput",
    "ArtifactRecord",
    "ArtifactStore",
    "ContentStore",
    "DoctorReport",
    "Finding",
    "GcReport",
    "IngestResult",
    "PackError",
    "PackReader",
    "RepackReport",
    "StoreOutcome",
    "VerifyReport",
    "diagnose",
    "rebuild_index",
    "repair",
    "write_pack",
]
