"""The artifact index: task fingerprint → output object ids + metadata.

The memoization half of the artifact store.  Each record says "a task
with this fingerprint already ran; its outputs are these objects at
these relative paths, and its value can be rebuilt from this metadata".
Records are one JSON file per fingerprint under ``index/``, written
atomically, so concurrent writers (two sweeps sharing one cache) can
only ever race whole records — the last complete write wins and both
candidates describe the same deterministic outputs anyway.

Fingerprints come from :func:`repro.engine.runstate.task_fingerprint`:
task identity plus a canonical hash of its parameters, which is exactly
the condition under which a stored artifact may stand in for a re-run.
Editing ``vars.yml`` changes the fingerprint and the entry simply never
hits again (gc reclaims it later).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.crash import crashpoint
from repro.common.errors import StoreError
from repro.common.fsutil import atomic_write, ensure_dir

__all__ = ["ArtifactOutput", "ArtifactRecord", "ArtifactIndex"]

_FINGERPRINT_OK = set("0123456789abcdef")


@dataclass(frozen=True)
class ArtifactOutput:
    """One produced file: logical name, path relative to the task root,
    content id and size."""

    name: str
    path: str
    oid: str
    bytes: int


@dataclass(frozen=True)
class ArtifactRecord:
    """One memoized task outcome."""

    key: str
    task: str
    outputs: tuple[ArtifactOutput, ...]
    meta: dict = field(default_factory=dict)
    #: Monotonic-ish stamp (ns) used only for relative recency in gc.
    seq: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(output.bytes for output in self.outputs)

    def oids(self) -> set[str]:
        return {output.oid for output in self.outputs}

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "task": self.task,
                "outputs": [
                    {
                        "name": o.name,
                        "path": o.path,
                        "oid": o.oid,
                        "bytes": o.bytes,
                    }
                    for o in self.outputs
                ],
                "meta": self.meta,
                "seq": self.seq,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ArtifactRecord":
        doc = json.loads(text)
        if not isinstance(doc, dict) or "key" not in doc:
            raise StoreError("malformed artifact index record")
        return cls(
            key=str(doc["key"]),
            task=str(doc.get("task", "")),
            outputs=tuple(
                ArtifactOutput(
                    name=str(o["name"]),
                    path=str(o["path"]),
                    oid=str(o["oid"]),
                    bytes=int(o.get("bytes", 0)),
                )
                for o in doc.get("outputs", [])
            ),
            meta=dict(doc.get("meta", {})),
            seq=int(doc.get("seq", 0)),
        )


class ArtifactIndex:
    """Directory of per-fingerprint records."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        ensure_dir(self.root)

    def _path(self, key: str) -> Path:
        if not key or not set(key) <= _FINGERPRINT_OK:
            raise StoreError(f"bad artifact fingerprint: {key!r}")
        return self.root / f"{key}.json"

    # -- reading -----------------------------------------------------------------
    def lookup(self, key: str) -> ArtifactRecord | None:
        path = self._path(key)
        if not path.is_file():
            return None
        try:
            return ArtifactRecord.from_json(path.read_text(encoding="utf-8"))
        except (StoreError, json.JSONDecodeError, KeyError, ValueError):
            # A mangled record is equivalent to a miss: the task re-runs
            # and the next store() replaces the record wholesale.
            return None

    def entries(self) -> list[ArtifactRecord]:
        """Every readable record, oldest first (stable for gc)."""
        records = []
        for path in sorted(self.root.glob("*.json")):
            record = self.lookup(path.stem)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: (r.seq, r.key))
        return records

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    # -- writing -----------------------------------------------------------------
    def record(
        self,
        key: str,
        task: str,
        outputs: tuple[ArtifactOutput, ...],
        meta: dict | None = None,
    ) -> ArtifactRecord:
        entry = ArtifactRecord(
            key=key,
            task=task,
            outputs=outputs,
            meta=dict(meta or {}),
            seq=time.time_ns(),
        )
        crashpoint("index.record")
        # Durable by default: a published record must reference objects
        # that survived the same crash window (they were fsynced first).
        atomic_write(self._path(key), (entry.to_json() + "\n").encode("utf-8"))
        return entry

    def remove(self, key: str) -> bool:
        path = self._path(key)
        if not path.is_file():
            return False
        path.unlink()
        return True
