"""The content-addressed object pool shared by every substrate.

One implementation of "bytes filed under their SHA-256" backs the VCS
object store, the artifact cache, and the data-package registry.  The
layout mirrors git's: ``objects/ab/cdef...`` shards by the first two hex
characters, writes are atomic and idempotent (a second write of the same
content is a no-op, which is what makes the pool a *deduplicating*
store), and reads verify that the stored buffer still hashes to the id
it was filed under.

Bit rot has a remediation path rather than a bare exception: a corrupt
object is moved into the sibling ``quarantine/`` directory and the
raised :class:`~repro.common.errors.CorruptObjectError` names the
quarantined file, so ``popper cache verify`` can report it (with its
referrers) and a re-run can repopulate the object.

Crash consistency: an ingest fsyncs the temp file before publishing and
the shard directory after (``durable=False`` opts hot disposable pools
out), and the publish step runs under the pool's optional
:class:`~repro.common.locking.RepoLock` so two *processes* sharing one
cache serialize exactly the way two threads already did.  A crash
mid-ingest leaves only an ``.ingest-*`` orphan temp — never a partial
object — which ``popper doctor`` sweeps.

Packs: cold objects can be folded into packfiles under
``objects/pack/`` (see :mod:`repro.store.pack` and :meth:`ContentStore.repack`).
Reads consult the pack indexes before the loose shards, so callers
never notice whether an object is loose or packed; ingest still lands
loose (packs are immutable), and a repack folds the accumulated loose
tail into a fresh pack.  Shard iteration skips ``pack/`` naturally —
shard directories are exactly two hex characters.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.common.crash import SimulatedCrash, crashpoint
from repro.common.errors import CorruptObjectError, MissingObjectError, StoreError
from repro.common.hashing import sha256_bytes
from repro.common.fsutil import ensure_dir, fsync_path
from repro.common.locking import RepoLock
from repro.store.pack import PACK_DIR, PackError, PackReader, write_pack

__all__ = ["IngestResult", "RepackReport", "ContentStore"]

_CHUNK = 1 << 20


@dataclass(frozen=True)
class IngestResult:
    """Outcome of filing one payload into the pool."""

    oid: str
    size: int
    #: True when the object was already present (the write deduped).
    deduped: bool


@dataclass(frozen=True)
class RepackReport:
    """What one :meth:`ContentStore.repack` pass did."""

    objects: int
    loose_folded: int
    packs_folded: int
    deltas: int
    bytes_before: int
    bytes_after: int
    pack: str = ""

    @property
    def noop(self) -> bool:
        return not self.pack

    def describe(self) -> str:
        if self.noop:
            return (
                f"-- repack: nothing to do "
                f"({self.objects} object(s) already packed)\n"
            )
        saved = self.bytes_before - self.bytes_after
        return (
            f"-- repack: {self.objects} object(s) -> {self.pack}\n"
            f"   folded {self.loose_folded} loose object(s) and "
            f"{self.packs_folded} old pack(s)\n"
            f"   {self.deltas} delta-encoded; "
            f"{self.bytes_before} -> {self.bytes_after} bytes "
            f"({saved:+d} reclaimed)\n"
        )


class ContentStore:
    """A sharded, verifying, deduplicating pool of immutable objects.

    Safe for concurrent writers: every write lands under a unique
    temporary name first and is published with ``os.replace``, so two
    threads (or two sweeps sharing one cache) racing to store the same
    content cannot interleave partial writes.
    """

    def __init__(
        self,
        objects_dir: str | Path,
        quarantine_dir: str | Path | None = None,
        durable: bool = True,
        lock: RepoLock | None = None,
    ) -> None:
        self.objects_dir = Path(objects_dir)
        self.quarantine_dir = (
            Path(quarantine_dir)
            if quarantine_dir is not None
            else self.objects_dir.parent / "quarantine"
        )
        #: fsync objects (and their shard dir) as they are published.
        self.durable = bool(durable)
        #: Optional inter-process lock serializing publishes across
        #: processes sharing this pool (reentrant: safe to hold already).
        self.lock = lock
        ensure_dir(self.objects_dir)
        self.packs_dir = self.objects_dir / PACK_DIR
        #: Lazily-built map of idx basename -> PackReader.  Invalidated
        #: by repack and refreshed on a lookup miss, so another process
        #: publishing a pack is picked up without restarting.
        self._pack_cache: dict[str, PackReader] | None = None

    def _publish_guard(self):
        return self.lock if self.lock is not None else nullcontext()

    # -- packs ----------------------------------------------------------------
    def _invalidate_packs(self) -> None:
        self._pack_cache = None

    def pack_readers(self, refresh: bool = False) -> list[PackReader]:
        """Readers for every well-formed published pack (sorted by name).

        A pack whose index is unreadable is skipped here — ``popper
        doctor`` owns repairing it — so a half-published pack never
        breaks reads (the loose copies it would have folded still exist
        until the repack sweep that follows index publication).
        """
        if self._pack_cache is None or refresh:
            cache: dict[str, PackReader] = {}
            if self.packs_dir.is_dir():
                for idx in sorted(self.packs_dir.glob("*.idx")):
                    try:
                        cache[idx.name] = PackReader(idx)
                    except PackError:
                        continue
                    if not cache[idx.name].pack_path.is_file():
                        del cache[idx.name]
            self._pack_cache = cache
        return [self._pack_cache[name] for name in sorted(self._pack_cache)]

    def _pack_for(self, oid: str) -> PackReader | None:
        for reader in self.pack_readers():
            if oid in reader:
                return reader
        if self._pack_cache is not None and self.packs_dir.is_dir():
            # Miss against the cached view: another process may have
            # published a pack since we scanned.  One rescan, then give up.
            known = len(self._pack_cache)
            fresh = len(list(self.packs_dir.glob("*.idx")))
            if fresh != known:
                for reader in self.pack_readers(refresh=True):
                    if oid in reader:
                        return reader
        return None

    def quarantine_pack(self, reader: PackReader) -> Path:
        """Move a corrupt pack (and its index) out of the pool."""
        ensure_dir(self.quarantine_dir)
        target = self.quarantine_dir / reader.pack_path.name
        os.replace(reader.pack_path, target)
        idx_target = self.quarantine_dir / reader.idx_path.name
        if reader.idx_path.is_file():
            os.replace(reader.idx_path, idx_target)
        self._invalidate_packs()
        return target

    # -- paths ----------------------------------------------------------------
    def object_path(self, oid: str) -> Path:
        if len(oid) != 64:
            raise StoreError(f"not a full object id: {oid!r}")
        return self.objects_dir / oid[:2] / oid[2:]

    def quarantine_path(self, oid: str) -> Path:
        return self.quarantine_dir / oid

    # -- writing --------------------------------------------------------------
    def _publish(self, tmp: Path, target: Path) -> None:
        crashpoint("cas.ingest.tmp")
        with self._publish_guard():
            ensure_dir(target.parent)
            os.replace(tmp, target)
            if self.durable:
                fsync_path(target.parent)
        crashpoint("cas.ingest.publish")

    def put_bytes(self, data: bytes) -> IngestResult:
        """File a bytes payload; returns its id.  Idempotent."""
        oid = sha256_bytes(data)
        target = self.object_path(oid)
        if target.exists():
            return IngestResult(oid=oid, size=len(data), deduped=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".ingest-", dir=str(self.objects_dir)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                if self.durable:
                    handle.flush()
                    os.fsync(handle.fileno())
            self._publish(Path(tmp_name), target)
        except SimulatedCrash:
            # An injected crash leaves the orphan temp a real kill would.
            raise
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        return IngestResult(oid=oid, size=len(data), deduped=False)

    def put_file(self, path: str | Path) -> IngestResult:
        """File a host file's contents, streamed and hashed in one pass."""
        source = Path(path)
        if not source.is_file():
            raise StoreError(f"cannot ingest non-file: {source}")
        digest = hashlib.sha256()
        size = 0
        fd, tmp_name = tempfile.mkstemp(
            prefix=".ingest-", dir=str(self.objects_dir)
        )
        try:
            with os.fdopen(fd, "wb") as out, source.open("rb") as handle:
                while True:
                    chunk = handle.read(_CHUNK)
                    if not chunk:
                        break
                    digest.update(chunk)
                    size += len(chunk)
                    out.write(chunk)
                if self.durable:
                    out.flush()
                    os.fsync(out.fileno())
            oid = digest.hexdigest()
            target = self.object_path(oid)
            if target.exists():
                Path(tmp_name).unlink(missing_ok=True)
                return IngestResult(oid=oid, size=size, deduped=True)
            self._publish(Path(tmp_name), target)
        except SimulatedCrash:
            raise
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        return IngestResult(oid=oid, size=size, deduped=False)

    # -- reading --------------------------------------------------------------
    def get_bytes(self, oid: str, verify: bool = True) -> bytes:
        """Load an object, integrity-checked (quarantines on mismatch).

        Packs are consulted before the loose shards.  A packed object
        that fails its hash quarantines the *whole pack* (one corrupt
        file taints every delta chain through it) and the read falls
        back to a loose copy when one survives.
        """
        if len(oid) != 64:
            raise StoreError(f"not a full object id: {oid!r}")
        reader = self._pack_for(oid)
        if reader is not None:
            try:
                return reader.get_bytes(oid, verify=verify)
            except (PackError, CorruptObjectError):
                quarantined = self.quarantine_pack(reader)
                if not self.object_path(oid).exists():
                    raise CorruptObjectError(oid, str(quarantined)) from None
        path = self.object_path(oid)
        if not path.exists():
            raise MissingObjectError(oid)
        buffer = path.read_bytes()
        if verify and sha256_bytes(buffer) != oid:
            quarantined = self.quarantine(oid)
            raise CorruptObjectError(oid, str(quarantined) if quarantined else None)
        return buffer

    def contains(self, oid: str) -> bool:
        try:
            if self.object_path(oid).exists():
                return True
        except StoreError:
            return False
        return self._pack_for(oid) is not None

    def __contains__(self, oid: str) -> bool:
        return self.contains(oid)

    def size_of(self, oid: str) -> int:
        path = self.object_path(oid)
        if path.exists():
            return path.stat().st_size
        reader = self._pack_for(oid)
        if reader is not None:
            return reader.size_of(oid)
        raise MissingObjectError(oid)

    def loose_ids(self) -> Iterator[str]:
        """Ids of loose (shard-file) objects only, sorted."""
        if not self.objects_dir.exists():
            return
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for item in sorted(shard.iterdir()):
                if len(shard.name + item.name) == 64:
                    yield shard.name + item.name

    def packed_ids(self) -> Iterator[str]:
        """Ids reachable through pack indexes, sorted and deduplicated."""
        seen: set[str] = set()
        for reader in self.pack_readers():
            seen.update(reader.ids())
        yield from sorted(seen)

    def ids(self) -> Iterator[str]:
        """All stored object ids — loose and packed (sorted, deduped)."""
        seen = set(self.loose_ids())
        seen.update(self.packed_ids())
        yield from sorted(seen)

    # -- materialization ------------------------------------------------------
    def materialize(
        self,
        oid: str,
        dest: str | Path,
        link: bool = False,
        verify: bool = True,
    ) -> int:
        """Recreate an object's content at *dest*; returns bytes written.

        ``link=True`` publishes a hardlink to the stored object instead
        of copying (falling back to a copy when the filesystem refuses):
        cheap, but only safe for read-only consumers — a consumer that
        truncates the file in place would corrupt the pool.  Either way
        the destination is replaced atomically, so a half-materialized
        artifact is never observable.

        A packed object materializes by extraction (``link`` degrades
        to a copy — there is no loose file to hardlink).
        """
        path = self.object_path(oid)
        loose = path.exists()
        if loose and not verify:
            data = None
        else:
            # Loose+verify, or packed either way: one verified read.
            data = self.get_bytes(oid, verify=verify)
            loose = path.exists()  # pack quarantine may have fallen back
        dest = Path(dest)
        ensure_dir(dest.parent)
        fd, tmp_name = tempfile.mkstemp(prefix=".mat-", dir=str(dest.parent))
        tmp = Path(tmp_name)
        try:
            if link and loose:
                os.close(fd)
                tmp.unlink()
                try:
                    os.link(path, tmp)
                except OSError:
                    shutil.copyfile(path, tmp)
            elif data is not None:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
            else:
                os.close(fd)
                shutil.copyfile(path, tmp)
            os.replace(tmp, dest)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return path.stat().st_size if loose else len(data)

    # -- integrity ------------------------------------------------------------
    def quarantine(self, oid: str) -> Path | None:
        """Move a (presumably corrupt) object out of the pool."""
        path = self.object_path(oid)
        if not path.exists():
            return None
        target = self.quarantine_path(oid)
        ensure_dir(target.parent)
        os.replace(path, target)
        return target

    def quarantined(self) -> list[str]:
        """Object ids currently sitting in quarantine."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(p.name for p in self.quarantine_dir.iterdir() if p.is_file())

    def verify_all(self) -> tuple[int, list[str]]:
        """Re-hash every object; returns ``(healthy, quarantined-ids)``.

        Corrupt loose objects are quarantined individually.  A pack
        with any failing object is quarantined whole (pack + index) and
        every object it held that has no surviving loose copy is
        reported corrupt.
        """
        healthy = 0
        corrupt: list[str] = []
        for reader in list(self.pack_readers(refresh=True)):
            bad = reader.verify()
            if bad:
                self.quarantine_pack(reader)
                for oid in reader.ids():
                    if not self.object_path(oid).exists():
                        corrupt.append(oid)
            else:
                healthy += len(reader)
        packed = set(self.packed_ids())
        for oid in list(self.loose_ids()):
            try:
                path = self.object_path(oid)
                buffer = path.read_bytes()
                if sha256_bytes(buffer) != oid:
                    self.quarantine(oid)
                    corrupt.append(oid)
                    continue
            except OSError:  # pragma: no cover - races only
                corrupt.append(oid)
                continue
            if oid not in packed:
                healthy += 1
        return healthy, sorted(set(corrupt))

    def delete(self, oid: str) -> bool:
        """Remove a *loose* object (gc); True when something was deleted.

        Packed objects are immutable; pack-level collection happens by
        dropping a whole pack once nothing references it (see
        :meth:`~repro.store.artifacts.ArtifactStore.gc`).
        """
        path = self.object_path(oid)
        if not path.exists():
            return False
        path.unlink()
        return True

    def drop_pack(self, reader: PackReader) -> int:
        """Unlink a whole pack (gc); returns physical bytes reclaimed.

        Pack first, index second — a crash between the two leaves a
        dangling index, which the doctor knows to sweep (the reverse
        order would leave an unindexed pack, a *repairable* state we
        reserve for publish crashes).
        """
        reclaimed = reader.packed_bytes
        try:
            reclaimed += reader.idx_path.stat().st_size
        except OSError:
            pass
        reader.pack_path.unlink(missing_ok=True)
        reader.idx_path.unlink(missing_ok=True)
        self._invalidate_packs()
        return reclaimed

    def stats(self) -> dict:
        """Loose/packed object counts and physical byte accounting."""
        loose = list(self.loose_ids())
        loose_bytes = sum(self.object_path(oid).stat().st_size for oid in loose)
        readers = self.pack_readers(refresh=True)
        packed = set(self.packed_ids())
        packed_bytes = sum(reader.packed_bytes for reader in readers)
        packed_logical = 0
        deltas = 0
        for reader in readers:
            packed_logical += sum(reader.size_of(oid) for oid in reader.ids())
            deltas += reader.delta_count()
        return {
            "objects": len(packed | set(loose)),
            "bytes": loose_bytes + packed_bytes,
            "quarantined": len(self.quarantined()),
            "loose_objects": len(loose),
            "loose_bytes": loose_bytes,
            "packed_objects": len(packed),
            "packed_bytes": packed_bytes,
            "packed_logical_bytes": packed_logical,
            "pack_files": len(readers),
            "pack_deltas": deltas,
        }

    # -- repacking ------------------------------------------------------------
    def repack(
        self, min_objects: int = 2, delta: bool = True
    ) -> RepackReport:
        """Fold every loose object and existing pack into one fresh pack.

        Steps, in crash-safe order: materialize every object (verified),
        publish the new pack + index (``pack.write.tmp`` /
        ``pack.publish`` crashpoints), then sweep the old packs and the
        loose copies.  A crash anywhere leaves every object readable —
        the sweep only removes copies the new pack already serves.
        """
        with self._publish_guard():
            return self._repack_locked(min_objects, delta)

    def _repack_locked(self, min_objects: int, delta: bool) -> RepackReport:
        readers = self.pack_readers(refresh=True)
        loose = list(self.loose_ids())
        objects: dict[str, bytes] = {}
        for reader in readers:
            for oid in reader.ids():
                objects[oid] = reader.get_bytes(oid)
        for oid in loose:
            objects[oid] = self.get_bytes(oid)
        already_packed = not loose and len(readers) == 1
        if len(objects) < max(2, min_objects) or already_packed:
            return RepackReport(
                objects=len(objects),
                loose_folded=0,
                packs_folded=0,
                deltas=0,
                bytes_before=0,
                bytes_after=0,
            )
        bytes_before = sum(
            self.object_path(oid).stat().st_size for oid in loose
        ) + sum(reader.packed_bytes for reader in readers)
        pack_path, idx_path = write_pack(
            objects, self.packs_dir, delta=delta, durable=self.durable
        )
        if self.durable:
            fsync_path(self.packs_dir)
        self._invalidate_packs()
        new_reader = PackReader(idx_path)
        # Sweep: old packs first (pack before idx), then loose copies.
        for reader in readers:
            if reader.pack_path != pack_path:
                self.drop_pack(reader)
        for oid in loose:
            self.delete(oid)
        self._invalidate_packs()
        return RepackReport(
            objects=len(objects),
            loose_folded=len(loose),
            packs_folded=sum(
                1 for r in readers if r.pack_path != pack_path
            ),
            deltas=new_reader.delta_count(),
            bytes_before=bytes_before,
            bytes_after=new_reader.packed_bytes,
            pack=pack_path.name,
        )
